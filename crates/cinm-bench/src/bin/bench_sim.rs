//! `bench-sim` — the simulator wall-clock tracker.
//!
//! Measures how long the simulator itself (host wall-clock, not simulated
//! time) takes to run launch-heavy workloads at Small/Large scale under
//!
//! * the retained seed implementation (naive layout, per-launch clones),
//! * the flat-slab layout at 1 host thread, and
//! * the flat-slab layout at N host threads on a persistent worker pool,
//!
//! plus a **pool-vs-scope dispatch microbenchmark** capturing the per-launch
//! overhead of spawning OS threads per operation (the seed model) against
//! queueing onto long-lived pool workers, and writes the results to
//! `BENCH_sim.json`. Future PRs diff this file to catch
//! simulation-throughput regressions.
//!
//! The JSON also carries a **`sharded_vs_best_single`** section: every
//! selected case that the sharded layer supports is co-executed across
//! UPMEM + crossbar + host (`cinm_lowering::ShardedBackend`, shards planned
//! by `cinm_core::shard::ShardPlanner`) and compared against the fastest
//! single device, at 1 and 2 functional-simulation threads.
//!
//! The **`session_vs_eager`** section tracks the device-resident Session
//! graph API: a warmed `gemv → select` chain served through
//! `cinm_core::session::Session` (matrix resident in MRAM, intermediate
//! resident between the kernels, compiled plan replayed) against the eager
//! two-op sequence, reporting wall-clock, simulated bytes and allocations
//! per chain.
//!
//! The **`graph_opt`** section tracks the graph-optimization pipeline: a
//! `gemv → xor → and → or` session chain with the optimizer off (one launch
//! per op) versus on (the element-wise tail fused into a single launch),
//! with the replay-hit rate of canonical plan signatures and the
//! measurement-fed shard-planner calibration observed on a forced split.
//!
//! The **`energy`** section tracks the shard planner's joule accounting:
//! whole-op energy estimates per device and the `min-energy` policy's plan
//! against the makespan-optimal auto plan (estimated joules asserted never
//! worse, results asserted bit-identical).
//!
//! The **`hot_path`** section tracks the allocation-free steady state:
//! repeated same-shaped ops on one backend with warm execution contexts and
//! a memoized shard plan ("after") versus re-creating backend and plan per
//! op ("before" — the eager baseline), plus steady-state ns/launch, ns/MVM
//! and allocations/op measured through the counting global allocator this
//! binary installs.
//!
//! Flags (mirroring `cinm-experiments`):
//!
//! * `--out PATH` — output file (default `BENCH_sim.json`);
//! * `--scale tiny|small|large|all` — which tracked cases to run (default
//!   `all` = small + large; `tiny` is the CI smoke set);
//! * `--threads N|auto` — parallel thread count of the N-thread column
//!   (default 4, `auto` = all available cores, minimum 2 so the column
//!   differs from the 1-thread column);
//! * `--shard auto|cnm-only|cim-only|host-only|fractions a,b,c` — policy of
//!   the sharded section (default `auto`; forced fractions must sum to 1);
//! * `--quick` — single rep, small scale only (CI smoke testing).

use std::num::NonZeroUsize;
use std::time::{SystemTime, UNIX_EPOCH};

use cinm_bench::simbench::{
    self, EnergyMeasurement, FaultOverheadMeasurement, GraphOptMeasurement, HotPathMeasurement,
    MemoryPressureMeasurement, OverheadCase, SessionVsEagerMeasurement, ShardedMeasurement,
    SimCase, BENCH_SCHEMA,
};
use cinm_core::shard::ShardPolicy;
use cinm_runtime::PoolHandle;

/// The binary counts heap allocations so the `hot_path` section can report
/// allocations/op next to wall-clock numbers (the pass-through overhead is
/// one thread-local increment per allocation — negligible against the
/// measured loops, and identical for every column).
#[global_allocator]
static ALLOC: cinm_runtime::alloc_count::CountingAllocator =
    cinm_runtime::alloc_count::CountingAllocator;

struct CaseResult {
    case: SimCase,
    seed_1t_s: f64,
    slab_1t_s: f64,
    slab_nt_s: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Scientific notation for joule figures, whose magnitudes span ~1e-9..1e1
/// (fixed six-decimal formatting would flush the small ones to zero).
fn json_f64_sci(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "null".to_string()
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<Option<&'a str>> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).map(String::as_str))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = match flag_value(&args, "--out") {
        None => "BENCH_sim.json".to_string(),
        Some(Some(p)) => p.to_string(),
        Some(None) => {
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }
    };
    let host_cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let threads = match flag_value(&args, "--threads") {
        None => 4usize,
        Some(Some("auto")) => host_cores.max(2),
        Some(Some(raw)) => match raw.parse() {
            Ok(n) if n >= 2 => n,
            Ok(_) => {
                eprintln!("error: --threads must be >= 2 (the N-thread column must differ from the 1-thread column)");
                std::process::exit(2);
            }
            Err(_) => {
                eprintln!(
                    "error: invalid --threads value '{raw}'; expected a number >= 2 or 'auto'"
                );
                std::process::exit(2);
            }
        },
        Some(None) => {
            eprintln!("error: --threads requires a value (a number >= 2 or 'auto')");
            std::process::exit(2);
        }
    };
    let scale = match flag_value(&args, "--scale") {
        None => "all".to_string(),
        Some(Some(s)) if matches!(s, "tiny" | "small" | "large" | "all") => s.to_string(),
        Some(Some(other)) => {
            eprintln!("error: invalid --scale value '{other}'; expected tiny|small|large|all");
            std::process::exit(2);
        }
        Some(None) => {
            eprintln!("error: --scale requires a value (tiny|small|large|all)");
            std::process::exit(2);
        }
    };
    let shard_policy = match flag_value(&args, "--shard") {
        None => ShardPolicy::Auto,
        Some(Some(value)) => {
            let pos = args.iter().position(|a| a == "--shard").unwrap();
            let next = args.get(pos + 2).map(String::as_str);
            ShardPolicy::parse_cli(value, next).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            })
        }
        Some(None) => {
            eprintln!(
                "error: --shard requires a value (auto|cnm-only|cim-only|host-only|fractions a,b,c)"
            );
            std::process::exit(2);
        }
    };
    let quick = args.iter().any(|a| a == "--quick");

    let mut cases = if scale == "tiny" {
        simbench::tiny_cases()
    } else {
        simbench::default_cases()
    };
    if scale != "all" {
        cases.retain(|c| c.scale == scale);
    }
    if quick {
        for c in &mut cases {
            c.reps = 1;
        }
        cases.retain(|c| matches!(c.scale, "tiny" | "small"));
    }
    if cases.is_empty() {
        eprintln!(
            "error: no cases selected (scale '{scale}'{})",
            if quick { " with --quick" } else { "" }
        );
        std::process::exit(2);
    }

    // One persistent pool for the whole run — the point of the comparison.
    let pool = PoolHandle::with_threads(threads);

    let mut results = Vec::new();
    for &case in &cases {
        eprintln!("measuring {}/{} ...", case.name, case.scale);
        let inp = simbench::inputs(&case);
        let seed = simbench::measure_seed(&case, &inp);
        let slab1 = simbench::measure_slab(&case, &inp, 1, &pool);
        let slabn = simbench::measure_slab(&case, &inp, threads, &pool);
        assert_eq!(
            seed.checksum, slab1.checksum,
            "{}/{}",
            case.name, case.scale
        );
        assert_eq!(
            slab1.checksum, slabn.checksum,
            "{}/{}",
            case.name, case.scale
        );
        eprintln!(
            "  seed {:.3}s  slab(1t) {:.3}s  slab({}t) {:.3}s  -> {:.2}x / {:.2}x",
            seed.seconds,
            slab1.seconds,
            threads,
            slabn.seconds,
            seed.seconds / slab1.seconds,
            seed.seconds / slabn.seconds,
        );
        results.push(CaseResult {
            case,
            seed_1t_s: seed.seconds,
            slab_1t_s: slab1.seconds,
            slab_nt_s: slabn.seconds,
        });
    }

    eprintln!("measuring dispatch overhead (pool vs thread::scope) ...");
    let oc = OverheadCase {
        bands: threads,
        ..if quick {
            OverheadCase {
                iterations: 64,
                ..Default::default()
            }
        } else {
            OverheadCase::default()
        }
    };
    let overhead = simbench::measure_dispatch_overhead(&pool, &oc);
    eprintln!(
        "  scope {:.4}s  pool {:.4}s  -> pool {:.2}x faster per launch",
        overhead.scope_s,
        overhead.pool_s,
        overhead.scope_s / overhead.pool_s
    );

    // Sharded execution (UPMEM + crossbar + host concurrently on the shared
    // pool) vs the fastest single device, at 1 and 2 functional-simulation
    // threads. On a single-core container the wall-clock columns mostly show
    // scheduling overhead; the simulated columns are machine-independent.
    let policy_name = shard_policy.cli_name();
    let mut sharded_results: Vec<(SimCase, Vec<ShardedMeasurement>)> = Vec::new();
    for &case in &cases {
        // Policies that necessarily place work on the crossbar can only run
        // the matmul-like kinds; skip the rest instead of failing the sweep.
        if shard_policy.requires_cim() && !simbench::case_supports_cim(&case) {
            eprintln!(
                "skipping sharded {}/{}: policy '{policy_name}' requires the MVM-only crossbar",
                case.name, case.scale
            );
            continue;
        }
        eprintln!(
            "measuring sharded {}/{} ({policy_name}) ...",
            case.name, case.scale
        );
        let inp = simbench::inputs(&case);
        let mut per_threads = Vec::new();
        for host_threads in [1usize, 2] {
            let m = match simbench::measure_sharded(&case, &inp, host_threads, &pool, shard_policy)
            {
                Ok(m) => m,
                Err(e) => {
                    eprintln!(
                        "error: sharded measurement of {}/{} failed: {e}",
                        case.name, case.scale
                    );
                    std::process::exit(2);
                }
            };
            eprintln!(
                "  {}t: sharded {:.3}s vs best single ({}) {:.3}s wall; simulated {:.3} vs {:.3} ms; frac {:.2}/{:.2}/{:.2}",
                host_threads,
                m.sharded_wall_s,
                m.best_single_device,
                m.best_single_wall_s,
                m.sim_sharded_ms,
                m.sim_best_single_ms,
                m.fractions[0],
                m.fractions[1],
                m.fractions[2],
            );
            per_threads.push(m);
        }
        sharded_results.push((case, per_threads));
    }

    // Energy: the shard planner's joule accounting on every selected case —
    // whole-op estimates per device, and the MinimizeEnergy plan against the
    // makespan-optimal Auto plan (results asserted bit-identical, energy
    // plan's estimated joules asserted never worse).
    let mut energy_results: Vec<(SimCase, EnergyMeasurement)> = Vec::new();
    for &case in &cases {
        eprintln!("measuring energy {}/{} ...", case.name, case.scale);
        let inp = simbench::inputs(&case);
        let m = simbench::measure_energy(&case, &inp, &pool);
        assert!(
            m.min_energy_joules <= m.auto_plan_joules * (1.0 + 1e-9),
            "{}/{}: min-energy plan estimated {} J > auto plan {} J",
            case.name,
            case.scale,
            m.min_energy_joules,
            m.auto_plan_joules
        );
        eprintln!(
            "  device estimates [cnm/cim/host] {}/{}/{} J; auto plan {:.3e} J, min-energy plan {:.3e} J on {}",
            m.device_joules[0].map_or("-".into(), |j| format!("{j:.3e}")),
            m.device_joules[1].map_or("-".into(), |j| format!("{j:.3e}")),
            m.device_joules[2].map_or("-".into(), |j| format!("{j:.3e}")),
            m.auto_plan_joules,
            m.min_energy_joules,
            m.min_energy_device,
        );
        energy_results.push((case, m));
    }

    // Hot path: context-reusing steady state vs the eager per-op baseline,
    // plus steady-state ns/launch, ns/MVM and allocations/op.
    let mut hot_cases = simbench::hot_path_cases(scale == "tiny");
    if quick {
        for c in &mut hot_cases {
            c.reps = 1;
        }
    }
    let mut hot_results: Vec<(SimCase, HotPathMeasurement)> = Vec::new();
    for &case in &hot_cases {
        eprintln!("measuring hot path {}/{} ...", case.name, case.scale);
        let inp = simbench::inputs(&case);
        let m = simbench::measure_hot_path(&case, &inp, &pool);
        eprintln!(
            "  before(ref) {}  eager {:.4}s/op  context {:.4}s/op  -> {} vs ref, {:.2}x vs eager ({} plan-cache hits)",
            m.before_ref_s_per_op
                .map_or("n/a".to_string(), |b| format!("{b:.4}s/op")),
            m.eager_s_per_op,
            m.context_s_per_op,
            m.speedup_vs_before_ref()
                .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
            m.speedup(),
            m.plan_cache_hits,
        );
        hot_results.push((case, m));
    }
    // Session vs eager: the warmed gemv→select chain through the resident
    // graph API against the eager two-op sequence.
    let mut sve_results: Vec<(SimCase, SessionVsEagerMeasurement)> = Vec::new();
    for &case in &simbench::session_vs_eager_cases(scale == "tiny") {
        eprintln!(
            "measuring session vs eager {}/{} ...",
            case.name, case.scale
        );
        let inp = simbench::inputs(&case);
        let m = simbench::measure_session_vs_eager(&case, &inp, &pool);
        eprintln!(
            "  session {:.5}s/chain vs eager {:.5}s/chain -> {:.2}x wall; bytes {} vs {} ({:.1}x fewer); {} allocs/chain, {} replays",
            m.session_s_per_op,
            m.eager_s_per_op,
            m.wall_speedup(),
            m.session_bytes_per_op,
            m.eager_bytes_per_op,
            m.byte_reduction(),
            m.session_allocs_per_op,
            m.replays,
        );
        sve_results.push((case, m));
    }

    // Graph optimizer: the gemv → xor → and → or chain with the optimizer
    // off (one launch per op) vs on (element-wise tail fused), plus replay
    // and planner-feedback accounting.
    let mut graph_opt_results: Vec<(SimCase, GraphOptMeasurement)> = Vec::new();
    for &case in &simbench::session_vs_eager_cases(scale == "tiny") {
        eprintln!("measuring graph optimizer {}/{} ...", case.name, case.scale);
        let inp = simbench::inputs(&case);
        let m = simbench::measure_graph_opt(&case, &inp, &pool);
        eprintln!(
            "  launches/chain {:.1} -> {:.1} ({:.2}x); wall {:.5}s -> {:.5}s/chain; {} fused groups; replay rate {:.2}; {} calibration entries (max delta {:.3})",
            m.unfused_launches_per_op,
            m.fused_launches_per_op,
            m.launch_reduction(),
            m.unfused_s_per_op,
            m.fused_s_per_op,
            m.fused_groups,
            m.replay_hit_rate,
            m.calibration_entries,
            m.calibration_max_delta,
        );
        graph_opt_results.push((case, m));
    }

    // Fault overhead: the same chain fault-free vs under a fixed-seed
    // transient fault schedule (recovered results asserted bit-identical).
    const FAULT_SEED: u64 = 1234;
    let mut fault_results: Vec<(SimCase, FaultOverheadMeasurement)> = Vec::new();
    for &case in &simbench::session_vs_eager_cases(scale == "tiny") {
        eprintln!("measuring fault overhead {}/{} ...", case.name, case.scale);
        let inp = simbench::inputs(&case);
        let m = simbench::measure_fault_overhead(&case, &inp, &pool, FAULT_SEED);
        eprintln!(
            "  fault-free {:.5}s/chain vs faulted {:.5}s/chain -> {:.2}x overhead; {} retries, {} re-plans, {} degradations",
            m.fault_free_s_per_op,
            m.faulted_s_per_op,
            m.overhead(),
            m.transient_retries,
            m.replans,
            m.degradations,
        );
        fault_results.push((case, m));
    }

    // Memory pressure: the bounded-MRAM session sweep — a ring of pinned
    // device-resident accumulators re-run at 100%/50%/25% of its unlimited
    // peak footprint (bit-identity asserted per tier before timing).
    let mut pressure_results: Vec<(SimCase, MemoryPressureMeasurement)> = Vec::new();
    for &case in &simbench::memory_pressure_cases(scale == "tiny") {
        eprintln!("measuring memory pressure {}/{} ...", case.name, case.scale);
        let inp = simbench::inputs(&case);
        let m = simbench::measure_memory_pressure(&case, &inp, &pool);
        for l in &m.levels {
            eprintln!(
                "  {:>3}% ({} B/DPU): {:.5}s/op, {} evictions ({} spills, {} B spilled), {} remat ops, peak {} B/DPU",
                l.percent,
                l.limit_bytes,
                l.s_per_op,
                l.evictions,
                l.spills,
                l.spilled_bytes,
                l.remat_ops,
                l.peak_mram_bytes,
            );
        }
        pressure_results.push((case, m));
    }

    eprintln!("measuring steady-state launch/MVM micro loops ...");
    let micro = simbench::measure_steady_state_micro(if quick { 512 } else { 4096 });
    eprintln!(
        "  launch {:.0} ns/op ({} allocs/op)  mvm {:.0} ns/op ({} allocs/op)",
        micro.launch_ns, micro.launch_allocs_per_op, micro.mvm_ns, micro.mvm_allocs_per_op,
    );

    let generated_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    json.push_str(
        "  \"description\": \"Simulator wall-clock seconds (host time, best-of-reps) for launch-heavy workloads: seed naive layout vs flat-slab layout at 1 and N host threads on a persistent worker pool. Lower is better; speedups are seed/slab. dispatch_overhead compares per-launch thread dispatch: std::thread::scope spawning per operation (seed model) vs the persistent pool.\",\n",
    );
    json.push_str(&format!("  \"generated_unix\": {generated_unix},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"slab_threads\": {threads},\n"));
    json.push_str("  \"dispatch_overhead\": {\n");
    json.push_str(&format!("    \"iterations\": {},\n", oc.iterations));
    json.push_str(&format!("    \"bands_per_launch\": {},\n", oc.bands));
    json.push_str(&format!("    \"elems_per_band\": {},\n", oc.elems_per_band));
    json.push_str(&format!(
        "    \"scope_s\": {},\n",
        json_f64(overhead.scope_s)
    ));
    json.push_str(&format!("    \"pool_s\": {},\n", json_f64(overhead.pool_s)));
    json.push_str(&format!(
        "    \"speedup_pool_vs_scope\": {}\n",
        json_f64(overhead.scope_s / overhead.pool_s)
    ));
    json.push_str("  },\n");
    json.push_str("  \"hot_path\": {\n");
    json.push_str(
        "    \"description\": \"Allocation-free steady state: one ShardedBackend with warm execution contexts (cached device buffers, tile plans, memoized shard plans) reused over repeated same-shaped auto-sharded ops ('after'), versus the current-code eager loop re-creating backend and plan per op, versus the tracked pre-change reference ('before': the same op measured at the commit before the allocation-free hot path, when every op re-allocated buffers, cloned stream payloads, re-planned, and probed available_parallelism per transfer; comparable on similar hosts only). Results are asserted bit-identical between the measured loops. steady_state reports ns/op and allocations/op of the warmed-up sequential launch and MVM loops that tests/alloc_regression.rs pins to zero allocations.\",\n",
    );
    json.push_str(
        "    \"before_ref_provenance\": \"before_pr3_s_per_op_ref values were measured once, at the commit preceding the hot-path change, on the 1-core CI container (sharded_wall_s at 1 functional-simulation thread, schema-v2 BENCH_sim.json); they are a fixed reference, NOT re-measured by this run — speedup_vs_before_ref is only meaningful when this file is regenerated on a comparable host.\",\n",
    );
    json.push_str("    \"steady_state\": {\n");
    json.push_str(&format!("      \"iterations\": {},\n", micro.iterations));
    json.push_str(&format!(
        "      \"launch_ns_per_op\": {},\n",
        json_f64(micro.launch_ns)
    ));
    json.push_str(&format!(
        "      \"launch_allocs_per_op\": {},\n",
        json_f64(micro.launch_allocs_per_op)
    ));
    json.push_str(&format!(
        "      \"mvm_ns_per_op\": {},\n",
        json_f64(micro.mvm_ns)
    ));
    json.push_str(&format!(
        "      \"mvm_allocs_per_op\": {},\n",
        json_f64(micro.mvm_allocs_per_op)
    ));
    json.push_str(&format!(
        "      \"alloc_counter_installed\": {}\n",
        micro.alloc_counter_installed
    ));
    json.push_str("    },\n");
    json.push_str("    \"cases\": [\n");
    for (i, (case, m)) in hot_results.iter().enumerate() {
        json.push_str("      {\n");
        json.push_str(&format!("        \"name\": \"{}\",\n", case.name));
        json.push_str(&format!("        \"scale\": \"{}\",\n", case.scale));
        json.push_str(&format!("        \"ops\": {},\n", m.ops));
        json.push_str(&format!(
            "        \"before_pr3_s_per_op_ref\": {},\n",
            m.before_ref_s_per_op.map_or("null".into(), json_f64)
        ));
        json.push_str(&format!(
            "        \"eager_s_per_op\": {},\n",
            json_f64(m.eager_s_per_op)
        ));
        json.push_str(&format!(
            "        \"after_context_s_per_op\": {},\n",
            json_f64(m.context_s_per_op)
        ));
        json.push_str(&format!(
            "        \"speedup_vs_before_ref\": {},\n",
            m.speedup_vs_before_ref().map_or("null".into(), json_f64)
        ));
        json.push_str(&format!(
            "        \"speedup_context_vs_eager\": {},\n",
            json_f64(m.speedup())
        ));
        json.push_str(&format!(
            "        \"plan_cache_hits\": {}\n",
            m.plan_cache_hits
        ));
        json.push_str(if i + 1 == hot_results.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"sharded_vs_best_single\": {\n");
    json.push_str(&format!("    \"policy\": \"{policy_name}\",\n"));
    json.push_str(
        "    \"description\": \"One op co-executed across UPMEM + crossbar + host (concurrent device tasks on the shared pool, shards planned from cost models) vs the fastest single device. sim_* columns are simulated (machine-independent) milliseconds; *_wall_s columns are host wall-clock at 1 and 2 functional-simulation threads.\",\n",
    );
    json.push_str("    \"cases\": [\n");
    for (i, (case, per_threads)) in sharded_results.iter().enumerate() {
        let first = &per_threads[0];
        json.push_str("      {\n");
        json.push_str(&format!("        \"name\": \"{}\",\n", case.name));
        json.push_str(&format!("        \"scale\": \"{}\",\n", case.scale));
        json.push_str(&format!(
            "        \"fractions_cnm_cim_host\": [{}, {}, {}],\n",
            json_f64(first.fractions[0]),
            json_f64(first.fractions[1]),
            json_f64(first.fractions[2])
        ));
        json.push_str(&format!(
            "        \"max_concurrent_device_tasks\": {},\n",
            per_threads
                .iter()
                .map(|m| m.max_concurrent)
                .max()
                .unwrap_or(0)
        ));
        json.push_str(&format!(
            "        \"sim_sharded_ms\": {},\n",
            json_f64(first.sim_sharded_ms)
        ));
        json.push_str(&format!(
            "        \"sim_best_single_ms\": {},\n",
            json_f64(first.sim_best_single_ms)
        ));
        json.push_str(&format!(
            "        \"sim_speedup_sharded_vs_best_single\": {},\n",
            json_f64(first.sim_best_single_ms / first.sim_sharded_ms)
        ));
        json.push_str("        \"threads\": [\n");
        for (j, m) in per_threads.iter().enumerate() {
            json.push_str(&format!(
                "          {{ \"host_threads\": {}, \"sharded_wall_s\": {}, \"best_single_wall_s\": {}, \"best_single_device\": \"{}\", \"wall_speedup\": {} }}{}\n",
                m.host_threads,
                json_f64(m.sharded_wall_s),
                json_f64(m.best_single_wall_s),
                m.best_single_device,
                json_f64(m.best_single_wall_s / m.sharded_wall_s),
                if j + 1 == per_threads.len() { "" } else { "," }
            ));
        }
        json.push_str("        ]\n");
        json.push_str(if i + 1 == sharded_results.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"energy\": {\n");
    json.push_str(
        "    \"description\": \"Shard-planner joule accounting: whole-op energy estimates per device (pipeline + DMA + static power on UPMEM, tile programming + analog MVMs on the crossbar, per-op CPU energy on the host, all including host-interface transfers), and the min-energy policy's plan against the makespan-optimal auto plan. Fixed device costs amortise with shard size, so the min-energy plan places all work on the single lowest-joule device and its estimated joules never exceed the auto plan's (asserted before this file is written, as is bit-identity of both plans' results). null = the device cannot execute the op or carries no energy model.\",\n",
    );
    json.push_str("    \"cases\": [\n");
    for (i, (case, m)) in energy_results.iter().enumerate() {
        let opt_j = |v: Option<f64>| v.map_or("null".into(), json_f64_sci);
        json.push_str("      {\n");
        json.push_str(&format!("        \"name\": \"{}\",\n", case.name));
        json.push_str(&format!("        \"scale\": \"{}\",\n", case.scale));
        json.push_str(&format!(
            "        \"device_joules_cnm_cim_host\": [{}, {}, {}],\n",
            opt_j(m.device_joules[0]),
            opt_j(m.device_joules[1]),
            opt_j(m.device_joules[2])
        ));
        json.push_str(&format!(
            "        \"auto_plan_joules\": {},\n",
            json_f64_sci(m.auto_plan_joules)
        ));
        json.push_str(&format!(
            "        \"min_energy_plan_joules\": {},\n",
            json_f64_sci(m.min_energy_joules)
        ));
        json.push_str(&format!(
            "        \"joules_saved_vs_auto\": {},\n",
            json_f64_sci(m.auto_plan_joules - m.min_energy_joules)
        ));
        json.push_str(&format!(
            "        \"min_energy_device\": \"{}\"\n",
            m.min_energy_device
        ));
        json.push_str(if i + 1 == energy_results.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"session_vs_eager\": {\n");
    json.push_str(
        "    \"description\": \"A warmed gemv -> select chain served through the device-resident Session graph API (matrix stays in MRAM across iterations, the intermediate vector stays resident between the two kernels, the compiled plan is replayed) versus the eager two-op sequence on a warmed UpmemBackend (full scatter/gather round-trip per op). Same rotating inputs on both sides; checksums asserted equal. bytes are simulated host-interface bytes per chain (machine-independent); *_s_per_op is host wall-clock.\",\n",
    );
    json.push_str("    \"cases\": [\n");
    for (i, (case, m)) in sve_results.iter().enumerate() {
        json.push_str("      {\n");
        json.push_str(&format!("        \"name\": \"{}\",\n", case.name));
        json.push_str(&format!("        \"scale\": \"{}\",\n", case.scale));
        json.push_str(&format!("        \"iterations\": {},\n", m.iterations));
        json.push_str(&format!(
            "        \"session_s_per_op\": {},\n",
            json_f64(m.session_s_per_op)
        ));
        json.push_str(&format!(
            "        \"eager_s_per_op\": {},\n",
            json_f64(m.eager_s_per_op)
        ));
        json.push_str(&format!(
            "        \"wall_speedup_session_vs_eager\": {},\n",
            json_f64(m.wall_speedup())
        ));
        json.push_str(&format!(
            "        \"session_bytes_per_op\": {},\n",
            m.session_bytes_per_op
        ));
        json.push_str(&format!(
            "        \"eager_bytes_per_op\": {},\n",
            m.eager_bytes_per_op
        ));
        json.push_str(&format!(
            "        \"byte_reduction\": {},\n",
            json_f64(m.byte_reduction())
        ));
        json.push_str(&format!(
            "        \"session_allocs_per_op\": {},\n",
            json_f64(m.session_allocs_per_op)
        ));
        json.push_str(&format!("        \"plan_replays\": {}\n", m.replays));
        json.push_str(if i + 1 == sve_results.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"graph_opt\": {\n");
    json.push_str(
        "    \"description\": \"The graph-optimization pipeline on a gemv -> xor -> and -> or session chain: the same warmed loop with the optimizer disabled (one kernel launch per op, the pre-optimizer baseline) and enabled (the element-wise tail fused into one launch). launches and bytes are simulated (machine-independent) per chain; *_s_per_op is host wall-clock. replay_hit_rate is the fraction of timed runs that replayed a memoized plan (canonical signatures make rotating temporary ids irrelevant). calibration_* report the measurement-fed shard planner on a forced cnm+host split, where every run's measured per-device seconds refine the cost-model estimates.\",\n",
    );
    json.push_str("    \"cases\": [\n");
    for (i, (case, m)) in graph_opt_results.iter().enumerate() {
        json.push_str("      {\n");
        json.push_str(&format!("        \"name\": \"{}\",\n", case.name));
        json.push_str(&format!("        \"scale\": \"{}\",\n", case.scale));
        json.push_str(&format!("        \"iterations\": {},\n", m.iterations));
        json.push_str(&format!(
            "        \"unfused_launches_per_op\": {},\n",
            json_f64(m.unfused_launches_per_op)
        ));
        json.push_str(&format!(
            "        \"fused_launches_per_op\": {},\n",
            json_f64(m.fused_launches_per_op)
        ));
        json.push_str(&format!(
            "        \"launch_reduction\": {},\n",
            json_f64(m.launch_reduction())
        ));
        json.push_str(&format!(
            "        \"unfused_bytes_per_op\": {},\n",
            m.unfused_bytes_per_op
        ));
        json.push_str(&format!(
            "        \"fused_bytes_per_op\": {},\n",
            m.fused_bytes_per_op
        ));
        json.push_str(&format!(
            "        \"unfused_s_per_op\": {},\n",
            json_f64(m.unfused_s_per_op)
        ));
        json.push_str(&format!(
            "        \"fused_s_per_op\": {},\n",
            json_f64(m.fused_s_per_op)
        ));
        json.push_str(&format!(
            "        \"wall_speedup_fused_vs_unfused\": {},\n",
            json_f64(m.wall_speedup())
        ));
        json.push_str(&format!("        \"fused_groups\": {},\n", m.fused_groups));
        json.push_str(&format!(
            "        \"launches_saved\": {},\n",
            m.launches_saved
        ));
        json.push_str(&format!(
            "        \"replay_hit_rate\": {},\n",
            json_f64(m.replay_hit_rate)
        ));
        json.push_str(&format!(
            "        \"calibration_entries\": {},\n",
            m.calibration_entries
        ));
        json.push_str(&format!(
            "        \"calibration_max_delta\": {}\n",
            json_f64(m.calibration_max_delta)
        ));
        json.push_str(if i + 1 == graph_opt_results.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"fault_overhead\": {\n");
    json.push_str(
        "    \"description\": \"The same warmed gemv -> select session chain run fault-free and under a fixed-seed deterministic fault schedule (5% transient launch aborts, 2% transfer timeouts, 1% transfer corruptions). Recovered results are asserted bit-identical to the fault-free run before timing is reported; overhead_faulted_vs_free is wall-clock recovery cost, fault_free_s_per_op prices the retry plumbing carried on the hot path.\",\n",
    );
    json.push_str("    \"cases\": [\n");
    for (i, (case, m)) in fault_results.iter().enumerate() {
        json.push_str("      {\n");
        json.push_str(&format!("        \"name\": \"{}\",\n", case.name));
        json.push_str(&format!("        \"scale\": \"{}\",\n", case.scale));
        json.push_str(&format!("        \"iterations\": {},\n", m.iterations));
        json.push_str(&format!("        \"fault_seed\": {},\n", m.fault_seed));
        json.push_str(&format!(
            "        \"fault_free_s_per_op\": {},\n",
            json_f64(m.fault_free_s_per_op)
        ));
        json.push_str(&format!(
            "        \"faulted_s_per_op\": {},\n",
            json_f64(m.faulted_s_per_op)
        ));
        json.push_str(&format!(
            "        \"overhead_faulted_vs_free\": {},\n",
            json_f64(m.overhead())
        ));
        json.push_str(&format!(
            "        \"transient_retries\": {},\n",
            m.transient_retries
        ));
        json.push_str(&format!("        \"replans\": {},\n", m.replans));
        json.push_str(&format!("        \"degradations\": {}\n", m.degradations));
        json.push_str(if i + 1 == fault_results.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"memory_pressure\": {\n");
    json.push_str(
        "    \"description\": \"The bounded-MRAM session under graded capacity limits: a ring of pinned device-resident accumulators (each produced by its own run, so the cross-run working set dwarfs any single run) touched round-robin at MRAM limits of 100%/50%/25% of the unlimited run's peak per-DPU footprint. Every tier's outputs are asserted bit-identical to the unlimited run before its timed loop; under pressure the residency manager spills cold tensors to the host or drops-and-rematerializes them, and the spill/remat columns price that traffic against s_per_op throughput.\",\n",
    );
    json.push_str("    \"cases\": [\n");
    for (i, (case, m)) in pressure_results.iter().enumerate() {
        json.push_str("      {\n");
        json.push_str(&format!("        \"name\": \"{}\",\n", case.name));
        json.push_str(&format!("        \"scale\": \"{}\",\n", case.scale));
        json.push_str(&format!("        \"iterations\": {},\n", m.iterations));
        json.push_str(&format!(
            "        \"resident_tensors\": {},\n",
            m.resident_tensors
        ));
        json.push_str(&format!(
            "        \"unlimited_peak_mram_bytes\": {},\n",
            m.unlimited_peak_bytes
        ));
        json.push_str("        \"levels\": [\n");
        for (j, l) in m.levels.iter().enumerate() {
            json.push_str(&format!(
                "          {{ \"percent\": {}, \"limit_bytes\": {}, \"s_per_op\": {}, \"evictions\": {}, \"spills\": {}, \"spilled_bytes\": {}, \"remat_ops\": {}, \"peak_mram_bytes\": {} }}{}\n",
                l.percent,
                l.limit_bytes,
                json_f64(l.s_per_op),
                l.evictions,
                l.spills,
                l.spilled_bytes,
                l.remat_ops,
                l.peak_mram_bytes,
                if j + 1 == m.levels.len() { "" } else { "," }
            ));
        }
        json.push_str("        ]\n");
        json.push_str(if i + 1 == pressure_results.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let dpus = upmem_sim::UpmemConfig::with_ranks(r.case.ranks).num_dpus();
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.case.name));
        json.push_str(&format!("      \"scale\": \"{}\",\n", r.case.scale));
        json.push_str(&format!("      \"dpus\": {dpus},\n"));
        json.push_str(&format!("      \"launches\": {},\n", r.case.launches));
        json.push_str(&format!(
            "      \"seed_naive_1t_s\": {},\n",
            json_f64(r.seed_1t_s)
        ));
        json.push_str(&format!(
            "      \"slab_1t_s\": {},\n",
            json_f64(r.slab_1t_s)
        ));
        json.push_str(&format!(
            "      \"slab_{}t_s\": {},\n",
            threads,
            json_f64(r.slab_nt_s)
        ));
        json.push_str(&format!(
            "      \"speedup_slab_1t_vs_seed\": {},\n",
            json_f64(r.seed_1t_s / r.slab_1t_s)
        ));
        json.push_str(&format!(
            "      \"speedup_slab_{}t_vs_seed\": {}\n",
            threads,
            json_f64(r.seed_1t_s / r.slab_nt_s)
        ));
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
