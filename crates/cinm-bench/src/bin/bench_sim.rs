//! `bench-sim` — the simulator wall-clock tracker.
//!
//! Measures how long the simulator itself (host wall-clock, not simulated
//! time) takes to run launch-heavy workloads at Small/Large scale under
//!
//! * the retained seed implementation (naive layout, per-launch clones),
//! * the flat-slab layout at 1 host thread, and
//! * the flat-slab layout at N host threads,
//!
//! and writes the results to `BENCH_sim.json` (override with `--out PATH`;
//! `--threads N` overrides the parallel thread count, `--quick` runs a
//! reduced case list for smoke testing). Future PRs diff this file to catch
//! simulation-throughput regressions.

use std::num::NonZeroUsize;
use std::time::{SystemTime, UNIX_EPOCH};

use cinm_bench::simbench::{self, SimCase};

struct CaseResult {
    case: SimCase,
    seed_1t_s: f64,
    slab_1t_s: f64,
    slab_nt_s: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = match args.iter().position(|a| a == "--out") {
        None => "BENCH_sim.json".to_string(),
        Some(i) => args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
    };
    let host_cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let threads = match args.iter().position(|a| a == "--threads") {
        None => 4usize,
        Some(i) => match args.get(i + 1) {
            None => {
                eprintln!("error: --threads requires a value");
                std::process::exit(2);
            }
            Some(raw) => match raw.parse() {
                Ok(n) if n >= 2 => n,
                Ok(_) => {
                    eprintln!("error: --threads must be >= 2 (the N-thread column must differ from the 1-thread column)");
                    std::process::exit(2);
                }
                Err(_) => {
                    eprintln!("error: invalid --threads value '{raw}'; expected a number >= 2");
                    std::process::exit(2);
                }
            },
        },
    };
    let quick = args.iter().any(|a| a == "--quick");

    let mut cases = simbench::default_cases();
    if quick {
        for c in &mut cases {
            c.reps = 1;
        }
        cases.retain(|c| c.scale == "small");
    }

    let mut results = Vec::new();
    for case in cases {
        eprintln!("measuring {}/{} ...", case.name, case.scale);
        let inp = simbench::inputs(&case);
        let seed = simbench::measure_seed(&case, &inp);
        let slab1 = simbench::measure_slab(&case, &inp, 1);
        let slabn = simbench::measure_slab(&case, &inp, threads);
        assert_eq!(
            seed.checksum, slab1.checksum,
            "{}/{}",
            case.name, case.scale
        );
        assert_eq!(
            slab1.checksum, slabn.checksum,
            "{}/{}",
            case.name, case.scale
        );
        eprintln!(
            "  seed {:.3}s  slab(1t) {:.3}s  slab({}t) {:.3}s  -> {:.2}x / {:.2}x",
            seed.seconds,
            slab1.seconds,
            threads,
            slabn.seconds,
            seed.seconds / slab1.seconds,
            seed.seconds / slabn.seconds,
        );
        results.push(CaseResult {
            case,
            seed_1t_s: seed.seconds,
            slab_1t_s: slab1.seconds,
            slab_nt_s: slabn.seconds,
        });
    }

    let generated_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"cinm/bench-sim/v1\",\n");
    json.push_str(
        "  \"description\": \"Simulator wall-clock seconds (host time, best-of-reps) for launch-heavy workloads: seed naive layout vs flat-slab layout at 1 and N host threads. Lower is better; speedups are seed/slab.\",\n",
    );
    json.push_str(&format!("  \"generated_unix\": {generated_unix},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"slab_threads\": {threads},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let dpus = upmem_sim::UpmemConfig::with_ranks(r.case.ranks).num_dpus();
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.case.name));
        json.push_str(&format!("      \"scale\": \"{}\",\n", r.case.scale));
        json.push_str(&format!("      \"dpus\": {dpus},\n"));
        json.push_str(&format!("      \"launches\": {},\n", r.case.launches));
        json.push_str(&format!(
            "      \"seed_naive_1t_s\": {},\n",
            json_f64(r.seed_1t_s)
        ));
        json.push_str(&format!(
            "      \"slab_1t_s\": {},\n",
            json_f64(r.slab_1t_s)
        ));
        json.push_str(&format!(
            "      \"slab_{}t_s\": {},\n",
            threads,
            json_f64(r.slab_nt_s)
        ));
        json.push_str(&format!(
            "      \"speedup_slab_1t_vs_seed\": {},\n",
            json_f64(r.seed_1t_s / r.slab_1t_s)
        ));
        json.push_str(&format!(
            "      \"speedup_slab_{}t_vs_seed\": {}\n",
            threads,
            json_f64(r.seed_1t_s / r.slab_nt_s)
        ));
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
