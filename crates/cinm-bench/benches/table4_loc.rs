//! Regenerates Table 4: lines of code of the CINM representation of every
//! application against the hand-written UPMEM C/C++ implementations.

use cinm_core::experiments::{format_table4, table4};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", format_table4(&table4()));
    let mut group = c.benchmark_group("table4_loc");
    group.sample_size(10);
    group.bench_function("loc_table", |b| b.iter(table4));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
