//! Regenerates Figure 11: execution time of cinm-{4,8,16}d vs
//! cinm-opt-{4,8,16}d on the ML workloads, showing the impact of the
//! WRAM-tiling + loop-interchange optimisations.

use cinm_core::experiments::{figure11, format_figure11};
use cinm_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", format_figure11(&figure11(Scale::Bench)));
    let mut group = c.benchmark_group("fig11_upmem_opts");
    group.sample_size(10);
    group.bench_function("upmem_optimizations_test_scale", |b| {
        b.iter(|| figure11(Scale::Test))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
