//! Criterion-style microbenches of the allocation-free hot path:
//!
//! * `mvm_into` (caller scratch) vs `mvm` (fresh `Vec` per call) on a
//!   programmed crossbar tile;
//! * a pooled launch (one warm `UpmemBackend` with cached execution
//!   contexts) vs the seed behavior (a fresh backend, hence fresh buffer
//!   allocations, per op).
//!
//! The full before/after sweep with JSON output is the `hot_path` section of
//! the `bench-sim` binary.

use cinm_bench::simbench;
use cinm_lowering::{UpmemBackend, UpmemRunOptions};
use cinm_workloads::data;
use criterion::{criterion_group, criterion_main, Criterion};
use memristor_sim::{CrossbarAccelerator, CrossbarConfig};
use upmem_sim::UpmemConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");
    group.sample_size(10);

    // MVM: allocating vs scratch-writing.
    let mut xbar = CrossbarAccelerator::new(CrossbarConfig::default());
    let dim = xbar.config().tile_rows;
    let w = data::i32_vec(1, dim * dim, -8, 8);
    xbar.write_tile(0, &w, dim, dim).unwrap();
    let input = data::i32_vec(2, dim, -8, 8);
    group.bench_function("mvm_alloc_per_call", |b| {
        b.iter(|| xbar.mvm(0, &input).unwrap()[0])
    });
    let mut out = vec![0i32; xbar.config().tile_cols];
    group.bench_function("mvm_into_scratch", |b| {
        b.iter(|| {
            xbar.mvm_into(0, &input, &mut out).unwrap();
            out[0]
        })
    });

    // Launch: fresh backend per op (seed behavior) vs warm context reuse.
    let (rows, cols) = (512usize, 256usize);
    let a = data::i32_vec(3, rows * cols, -8, 8);
    let x = data::i32_vec(4, cols, -8, 8);
    let mut cfg = UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 16;
    group.bench_function("gemv_fresh_backend_per_op", |b| {
        b.iter(|| {
            let mut be = UpmemBackend::with_config(cfg.clone(), UpmemRunOptions::optimized());
            be.gemv(&a, &x, rows, cols)[0]
        })
    });
    let mut warm = UpmemBackend::with_config(cfg.clone(), UpmemRunOptions::optimized());
    warm.gemv(&a, &x, rows, cols); // allocate the context once
    group.bench_function("gemv_warm_context", |b| {
        b.iter(|| warm.gemv(&a, &x, rows, cols)[0])
    });

    // Steady-state micro report (also emitted into BENCH_sim.json).
    let micro = simbench::measure_steady_state_micro(2048);
    eprintln!(
        "steady state: launch {:.0} ns/op, mvm {:.0} ns/op",
        micro.launch_ns, micro.mvm_ns
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
