//! Ablation of the tiling shapes of Figure 9 and of the per-DPU tasklet
//! count: how the tile shape and thread count chosen by the cnm lowering
//! affect the simulated GEMM kernel time.

use cinm_lowering::{tile_2d, TileShape, UpmemBackend, UpmemRunOptions};
use cinm_workloads::data;
use criterion::{criterion_group, criterion_main, Criterion};
use upmem_sim::UpmemConfig;

fn simulated_gemm_ms(tasklets: usize, wram_tile: usize) -> f64 {
    let (m, k, n) = (512usize, 128usize, 64usize);
    let a = data::i32_matrix(1, m, k, -4, 4);
    let b = data::i32_matrix(2, k, n, -4, 4);
    let mut cfg = UpmemConfig::with_ranks(1).with_tasklets(tasklets);
    cfg.dpus_per_rank = 64;
    let mut backend = UpmemBackend::with_config(
        cfg,
        UpmemRunOptions {
            locality_optimized: true,
            tasklets,
            instruction_overhead: 1.0,
            wram_tile_elems: Some(wram_tile),
            ..Default::default()
        },
    );
    backend.gemm(&a, &b, m, k, n);
    backend.total_ms()
}

fn bench(c: &mut Criterion) {
    println!("Ablation: tiling shape (Figure 9) and tasklet count");
    for shape in [
        TileShape::Box { tile: 16 },
        TileShape::Rectangular { rows: 8, cols: 64 },
        TileShape::RowBand { rows: 4 },
    ] {
        let tiles = tile_2d(512, 64, shape);
        println!("  {:?}: {} tiles over a 512x64 output", shape, tiles.len());
    }
    for tasklets in [1usize, 4, 11, 16, 24] {
        println!(
            "  tasklets = {:>2}: simulated GEMM time {:.3} ms",
            tasklets,
            simulated_gemm_ms(tasklets, 1024)
        );
    }
    for wram_tile in [64usize, 256, 1024, 4096] {
        println!(
            "  wram tile = {:>4} elems: simulated GEMM time {:.3} ms",
            wram_tile,
            simulated_gemm_ms(16, wram_tile)
        );
    }

    let mut group = c.benchmark_group("ablation_tiling");
    group.sample_size(10);
    group.bench_function("gemm_16_tasklets", |b| {
        b.iter(|| simulated_gemm_ms(16, 1024))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
