//! Criterion-style benchmark of the simulator hot path: the seed (naive)
//! storage layout against the flat-slab layout, sequential and threaded, on
//! a launch-heavy `va` flow. The full Small/Large sweep with JSON output is
//! the `bench-sim` binary.

use cinm_bench::simbench::{self, CaseKind, SimCase};
use cinm_runtime::PoolHandle;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let case = SimCase {
        name: "va",
        scale: "bench",
        ranks: 4,
        launches: 8,
        kind: CaseKind::Va { len: 1 << 20 },
        reps: 1,
    };
    let inp = simbench::inputs(&case);
    let pool = PoolHandle::with_threads(4);
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("seed_naive_layout", |b| {
        b.iter(|| simbench::measure_seed(&case, &inp).checksum)
    });
    group.bench_function("flat_slab_1_thread", |b| {
        b.iter(|| simbench::measure_slab(&case, &inp, 1, &pool).checksum)
    });
    group.bench_function("flat_slab_4_threads", |b| {
        b.iter(|| simbench::measure_slab(&case, &inp, 4, &pool).checksum)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
