//! Regenerates Figure 12: cpu-opt vs the hand-optimised PrIM DPU code vs the
//! CINM-generated code on the PrIM benchmark subset, for 4/8/16 DIMMs.

use cinm_core::experiments::{figure12, format_figure12};
use cinm_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", format_figure12(&figure12(Scale::Bench)));
    let mut group = c.benchmark_group("fig12_prim");
    group.sample_size(10);
    group.bench_function("prim_comparison_test_scale", |b| {
        b.iter(|| figure12(Scale::Test))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
