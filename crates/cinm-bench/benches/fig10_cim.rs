//! Regenerates Figure 10: speedup of the cim / cim-min-writes / cim-parallel /
//! cim-opt configurations over the ARM in-order host, plus the write-reduction
//! and energy columns. The table is printed once at bench-scale; criterion
//! measures the harness at test scale to keep iteration times bounded.

use cinm_core::experiments::{figure10, format_figure10};
use cinm_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", format_figure10(&figure10(Scale::Bench)));
    let mut group = c.benchmark_group("fig10_cim");
    group.sample_size(10);
    group.bench_function("cim_configurations_test_scale", |b| {
        b.iter(|| figure10(Scale::Test))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
