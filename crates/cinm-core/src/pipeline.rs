//! Pre-assembled lowering pipelines (paper Figure 4) and compilation entry
//! points.

use cinm_dialects::register_all_dialects;
use cinm_ir::pass::PipelineStats;
use cinm_ir::prelude::*;
use cinm_lowering::{
    CimLoweringOptions, CimToMemristorPass, CinmToCimPass, CinmToCnmPass, CnmLoweringOptions,
    CnmToUpmemPass, LinalgToCinmPass, TosaToLinalgPass, UpmemLoweringOptions,
};

/// Builds the `tosa/linalg → cinm → cnm → upmem` pipeline.
pub fn cnm_pipeline(ranks: i64, optimize_locality: bool) -> PassManager {
    let mut pm = PassManager::new();
    pm.add_pass(Box::new(TosaToLinalgPass));
    pm.add_pass(Box::new(LinalgToCinmPass));
    pm.add_pass(Box::new(CinmToCnmPass::new(CnmLoweringOptions {
        workgroup: vec![ranks * 128, 16],
        optimize_locality,
        ..Default::default()
    })));
    pm.add_pass(Box::new(CnmToUpmemPass::new(UpmemLoweringOptions {
        ranks,
        tasklets: 16,
    })));
    pm
}

/// Builds the `tosa/linalg → cinm → cim → memristor` pipeline.
pub fn cim_pipeline(options: CimLoweringOptions) -> PassManager {
    let mut pm = PassManager::new();
    pm.add_pass(Box::new(TosaToLinalgPass));
    pm.add_pass(Box::new(LinalgToCinmPass));
    pm.add_pass(Box::new(CinmToCimPass::new(options)));
    pm.add_pass(Box::new(CimToMemristorPass));
    pm
}

/// Builds the front-end-only pipeline that stops at the `cinm` abstraction
/// (used for target selection and the Table 4 line counts).
pub fn cinm_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add_pass(Box::new(TosaToLinalgPass));
    pm.add_pass(Box::new(LinalgToCinmPass));
    pm
}

/// Runs a pipeline over a module and verifies the result against the full
/// dialect registry (unregistered ops allowed for manually translated
/// kernels).
///
/// # Errors
///
/// Returns the first pass or verification error.
pub fn compile(module: &mut Module, pm: &PassManager) -> IrResult<PipelineStats> {
    let stats = pm.run(module)?;
    let mut registry = register_all_dialects();
    registry.allow_unregistered = true;
    verify_module(module, &registry)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinm_workloads::{build_func, Scale, WorkloadId};

    #[test]
    fn cnm_pipeline_lowers_every_idiomatic_workload() {
        for id in WorkloadId::upmem_opt_suite() {
            let mut module = Module::new(id.name());
            module.add_func(build_func(id, Scale::Test));
            let pm = cnm_pipeline(4, true);
            compile(&mut module, &pm).unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            let f = &module.funcs[0];
            assert!(
                !f.body.ops_with_name("upmem.launch").is_empty(),
                "{} should contain at least one upmem.launch",
                id.name()
            );
            // Operators with no cinm counterpart (the bias-add generic and the
            // clamp of the MLP, plus the im2col data rearrangement) remain for
            // the host, exactly as described in Section 3.2.2.
            assert!(f.body.ops_in_dialect("linalg").iter().all(|&op| {
                matches!(
                    f.body.op(op).name.as_str(),
                    "linalg.im2col" | "linalg.generic" | "linalg.elemwise_unary"
                )
            }));
        }
    }

    #[test]
    fn cim_pipeline_lowers_matmul_like_workloads() {
        for id in [
            WorkloadId::Mm,
            WorkloadId::Conv,
            WorkloadId::Contrs2,
            WorkloadId::Mlp,
        ] {
            let mut module = Module::new(id.name());
            module.add_func(build_func(id, Scale::Test));
            let pm = cim_pipeline(CimLoweringOptions::optimized());
            compile(&mut module, &pm).unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            let f = &module.funcs[0];
            assert!(
                !f.body.ops_with_name("memristor.gemm_tile").is_empty(),
                "{} should target the crossbar",
                id.name()
            );
            assert!(
                !f.body.ops_with_name("memristor.configure").is_empty(),
                "{} should configure the device",
                id.name()
            );
        }
    }

    #[test]
    fn pipelines_report_their_pass_order() {
        let pm = cnm_pipeline(4, false);
        let names = pm.pass_names();
        assert_eq!(
            names,
            vec![
                "convert-tosa-to-linalg",
                "convert-linalg-to-cinm",
                "convert-cinm-to-cnm",
                "convert-cnm-to-upmem"
            ]
        );
        let pm = cim_pipeline(CimLoweringOptions::default());
        assert_eq!(pm.pass_names().last(), Some(&"convert-cim-to-memristor"));
    }
}
