//! The shard planner: cost-model-driven work splitting across devices.
//!
//! Where [`crate::target::TargetSelector`] places each `cinm` op on exactly
//! one device, [`ShardPlanner`] splits **one** op across all of them: it
//! asks the registered [`CostModel`]s for per-device time estimates and
//! produces a [`ShardPlan`] whose per-device shard sizes balance the
//! estimated completion times (the ROADMAP's "heterogeneous serving" item;
//! TDO-CIM's runtime kernel-slice offloading and CIM-MLC's multi-tier
//! scheduling are the CIM-only precedents).
//!
//! ## The balancing rule
//!
//! Every supported shardable op costs time (near-)linearly in its sharded
//! work dimension (GEMM/GEMV rows, element-wise/reduce/histogram elements),
//! plus a fixed per-device overhead that does *not* shrink with the shard —
//! broadcasting the stationary GEMM operand to every DPU, programming
//! crossbar tiles, bulk-transfer driver latency. The planner recovers both
//! terms by sampling each cost model ([`CostModel::estimate_shard_seconds`])
//! at the full and at half the shard size, fitting the affine cost
//! `t_i(w) = a_i + b_i·w`, and then **water-fills**: the balanced makespan
//! over the active device set `S` is
//!
//! ```text
//! T = (W + Σ_{i∈S} a_i/b_i) / (Σ_{i∈S} 1/b_i),    w_i = (T - a_i) / b_i
//! ```
//!
//! and any device whose fixed overhead alone exceeds `T` (`a_i ≥ T`) is
//! dropped from `S` and the makespan recomputed — so small ops naturally
//! collapse onto the single cheapest device instead of paying three setup
//! costs. Devices estimating `None` (e.g. the MVM-only crossbar on an
//! element-wise op) are never in `S`. Final shard sizes are rounded to
//! whole multiples of [`ShardPlanner::granularity`] work units, a shard
//! smaller than one granule is folded away, and the rounding remainder goes
//! to the device with the largest shard.
//!
//! ## Single-target fallback
//!
//! The planner falls back to placing **all** work on the fastest supporting
//! device (recorded in [`ShardPlan::fallback`]) when sharding cannot help:
//!
//! * the op has fewer than two granules of work
//!   (`work < 2 × granularity`), or
//! * only one device supports the op, or
//! * water-filling drops every other device (their fixed overheads exceed
//!   the balanced makespan), or
//! * the policy forces a single target ([`ShardPolicy::Single`]).
//!
//! Zero-work ops produce an all-empty plan with no fallback. User-forced
//! fractions that do not sum to 1 are an **error** ([`ShardError`]), never
//! silently renormalised.

use std::collections::HashMap;

use cinm_lowering::device::DeviceCost;
use cinm_lowering::{Device, ShardDevice, ShardError, ShardSplit};
use cpu_sim::model::CpuModel;
use memristor_sim::CrossbarConfig;
use upmem_sim::UpmemConfig;

use cinm_dialects::cinm;

use crate::target::{CostModel, Target};

// The shard shapes and the per-device first-order cost models moved into
// `cinm_lowering::device` with the unified `Device` trait (so devices can
// expose their own cost hookup without a crate cycle); they are re-exported
// here so planner users keep their import paths.
pub use cinm_lowering::device::{
    cim_supports, CimCostModel, CnmCostModel, HostCostModel, ShardShape,
};

/// The planner-side [`Target`] of a [`ShardDevice`] (the two enums share the
/// `[cnm, cim, host]` order; `Target` predates the device layer).
pub fn device_target(device: ShardDevice) -> Target {
    match device {
        ShardDevice::Cnm => Target::Cnm,
        ShardDevice::Cim => Target::Cim,
        ShardDevice::Host => Target::Host,
    }
}

/// Adapts a device's cost hookup ([`Device::cost`]) to the planner's
/// [`CostModel`] registry, so a planner can be assembled *from a device set*
/// instead of hard-coding model structs — the session does exactly that.
pub struct DeviceCostAdapter(Box<dyn DeviceCost>);

impl DeviceCostAdapter {
    /// Wraps a device cost hookup.
    pub fn new(cost: Box<dyn DeviceCost>) -> Self {
        DeviceCostAdapter(cost)
    }

    /// Snapshots the cost hookup of a device.
    pub fn of(device: &dyn Device) -> Self {
        DeviceCostAdapter(device.cost())
    }
}

impl CostModel for DeviceCostAdapter {
    fn target(&self) -> Target {
        device_target(self.0.device())
    }

    fn estimate_seconds(&self, op_name: &str, elements: i64) -> Option<f64> {
        self.0.estimate_seconds(op_name, elements)
    }

    fn estimate_shard_seconds(&self, op_name: &str, shape: &ShardShape) -> Option<f64> {
        self.0.estimate_shard_seconds(op_name, shape)
    }

    fn estimate_shard_joules(&self, op_name: &str, shape: &ShardShape) -> Option<f64> {
        self.0.estimate_shard_joules(op_name, shape)
    }
}

// Every device-level cost model is a planner cost model by construction
// (the target is the device's shard slot), so the concrete models —
// `CnmCostModel`, `CimCostModel`, `HostCostModel` and any future device
// hookup — register into the planner without per-type glue.
impl<T: DeviceCost> CostModel for T {
    fn target(&self) -> Target {
        device_target(self.device())
    }

    fn estimate_seconds(&self, op_name: &str, elements: i64) -> Option<f64> {
        <T as DeviceCost>::estimate_seconds(self, op_name, elements)
    }

    fn estimate_shard_seconds(&self, op_name: &str, shape: &ShardShape) -> Option<f64> {
        <T as DeviceCost>::estimate_shard_seconds(self, op_name, shape)
    }

    fn estimate_shard_joules(&self, op_name: &str, shape: &ShardShape) -> Option<f64> {
        <T as DeviceCost>::estimate_shard_joules(self, op_name, shape)
    }
}

/// How the planner assigns work to devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardPolicy {
    /// Balance estimated completion times across all supporting devices.
    Auto,
    /// Minimise estimated *energy* instead of makespan: place all work on
    /// the device whose full-work joule estimate
    /// ([`CostModel::estimate_shard_joules`]) is smallest. Single-device
    /// placement is provably optimal here — every model's fixed energy
    /// (broadcasts, tile programming, static leakage over the launch) is
    /// non-negative and amortises with shard size, so `e_i(w) ≥ (w/W)·e_i(W)`
    /// and any split's total energy `Σ e_i(w_i) ≥ min_i e_i(W)`. Splitting
    /// can only add fixed costs; unlike makespan, energy gains nothing from
    /// concurrency.
    MinimizeEnergy,
    /// Place all work on one device (the `--shard cnm-only` / `cim-only` /
    /// `host-only` knobs).
    Single(Target),
    /// User-forced work fractions in `[cnm, cim, host]` order. Must sum to 1
    /// — the planner errors instead of renormalising.
    Fractions([f64; 3]),
}

impl ShardPolicy {
    /// Parses the `--shard` CLI grammar shared by `cinm-experiments` and
    /// `bench-sim`: `value` is the flag's argument
    /// (`auto|cnm-only|cim-only|host-only|fractions`), `next` the following
    /// token when `value` is `fractions` (`"a,b,c"`).
    pub fn parse_cli(value: &str, next: Option<&str>) -> Result<ShardPolicy, String> {
        match value {
            "auto" => Ok(ShardPolicy::Auto),
            "min-energy" => Ok(ShardPolicy::MinimizeEnergy),
            "cnm-only" => Ok(ShardPolicy::Single(Target::Cnm)),
            "cim-only" => Ok(ShardPolicy::Single(Target::Cim)),
            "host-only" => Ok(ShardPolicy::Single(Target::Host)),
            "fractions" => {
                let raw = next
                    .ok_or_else(|| "--shard fractions requires a value 'cnm,cim,host'".to_string())?;
                let mut parts = Vec::new();
                for p in raw.split(',') {
                    let p = p.trim();
                    parts.push(p.parse::<f64>().map_err(|_| {
                        format!("invalid shard fraction '{p}' in '{raw}'")
                    })?);
                }
                if parts.len() != 3 {
                    return Err(format!(
                        "--shard fractions expects exactly three values 'cnm,cim,host' (got '{raw}')"
                    ));
                }
                Ok(ShardPolicy::Fractions([parts[0], parts[1], parts[2]]))
            }
            other => Err(format!(
                "invalid --shard value '{other}'; expected auto|min-energy|cnm-only|cim-only|host-only|fractions a,b,c"
            )),
        }
    }

    /// The CLI spelling of the policy (the non-fraction variants round-trip
    /// through [`ShardPolicy::parse_cli`]).
    pub fn cli_name(&self) -> String {
        match self {
            ShardPolicy::Auto => "auto".to_string(),
            ShardPolicy::MinimizeEnergy => "min-energy".to_string(),
            ShardPolicy::Single(Target::Cnm) => "cnm-only".to_string(),
            ShardPolicy::Single(Target::Cim) => "cim-only".to_string(),
            ShardPolicy::Single(Target::Host) => "host-only".to_string(),
            ShardPolicy::Fractions(f) => format!("fractions {},{},{}", f[0], f[1], f[2]),
        }
    }

    /// Whether the policy necessarily places work on the crossbar — such
    /// policies cannot execute ops outside the MVM-only backend's support,
    /// so harnesses skip those ops instead of failing the whole sweep.
    pub fn requires_cim(&self) -> bool {
        match self {
            ShardPolicy::Single(Target::Cim) => true,
            ShardPolicy::Fractions(f) => f[1] > 0.0,
            _ => false,
        }
    }
}

/// A computed shard assignment for one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The `cinm` op the plan is for.
    pub op: String,
    /// Total work units (rows or elements).
    pub work: usize,
    /// Work units per device.
    pub split: ShardSplit,
    /// Work fractions per device, `[cnm, cim, host]`.
    pub fractions: [f64; 3],
    /// Estimated completion seconds per device at the planned split (zero
    /// for empty shards or devices without a model).
    pub estimated_seconds: [f64; 3],
    /// Estimated joules per device at the planned split (zero for empty
    /// shards or devices whose model carries no energy calibration) — filled
    /// for *every* policy, so energy-aware and makespan-optimal plans can be
    /// compared on the same estimates.
    pub estimated_joules: [f64; 3],
    /// `Some(target)` when the planner fell back to a single device (op too
    /// small to shard, only one supporting device, or a forced policy).
    pub fallback: Option<Target>,
}

impl ShardPlan {
    /// Whether the plan actually uses more than one device.
    pub fn is_sharded(&self) -> bool {
        ShardPlanner::split_device_count(&self.split) > 1
    }

    /// Total estimated energy of the plan across all devices, in joules.
    pub fn total_estimated_joules(&self) -> f64 {
        self.estimated_joules.iter().sum()
    }
}

/// Plans work splits across `Cnm`, `Cim` and `Host` from registered
/// [`CostModel`] estimates (see the module docs for the balancing rule and
/// the fallback conditions).
pub struct ShardPlanner {
    models: Vec<Box<dyn CostModel>>,
    /// Minimum shard size in work units; shards are whole multiples of this
    /// granule and ops under two granules are not sharded at all.
    pub granularity: usize,
    /// The assignment policy.
    pub policy: ShardPolicy,
    /// Online per-`(op, device)` correction factors learned from measured
    /// shard times (see [`ShardCalibrator`]). Applied multiplicatively on
    /// every model estimate.
    pub calibrator: ShardCalibrator,
}

/// Online calibration of the planner's cost models against *measured*
/// per-device shard times.
///
/// First-order cost models are systematically off (cache effects, launch
/// overheads the roofline misses); the calibrator keeps one multiplicative
/// correction `scale` per `(op, device)` pair and nudges it toward the
/// observed `measured / estimated` ratio with an exponential moving average.
/// A fresh calibrator scales everything by `1.0`, so planners without
/// feedback behave exactly as before.
///
/// [`ShardCalibrator::observe`] reports whether the correction moved
/// *significantly* (relative move above [`ShardCalibrator::THRESHOLD`]);
/// callers use that to invalidate memoized plans. Because each observation
/// moves the scale by at most `ALPHA · |ratio − 1|` relative and the EMA
/// converges geometrically to a stable ratio, a steady workload triggers
/// only finitely many invalidations.
#[derive(Debug, Clone, Default)]
pub struct ShardCalibrator {
    /// `(op name, device index, scale)` — linear scan; the op set is tiny.
    entries: Vec<(String, usize, f64)>,
}

impl ShardCalibrator {
    /// EMA weight of one observation.
    pub const ALPHA: f64 = 0.25;
    /// Relative scale move above which an observation counts as significant
    /// (and cached plans should be invalidated).
    pub const THRESHOLD: f64 = 0.15;

    /// Current correction factor for `(op, device)` (`1.0` when unobserved).
    pub fn scale(&self, op: &str, device: usize) -> f64 {
        self.entries
            .iter()
            .find(|(o, d, _)| o == op && *d == device)
            .map_or(1.0, |&(_, _, s)| s)
    }

    /// Feeds one measured/estimated ratio for `(op, device)`; returns whether
    /// the correction moved significantly. The estimate that produced the
    /// ratio already included the current scale, so the EMA target is
    /// `scale · ratio` (the scale that would have made the estimate exact).
    pub fn observe(&mut self, op: &str, device: usize, ratio: f64) -> bool {
        if !ratio.is_finite() || ratio <= 0.0 {
            return false;
        }
        let idx = match self
            .entries
            .iter()
            .position(|(o, d, _)| o == op && *d == device)
        {
            Some(i) => i,
            None => {
                self.entries.push((op.to_string(), device, 1.0));
                self.entries.len() - 1
            }
        };
        let old = self.entries[idx].2;
        let target = old * ratio;
        let new = (old * (1.0 - Self::ALPHA) + target * Self::ALPHA).clamp(1e-3, 1e3);
        self.entries[idx].2 = new;
        let rel_move = (new - old).abs() / old;
        rel_move > Self::THRESHOLD
    }

    /// Number of `(op, device)` pairs calibrated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The learned `(op, device index, scale)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&str, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|(op, dev, s)| (op.as_str(), *dev, *s))
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for ShardPlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPlanner")
            .field("models", &self.models.len())
            .field("granularity", &self.granularity)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Default for ShardPlanner {
    fn default() -> Self {
        ShardPlanner::new()
    }
}

impl ShardPlanner {
    /// Creates an empty planner (register models before planning) with the
    /// default granularity of 16 work units and the `Auto` policy.
    pub fn new() -> Self {
        ShardPlanner {
            models: Vec::new(),
            granularity: 16,
            policy: ShardPolicy::Auto,
            calibrator: ShardCalibrator::default(),
        }
    }

    /// Creates a planner with the default first-order cost models of all
    /// three devices: [`CnmCostModel`] for a machine with `ranks` DIMMs,
    /// [`CimCostModel`] for the default four-tile crossbar and
    /// [`HostCostModel`] for the in-order ARM host.
    pub fn with_default_models(ranks: usize) -> Self {
        let mut planner = ShardPlanner::new();
        planner.register_model(Box::new(CnmCostModel::new(UpmemConfig::with_ranks(ranks))));
        planner.register_model(Box::new(CimCostModel::new(CrossbarConfig::default())));
        planner.register_model(Box::new(HostCostModel::new(CpuModel::arm_host())));
        planner
    }

    /// Overrides the policy.
    pub fn with_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Registers a device cost model.
    pub fn register_model(&mut self, model: Box<dyn CostModel>) {
        self.models.push(model);
    }

    /// Registers the cost hookup of a [`Device`] (see [`DeviceCostAdapter`]):
    /// the planner sizes shards for exactly the device set that will execute
    /// them.
    pub fn register_device(&mut self, device: &dyn Device) {
        self.register_model(Box::new(DeviceCostAdapter::of(device)));
    }

    /// Full-shard estimate of a target, or `None` if no registered model
    /// supports the op on that target. Model estimates are corrected by the
    /// calibrator's learned `(op, device)` scale.
    fn estimate(&self, target: Target, op: &str, shape: &ShardShape) -> Option<f64> {
        let device = match target {
            Target::Cnm => 0,
            Target::Cim => 1,
            Target::Host => 2,
        };
        self.models
            .iter()
            .filter(|m| m.target() == target)
            .filter_map(|m| m.estimate_shard_seconds(op, shape))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .map(|t| t * self.calibrator.scale(op, device))
    }

    /// Full-shard *energy* estimate of a target in joules, or `None` if no
    /// registered model carries an energy calibration for the op on that
    /// target. Uncalibrated by the [`ShardCalibrator`] — the calibrator
    /// learns measured/estimated *time* ratios, and no measured energy
    /// exists to correct against.
    pub fn estimate_joules(&self, target: Target, op: &str, shape: &ShardShape) -> Option<f64> {
        self.models
            .iter()
            .filter(|m| m.target() == target)
            .filter_map(|m| m.estimate_shard_joules(op, shape))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    fn split_device_count(split: &ShardSplit) -> usize {
        [split.cnm, split.cim, split.host]
            .iter()
            .filter(|&&w| w > 0)
            .count()
    }

    /// Plans a shard assignment for one op of the given [`ShardShape`].
    pub fn plan(&self, op: &str, shape: ShardShape) -> Result<ShardPlan, ShardError> {
        let work = shape.work;
        let estimates: [Option<f64>; 3] = [
            self.estimate(Target::Cnm, op, &shape),
            self.estimate(Target::Cim, op, &shape),
            self.estimate(Target::Host, op, &shape),
        ];
        if work == 0 {
            // Zero-work ops plan to empty splits, but an infeasible forced
            // policy is still an error (fractions are validated even when
            // they apportion nothing).
            match self.policy {
                ShardPolicy::Fractions(fractions) => {
                    ShardSplit::from_fractions(0, fractions)?;
                }
                ShardPolicy::Single(target) => {
                    self.single_split(op, 0, target, &estimates)?;
                }
                ShardPolicy::Auto | ShardPolicy::MinimizeEnergy => {}
            }
            return Ok(self.finish(op, &shape, ShardSplit::default(), None));
        }
        match self.policy {
            ShardPolicy::Single(target) => {
                let split = self.single_split(op, work, target, &estimates)?;
                Ok(self.finish(op, &shape, split, Some(target)))
            }
            ShardPolicy::Fractions(fractions) => {
                let split = ShardSplit::from_fractions(work, fractions)?;
                if split.cim > 0 && estimates[1].is_none() {
                    return Err(ShardError::Unsupported {
                        device: cinm_lowering::ShardDevice::Cim,
                        op: "forced-fraction shard",
                    });
                }
                Ok(self.finish(op, &shape, split, None))
            }
            ShardPolicy::Auto => self.plan_auto(op, &shape, &estimates),
            ShardPolicy::MinimizeEnergy => self.plan_min_energy(op, &shape, &estimates),
        }
    }

    /// The `MinimizeEnergy` policy: all work goes to the device with the
    /// smallest full-work joule estimate (see [`ShardPolicy::MinimizeEnergy`]
    /// for why single-device placement is optimal under amortising fixed
    /// energy costs). Devices without an energy-calibrated model — or
    /// without support for the op at all — drop out; with no energy
    /// candidate anywhere the op stays on the host, the catch-all target.
    fn plan_min_energy(
        &self,
        op: &str,
        shape: &ShardShape,
        estimates: &[Option<f64>; 3],
    ) -> Result<ShardPlan, ShardError> {
        let work = shape.work;
        let best = estimates
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .filter_map(|(i, _)| {
                self.estimate_joules(index_target(i), op, shape)
                    .map(|j| (i, j))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let Some((device, _)) = best else {
            let split = ShardSplit::all_host(work);
            return Ok(self.finish(op, shape, split, Some(Target::Host)));
        };
        let target = index_target(device);
        let split = self.single_split(op, work, target, estimates)?;
        Ok(self.finish(op, shape, split, Some(target)))
    }

    /// Checks a forced single-target placement against the support matrix.
    fn single_split(
        &self,
        op: &str,
        work: usize,
        target: Target,
        estimates: &[Option<f64>; 3],
    ) -> Result<ShardSplit, ShardError> {
        // A registered model's `Some` estimate is authoritative; without a
        // model, fall back to the Table 1 paradigm-support matrix (the host
        // executes anything).
        let supported = match target {
            Target::Cnm => {
                estimates[0].is_some() || cinm::paradigm_support(op).is_some_and(|s| s.cnm)
            }
            Target::Cim => estimates[1].is_some(),
            Target::Host => true,
        };
        if !supported {
            let device = match target {
                Target::Cnm => cinm_lowering::ShardDevice::Cnm,
                Target::Cim => cinm_lowering::ShardDevice::Cim,
                Target::Host => cinm_lowering::ShardDevice::Host,
            };
            return Err(ShardError::Unsupported {
                device,
                op: "forced single-target shard",
            });
        }
        Ok(match target {
            Target::Cnm => ShardSplit::all_cnm(work),
            Target::Cim => ShardSplit::all_cim(work),
            Target::Host => ShardSplit::all_host(work),
        })
    }

    /// Fits the affine cost `t_i(w) = fixed + per_unit · w` (seconds over
    /// work units) of one device by sampling its model at the full and at
    /// half the shard size.
    fn affine_estimate(&self, target: Target, op: &str, shape: &ShardShape) -> Option<AffineCost> {
        let work = shape.work;
        let t_full = self.estimate(target, op, shape)?.max(0.0);
        let half = work / 2;
        let t_half = if half > 0 {
            self.estimate(target, op, &shape.with_work(half))
                .unwrap_or(t_full / 2.0)
        } else {
            t_full / 2.0
        };
        let per_unit = if work > half {
            ((t_full - t_half) / (work - half) as f64).max(1e-15)
        } else {
            1e-15
        };
        let fixed = (t_full - per_unit * work as f64).max(0.0);
        Some(AffineCost { fixed, per_unit })
    }

    /// The `Auto` policy: balance estimated completion times with affine
    /// per-device costs (water-filling; see the module docs).
    fn plan_auto(
        &self,
        op: &str,
        shape: &ShardShape,
        estimates: &[Option<f64>; 3],
    ) -> Result<ShardPlan, ShardError> {
        let work = shape.work;
        let granularity = self.granularity.max(1);
        // Candidate devices: those with a model-backed estimate.
        let candidates: Vec<(usize, f64)> = estimates
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i, t.max(1e-12))))
            .collect();
        // No model supports the op: everything stays on the host (the
        // paper's catch-all for ops outside the offloadable set).
        if candidates.is_empty() {
            let split = ShardSplit::all_host(work);
            return Ok(self.finish(op, shape, split, Some(Target::Host)));
        }
        let fastest = candidates
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(i, _)| i)
            .unwrap();
        // Too small to shard, or nothing to share it with.
        if work < 2 * granularity || candidates.len() == 1 {
            let target = index_target(fastest);
            let split = self.single_split(op, work, target, estimates)?;
            return Ok(self.finish(op, shape, split, Some(target)));
        }
        // Water-fill over affine costs: drop every device whose fixed
        // overhead exceeds the balanced makespan of the remaining set.
        let mut active: Vec<(usize, AffineCost)> = candidates
            .iter()
            .filter_map(|&(i, _)| {
                self.affine_estimate(index_target(i), op, shape)
                    .map(|a| (i, a))
            })
            .collect();
        let makespan = loop {
            let inv_sum: f64 = active.iter().map(|(_, a)| 1.0 / a.per_unit).sum();
            let fixed_sum: f64 = active.iter().map(|(_, a)| a.fixed / a.per_unit).sum();
            let t = (work as f64 + fixed_sum) / inv_sum;
            if active.len() > 1 {
                // Remove the device with the largest fixed overhead if that
                // overhead alone exceeds the balanced makespan.
                let (worst_pos, worst) = active
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1 .1.fixed.partial_cmp(&b.1 .1.fixed).unwrap())
                    .map(|(p, &(_, a))| (p, a))
                    .unwrap();
                if worst.fixed >= t {
                    active.remove(worst_pos);
                    continue;
                }
            }
            break t;
        };
        let mut units = [0usize; 3];
        let mut assigned = 0usize;
        for &(i, a) in &active {
            let w = ((makespan - a.fixed) / a.per_unit).max(0.0);
            let granules = (w / granularity as f64).floor() as usize;
            units[i] = (granules * granularity).min(work);
            assigned += units[i];
        }
        // Sub-granule shards fold away.
        for u in units.iter_mut() {
            if *u < granularity {
                assigned -= *u;
                *u = 0;
            }
        }
        // Guard against over-assignment from independent rounding.
        if assigned > work {
            let over = assigned - work;
            for &(i, _) in active.iter().rev() {
                let take = over.min(units[i]);
                units[i] -= take;
                assigned -= take;
                if assigned <= work {
                    break;
                }
            }
        }
        // The rounding remainder goes to the active device with the largest
        // shard (the one best equipped to absorb extra work); units ties —
        // in particular the all-folded case where every balanced shard was
        // sub-granule — resolve to the device with the smallest estimate,
        // not to whichever device happens to iterate last.
        let remainder_to = active
            .iter()
            .map(|&(i, _)| i)
            .max_by(|&a, &b| {
                units[a].cmp(&units[b]).then_with(|| {
                    let (ta, tb) = (
                        estimates[a].unwrap_or(f64::INFINITY),
                        estimates[b].unwrap_or(f64::INFINITY),
                    );
                    tb.partial_cmp(&ta).unwrap()
                })
            })
            .unwrap_or(fastest);
        units[remainder_to] += work - assigned;
        debug_assert_eq!(units.iter().sum::<usize>(), work);
        let split = ShardSplit {
            cnm: units[0],
            cim: units[1],
            host: units[2],
        };
        let fallback = if Self::split_device_count(&split) > 1 {
            None
        } else {
            Some(index_target(
                units.iter().position(|&u| u > 0).unwrap_or(fastest),
            ))
        };
        Ok(self.finish(op, shape, split, fallback))
    }

    fn finish(
        &self,
        op: &str,
        shape: &ShardShape,
        split: ShardSplit,
        fallback: Option<Target>,
    ) -> ShardPlan {
        let mut estimated_seconds = [0.0f64; 3];
        let mut estimated_joules = [0.0f64; 3];
        for (i, &w) in [split.cnm, split.cim, split.host].iter().enumerate() {
            if w > 0 {
                if let Some(t) = self.estimate(index_target(i), op, &shape.with_work(w)) {
                    estimated_seconds[i] = t;
                }
                if let Some(j) = self.estimate_joules(index_target(i), op, &shape.with_work(w)) {
                    estimated_joules[i] = j;
                }
            }
        }
        ShardPlan {
            op: op.to_string(),
            work: shape.work,
            fractions: split.fractions(),
            split,
            estimated_seconds,
            estimated_joules,
            fallback,
        }
    }
}

/// Cache key of a memoized [`ShardPlan`]: the op name plus the full
/// [`ShardShape`]. The policy and the registered device set are fixed per
/// wrapped planner — together with this key they fully determine the plan —
/// so they are invalidation events (the cache is cleared), not key fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    op: &'static str,
    work: usize,
    inner: usize,
    out: usize,
}

/// A memoizing wrapper around [`ShardPlanner`].
///
/// Re-planning the same `(op, shape)` is pure repeated work — the planner
/// samples every cost model twice and water-fills — yet exactly that happens
/// in any serving loop issuing same-shaped ops. `CachedShardPlanner` caches
/// each computed [`ShardPlan`] keyed by op name and shape; lookups are
/// allocation-free.
///
/// **Invalidation rule:** any reconfiguration of the planning inputs — a
/// policy change ([`set_policy`](Self::set_policy)), a newly registered cost
/// model ([`register_model`](Self::register_model)), or swapping the whole
/// planner ([`set_planner`](Self::set_planner)) — clears the cache. Those
/// are the only ways cost-model configuration can change, so a cached plan
/// can never go stale. Planning *errors* (infeasible forced policies) are
/// not cached.
///
/// The ops the sharded layer executes are named by `'static` dialect
/// constants (`cinm_dialects::cinm::GEMM`, …), which is what the key
/// borrows.
pub struct CachedShardPlanner {
    planner: ShardPlanner,
    cache: HashMap<PlanKey, ShardPlan>,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for CachedShardPlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedShardPlanner")
            .field("planner", &self.planner)
            .field("cached_plans", &self.cache.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl CachedShardPlanner {
    /// Wraps a planner.
    pub fn new(planner: ShardPlanner) -> Self {
        CachedShardPlanner {
            planner,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Wraps a planner with the default device cost models (see
    /// [`ShardPlanner::with_default_models`]).
    pub fn with_default_models(ranks: usize) -> Self {
        CachedShardPlanner::new(ShardPlanner::with_default_models(ranks))
    }

    /// The wrapped planner (read-only; mutation goes through the
    /// invalidating setters).
    pub fn planner(&self) -> &ShardPlanner {
        &self.planner
    }

    /// Replaces the policy and invalidates every cached plan.
    pub fn set_policy(&mut self, policy: ShardPolicy) {
        self.planner.policy = policy;
        self.cache.clear();
    }

    /// Registers an additional cost model and invalidates every cached plan.
    pub fn register_model(&mut self, model: Box<dyn CostModel>) {
        self.planner.register_model(model);
        self.cache.clear();
    }

    /// Replaces the wrapped planner wholesale and invalidates every cached
    /// plan.
    pub fn set_planner(&mut self, planner: ShardPlanner) {
        self.planner = planner;
        self.cache.clear();
    }

    /// Cache hits / misses so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of memoized plans.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Plans a shard assignment, returning the memoized plan when the same
    /// `(op, shape)` was planned before under the current configuration —
    /// bit-identical to calling [`ShardPlanner::plan`] directly (the planner
    /// is deterministic; `tests/properties.rs` asserts the equivalence over
    /// randomized shape streams with repeats).
    ///
    /// # Errors
    ///
    /// Propagates [`ShardPlanner::plan`] errors (never cached).
    pub fn plan(&mut self, op: &'static str, shape: ShardShape) -> Result<&ShardPlan, ShardError> {
        let key = PlanKey {
            op,
            work: shape.work,
            inner: shape.inner,
            out: shape.out,
        };
        if self.cache.contains_key(&key) {
            self.hits += 1;
        } else {
            let plan = self.planner.plan(op, shape)?;
            self.misses += 1;
            self.cache.insert(key, plan);
        }
        Ok(&self.cache[&key])
    }

    /// Convenience: the memoized split alone (a `Copy`, so callers avoid
    /// borrowing the cache across execution).
    pub fn split_for(
        &mut self,
        op: &'static str,
        shape: ShardShape,
    ) -> Result<ShardSplit, ShardError> {
        self.plan(op, shape).map(|p| p.split)
    }

    /// Feeds measured per-device execution seconds of one shard-dispatched
    /// `(op, shape)` back into the planner's [`ShardCalibrator`].
    ///
    /// `measured` is `[cnm, cim, host]` simulated seconds of the dispatch.
    /// Each device that actually ran work (`split > 0`) and has a positive
    /// plan estimate contributes one `measured / estimated` observation.
    /// Returns `true` — after clearing the memoized plans — when any
    /// correction moved significantly, so future planning resamples the
    /// (now recalibrated) models; insignificant drift keeps the cache.
    pub fn feedback(&mut self, op: &'static str, shape: ShardShape, measured: [f64; 3]) -> bool {
        let key = PlanKey {
            op,
            work: shape.work,
            inner: shape.inner,
            out: shape.out,
        };
        let Some(plan) = self.cache.get(&key) else {
            return false;
        };
        let splits = [plan.split.cnm, plan.split.cim, plan.split.host];
        let estimates = plan.estimated_seconds;
        let mut significant = false;
        for device in 0..3 {
            if splits[device] > 0 && estimates[device] > 0.0 && measured[device] > 0.0 {
                let ratio = measured[device] / estimates[device];
                significant |= self.planner.calibrator.observe(op, device, ratio);
            }
        }
        if significant {
            self.cache.clear();
        }
        significant
    }
}

/// Affine per-device shard cost in seconds over *work units*.
#[derive(Debug, Clone, Copy)]
struct AffineCost {
    /// Fixed overhead (transfers, launch, tile programming).
    fixed: f64,
    /// Marginal seconds per work unit.
    per_unit: f64,
}

fn index_target(i: usize) -> Target {
    match i {
        0 => Target::Cnm,
        1 => Target::Cim,
        _ => Target::Host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> ShardPlanner {
        ShardPlanner::with_default_models(4)
    }

    /// A linear-cost model with a fixed per-element rate, for planner tests
    /// that need controlled estimates.
    struct FlatRate {
        target: Target,
        seconds_per_element: f64,
    }

    impl CostModel for FlatRate {
        fn target(&self) -> Target {
            self.target
        }
        fn estimate_seconds(&self, _op: &str, elements: i64) -> Option<f64> {
            Some(elements.max(0) as f64 * self.seconds_per_element)
        }
    }

    #[test]
    fn all_subgranule_shards_collapse_onto_the_fastest_device_not_the_last() {
        // Three near-equal devices balance ~15 units each at granularity 16:
        // every shard folds away sub-granule and the whole op must land on
        // the *fastest* device, not on whichever iterates last (host).
        let mut p = ShardPlanner::new();
        for (target, rate) in [
            (Target::Cnm, 1.0e-6),
            (Target::Cim, 1.01e-6),
            (Target::Host, 1.02e-6),
        ] {
            p.register_model(Box::new(FlatRate {
                target,
                seconds_per_element: rate,
            }));
        }
        let plan = p.plan(cinm::GEMM, ShardShape::matmul(45, 1, 1)).unwrap();
        assert_eq!(plan.split.total(), 45);
        assert_eq!(plan.split.cnm, 45, "{plan:?}");
        assert_eq!(plan.fallback, Some(Target::Cnm), "{plan:?}");
    }

    #[test]
    fn auto_plans_use_multiple_devices_and_cover_all_work() {
        let p = planner();
        let plan = p
            .plan(cinm::GEMM, ShardShape::matmul(4096, 256, 128))
            .unwrap();
        assert_eq!(plan.split.total(), 4096);
        assert!(plan.is_sharded(), "{plan:?}");
        assert!(plan.fallback.is_none());
        assert!((plan.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Shards are whole granules (the remainder lands on one device).
        let granule_sized = [plan.split.cnm, plan.split.cim, plan.split.host]
            .iter()
            .filter(|&&w| w > 0 && w % p.granularity == 0)
            .count();
        assert!(granule_sized >= 1, "{plan:?}");
    }

    #[test]
    fn devices_estimating_none_get_zero_work() {
        let p = planner();
        // The crossbar backend cannot execute element-wise ops: its model
        // returns None and the plan must give it nothing.
        let plan = p.plan("cinm.add", ShardShape::streaming(1 << 21)).unwrap();
        assert_eq!(plan.split.cim, 0);
        assert_eq!(plan.split.total(), 1 << 21);
        assert!(plan.split.cnm > 0, "{plan:?}");
    }

    #[test]
    fn zero_work_ops_plan_to_empty_splits() {
        let plan = planner()
            .plan(cinm::GEMM, ShardShape::matmul(0, 0, 0))
            .unwrap();
        assert_eq!(plan.split, ShardSplit::default());
        assert_eq!(plan.fractions, [0.0; 3]);
        assert!(plan.fallback.is_none());
        assert!(!plan.is_sharded());
        // Infeasible forced policies are rejected even with nothing to
        // apportion.
        assert!(matches!(
            planner()
                .with_policy(ShardPolicy::Fractions([0.8, 0.0, 0.1]))
                .plan(cinm::GEMM, ShardShape::matmul(0, 0, 0)),
            Err(ShardError::FractionSum { .. })
        ));
        assert!(matches!(
            planner()
                .with_policy(ShardPolicy::Single(Target::Cim))
                .plan(cinm::REDUCE, ShardShape::streaming(0)),
            Err(ShardError::Unsupported { .. })
        ));
    }

    #[test]
    fn cached_planner_memoizes_and_invalidates_on_reconfiguration() {
        let mut cached = CachedShardPlanner::with_default_models(4);
        let shape = ShardShape::matmul(4096, 256, 128);
        let fresh = planner().plan(cinm::GEMM, shape).unwrap();
        let first = cached.plan(cinm::GEMM, shape).unwrap().clone();
        assert_eq!(first, fresh);
        // Second identical request is a hit and returns the same plan.
        let second = cached.plan(cinm::GEMM, shape).unwrap().clone();
        assert_eq!(second, fresh);
        assert_eq!(cached.cache_stats(), (1, 1));
        assert_eq!(cached.cached_plans(), 1);
        // A different shape is a distinct entry.
        cached
            .plan(cinm::GEMM, ShardShape::matmul(128, 64, 64))
            .unwrap();
        assert_eq!(cached.cached_plans(), 2);
        // split_for returns the cached plan's split by value.
        assert_eq!(cached.split_for(cinm::GEMM, shape).unwrap(), fresh.split);
        // Policy changes invalidate: the new plan reflects the new policy.
        cached.set_policy(ShardPolicy::Single(Target::Host));
        assert_eq!(cached.cached_plans(), 0);
        let host_only = cached.plan(cinm::GEMM, shape).unwrap();
        assert_eq!(host_only.split, ShardSplit::all_host(4096));
        // Registering a model invalidates too.
        cached.register_model(Box::new(FlatRate {
            target: Target::Cnm,
            seconds_per_element: 1e-9,
        }));
        assert_eq!(cached.cached_plans(), 0);
        // Errors are propagated and never cached.
        cached.set_policy(ShardPolicy::Fractions([0.5, 0.2, 0.2]));
        assert!(cached.plan(cinm::GEMM, shape).is_err());
        assert_eq!(cached.cached_plans(), 0);
    }

    #[test]
    fn shard_policy_cli_grammar_round_trips() {
        for (value, policy) in [
            ("auto", ShardPolicy::Auto),
            ("min-energy", ShardPolicy::MinimizeEnergy),
            ("cnm-only", ShardPolicy::Single(Target::Cnm)),
            ("cim-only", ShardPolicy::Single(Target::Cim)),
            ("host-only", ShardPolicy::Single(Target::Host)),
        ] {
            let parsed = ShardPolicy::parse_cli(value, None).unwrap();
            assert_eq!(parsed, policy);
            assert_eq!(parsed.cli_name(), value);
        }
        assert_eq!(
            ShardPolicy::parse_cli("fractions", Some("0.5, 0.25,0.25")).unwrap(),
            ShardPolicy::Fractions([0.5, 0.25, 0.25])
        );
        // Unparseable tokens are reported, not silently dropped.
        let err = ShardPolicy::parse_cli("fractions", Some("0.5,abc,0.5")).unwrap_err();
        assert!(err.contains("'abc'"), "{err}");
        assert!(ShardPolicy::parse_cli("fractions", Some("0.5,0.5")).is_err());
        assert!(ShardPolicy::parse_cli("fractions", None).is_err());
        assert!(ShardPolicy::parse_cli("bogus", None).is_err());
        // Only CIM-placing policies restrict the op set.
        assert!(ShardPolicy::Single(Target::Cim).requires_cim());
        assert!(ShardPolicy::Fractions([0.5, 0.25, 0.25]).requires_cim());
        assert!(!ShardPolicy::Fractions([0.5, 0.0, 0.5]).requires_cim());
        assert!(!ShardPolicy::Auto.requires_cim());
        assert!(!ShardPolicy::MinimizeEnergy.requires_cim());
        assert!(!ShardPolicy::Single(Target::Cnm).requires_cim());
    }

    #[test]
    fn min_energy_plans_never_exceed_makespan_plan_joules() {
        // The ISSUE's acceptance criterion over the bench-sweep op/shape
        // grid: the MinimizeEnergy plan's estimated joules are ≤ the
        // makespan-optimal (Auto) plan's joules on the same estimates.
        let auto = planner();
        let energy = planner().with_policy(ShardPolicy::MinimizeEnergy);
        let cases: [(&str, ShardShape); 8] = [
            (cinm::GEMV, ShardShape::matmul(4096, 1024, 1)),
            (cinm::GEMV, ShardShape::matmul(256, 256, 1)),
            (cinm::GEMM, ShardShape::matmul(4096, 256, 128)),
            (cinm::GEMM, ShardShape::matmul(64, 64, 64)),
            ("cinm.add", ShardShape::streaming(1 << 21)),
            ("cinm.add", ShardShape::streaming(1 << 12)),
            (cinm::REDUCE, ShardShape::streaming(1 << 20)),
            (cinm::HISTOGRAM, ShardShape::streaming(1 << 20)),
        ];
        for (op, shape) in cases {
            let auto_plan = auto.plan(op, shape).unwrap();
            let energy_plan = energy.plan(op, shape).unwrap();
            assert_eq!(energy_plan.split.total(), shape.work);
            assert!(
                !energy_plan.is_sharded(),
                "energy placement is single-device by construction: {energy_plan:?}"
            );
            let (e, a) = (
                energy_plan.total_estimated_joules(),
                auto_plan.total_estimated_joules(),
            );
            assert!(e > 0.0, "{op}: energy plan must carry a joule estimate");
            assert!(
                e <= a * (1.0 + 1e-9),
                "{op} {shape:?}: min-energy {e} J must not exceed auto {a} J"
            );
        }
    }

    #[test]
    fn energy_estimates_exist_for_every_supporting_device() {
        // Every default model now carries an energy calibration: wherever a
        // seconds estimate exists, a joules estimate must too (and both are
        // positive), so energy-aware planning sees the same candidate set.
        let p = planner();
        for (op, shape) in [
            (cinm::GEMM, ShardShape::matmul(1024, 256, 128)),
            (cinm::GEMV, ShardShape::matmul(4096, 1024, 1)),
            ("cinm.add", ShardShape::streaming(1 << 16)),
            (cinm::REDUCE, ShardShape::streaming(1 << 16)),
        ] {
            for target in [Target::Cnm, Target::Cim, Target::Host] {
                let secs = p.estimate(target, op, &shape);
                let joules = p.estimate_joules(target, op, &shape);
                assert_eq!(secs.is_some(), joules.is_some(), "{op} on {target}");
                if let Some(j) = joules {
                    assert!(j > 0.0, "{op} on {target}: {j}");
                }
            }
        }
    }

    #[test]
    fn ops_under_the_granularity_fall_back_to_one_device() {
        let p = planner();
        let work = p.granularity * 2 - 1;
        let plan = p
            .plan(cinm::GEMM, ShardShape::matmul(work, 64, 64))
            .unwrap();
        assert!(!plan.is_sharded());
        assert!(plan.fallback.is_some(), "{plan:?}");
        assert_eq!(plan.split.total(), work);
    }

    #[test]
    fn small_streaming_ops_collapse_onto_the_cheapest_device() {
        // At tiny sizes the grid's fixed transfer latencies dominate: the
        // water-filling step must drop the CNM device entirely.
        let plan = planner()
            .plan("cinm.add", ShardShape::streaming(1 << 12))
            .unwrap();
        assert_eq!(plan.split.cnm, 0, "{plan:?}");
        assert_eq!(plan.split.host, 1 << 12);
    }

    #[test]
    fn forced_fractions_must_sum_to_one() {
        let p = planner().with_policy(ShardPolicy::Fractions([0.6, 0.3, 0.3]));
        match p.plan(cinm::GEMM, ShardShape::matmul(100, 64, 64)) {
            Err(ShardError::FractionSum { sum }) => assert!((sum - 1.2).abs() < 1e-9),
            other => panic!("expected FractionSum, got {other:?}"),
        }
        let ok = planner()
            .with_policy(ShardPolicy::Fractions([0.5, 0.25, 0.25]))
            .plan(cinm::GEMM, ShardShape::matmul(100, 64, 64))
            .unwrap();
        assert_eq!(ok.split.total(), 100);
        assert_eq!(ok.split.cnm, 50);
    }

    #[test]
    fn forced_cim_work_on_unsupported_ops_is_an_error() {
        let p = planner().with_policy(ShardPolicy::Fractions([0.5, 0.25, 0.25]));
        assert!(matches!(
            p.plan("cinm.add", ShardShape::streaming(100)),
            Err(ShardError::Unsupported { .. })
        ));
        let single = planner().with_policy(ShardPolicy::Single(Target::Cim));
        assert!(matches!(
            single.plan(cinm::REDUCE, ShardShape::streaming(100)),
            Err(ShardError::Unsupported { .. })
        ));
        // Single-target CNM/host placements of supported ops are fine.
        for target in [Target::Cnm, Target::Host] {
            let plan = planner()
                .with_policy(ShardPolicy::Single(target))
                .plan(cinm::REDUCE, ShardShape::streaming(100))
                .unwrap();
            assert_eq!(plan.fallback, Some(target));
            assert_eq!(plan.split.total(), 100);
        }
    }

    #[test]
    fn unknown_ops_stay_on_the_host() {
        let plan = planner()
            .plan("cinm.simSearch", ShardShape::streaming(4096))
            .unwrap();
        assert_eq!(plan.split.host, 4096);
        assert_eq!(plan.fallback, Some(Target::Host));
    }

    /// Disambiguates between the planner-trait and device-trait methods of
    /// the concrete models (both are in scope in this module).
    fn shard_est(m: &dyn CostModel, op: &str, shape: ShardShape) -> Option<f64> {
        m.estimate_shard_seconds(op, &shape)
    }

    #[test]
    fn estimates_scale_with_problem_size_and_rank_count() {
        let small = CnmCostModel::new(UpmemConfig::with_ranks(4));
        let big = CnmCostModel::new(UpmemConfig::with_ranks(16));
        let shape = ShardShape::streaming(1 << 22);
        let t_small = shard_est(&small, "cinm.add", shape).unwrap();
        let t_big = shard_est(&big, "cinm.add", shape).unwrap();
        assert!(t_big < t_small, "more ranks must be faster");
        let host = HostCostModel::new(CpuModel::arm_host());
        assert!(
            shard_est(&host, cinm::GEMM, ShardShape::matmul(4096, 64, 64)).unwrap()
                > shard_est(&host, cinm::GEMM, ShardShape::matmul(64, 64, 64)).unwrap()
        );
        let cim = CimCostModel::new(CrossbarConfig::default());
        assert!(shard_est(&cim, cinm::GEMM, ShardShape::matmul(1024, 256, 128)).is_some());
        assert!(shard_est(&cim, "cinm.add", shape).is_none());
        // The legacy scalar interface stays usable for TargetSelector.
        let cim_model: &dyn CostModel = &cim;
        assert!(cim_model.estimate_seconds(cinm::GEMM, 1 << 20).is_some());
        assert!(cim_model.estimate_seconds("cinm.add", 1 << 20).is_none());
    }

    #[test]
    fn cnm_broadcast_cost_is_shard_size_independent() {
        // The stationary-operand broadcast must appear as a *fixed* cost:
        // halving the shard must less-than-halve the estimate.
        let m = CnmCostModel::new(UpmemConfig::with_ranks(16));
        let full = shard_est(&m, cinm::GEMM, ShardShape::matmul(1024, 256, 128)).unwrap();
        let half = shard_est(&m, cinm::GEMM, ShardShape::matmul(512, 256, 128)).unwrap();
        assert!(half > full / 2.0, "full {full} half {half}");
    }

    #[test]
    fn bench_scale_mv_auto_plan_balances_on_calibrated_estimates() {
        // ROADMAP item: the first-order CnmCostModel used to underestimate
        // per-DPU DMA inefficiency for matmul-like ops at low rows/DPU, so
        // auto plans had to be validated against measured single-device
        // times. With the model calibrated against
        // `upmem_sim::kernel_launch_cost`, the bench-scale `mv` plan stands
        // on its own estimates: it genuinely shards, and the estimated
        // completion times of the active devices balance (water-filling
        // succeeded on trustworthy numbers).
        let p = planner(); // the same default models, 4 ranks
        let plan = p
            .plan(cinm::GEMV, ShardShape::matmul(4096, 1024, 1))
            .unwrap();
        assert!(plan.is_sharded(), "{plan:?}");
        let active: Vec<f64> = plan
            .estimated_seconds
            .iter()
            .zip([plan.split.cnm, plan.split.cim, plan.split.host])
            .filter(|&(_, w)| w > 0)
            .map(|(&t, _)| t)
            .collect();
        assert!(active.len() >= 2, "{plan:?}");
        let (min, max) = active.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| {
            (lo.min(t), hi.max(t))
        });
        assert!(
            max / min < 2.0,
            "active-device estimates must balance: {active:?} ({plan:?})"
        );
    }

    #[test]
    fn planners_can_be_assembled_from_a_device_set() {
        use cinm_lowering::{CimRunOptions, UpmemRunOptions};
        // A planner registered from Device::cost hookups plans exactly like
        // one built from the hard-coded default models.
        let reference = planner();
        let mut from_devices = ShardPlanner::new();
        let upmem = cinm_lowering::UpmemDevice::new(cinm_lowering::UpmemBackend::new(
            4,
            UpmemRunOptions::optimized(),
        ));
        let cim = cinm_lowering::CimDevice::new(cinm_lowering::CimBackend::new(
            CimRunOptions::optimized(),
        ));
        let host = cinm_lowering::HostDevice::new(CpuModel::arm_host());
        from_devices.register_device(&upmem);
        from_devices.register_device(&cim);
        from_devices.register_device(&host);
        for shape in [
            ShardShape::matmul(4096, 256, 128),
            ShardShape::matmul(64, 64, 64),
        ] {
            assert_eq!(
                from_devices.plan(cinm::GEMM, shape).unwrap(),
                reference.plan(cinm::GEMM, shape).unwrap()
            );
        }
        assert_eq!(
            from_devices
                .plan("cinm.add", ShardShape::streaming(1 << 21))
                .unwrap(),
            reference
                .plan("cinm.add", ShardShape::streaming(1 << 21))
                .unwrap()
        );
    }

    #[test]
    fn calibrator_ema_converges_to_the_measured_ratio() {
        let mut cal = ShardCalibrator::default();
        assert_eq!(cal.scale("gemv", 0), 1.0);
        // The device consistently runs 3x slower than estimated. Each
        // observation is measured/estimated where the estimate already
        // includes the current scale, so the fixed point is 3.0.
        let mut significant_rounds = 0;
        for _ in 0..40 {
            let ratio = 3.0 / cal.scale("gemv", 0);
            if cal.observe("gemv", 0, ratio) {
                significant_rounds += 1;
            }
        }
        assert!((cal.scale("gemv", 0) - 3.0).abs() < 1e-3);
        // Early corrections are significant, late ones converge quiet.
        assert!(significant_rounds >= 1);
        let ratio = 3.0 / cal.scale("gemv", 0);
        assert!(!cal.observe("gemv", 0, ratio), "converged EMA stays quiet");
        // Other (op, device) entries are untouched.
        assert_eq!(cal.scale("gemv", 1), 1.0);
        assert_eq!(cal.scale("gemm", 0), 1.0);
        // Degenerate observations are rejected.
        assert!(!cal.observe("gemv", 0, 0.0));
        assert!(!cal.observe("gemv", 0, f64::NAN));
        assert!(!cal.observe("gemv", 0, f64::INFINITY));
    }

    #[test]
    fn calibrated_estimates_scale_the_model_minimum() {
        let mut p = ShardPlanner::new();
        p.register_model(Box::new(FlatRate {
            target: Target::Cnm,
            seconds_per_element: 1.0e-6,
        }));
        let shape = ShardShape::streaming(1000);
        let base = p.estimate(Target::Cnm, "cinm.add", &shape).unwrap();
        // Push the CNM scale up to ~2x and the estimate follows.
        for _ in 0..40 {
            let ratio = 2.0 / p.calibrator.scale("cinm.add", 0);
            p.calibrator.observe("cinm.add", 0, ratio);
        }
        let scaled = p.estimate(Target::Cnm, "cinm.add", &shape).unwrap();
        assert!((scaled / base - 2.0).abs() < 1e-3, "{scaled} vs {base}");
    }

    #[test]
    fn feedback_invalidates_cached_plans_only_on_significant_moves() {
        let mut p = ShardPlanner::new();
        for (target, rate) in [
            (Target::Cnm, 1.0e-6),
            (Target::Cim, 1.5e-6),
            (Target::Host, 2.0e-6),
        ] {
            p.register_model(Box::new(FlatRate {
                target,
                seconds_per_element: rate,
            }));
        }
        let mut cached = CachedShardPlanner::new(p);
        let shape = ShardShape::streaming(100_000);
        let plan = cached.plan("cinm.add", shape).unwrap().clone();
        assert_eq!(cached.cache_stats(), (0, 1));
        // Accurate measurements (ratio 1.0): cache survives.
        assert!(!cached.feedback("cinm.add", shape, plan.estimated_seconds));
        assert_eq!(cached.cached_plans(), 1);
        // CNM turns out 5x slower than modeled: significant, cache cleared,
        // and the replan shifts work away from CNM.
        let mut measured = plan.estimated_seconds;
        measured[0] *= 5.0;
        assert!(cached.feedback("cinm.add", shape, measured));
        assert_eq!(cached.cached_plans(), 0);
        let replanned = cached.plan("cinm.add", shape).unwrap();
        assert!(
            replanned.split.cnm < plan.split.cnm,
            "recalibration must shift work off the slow device ({} vs {})",
            replanned.split.cnm,
            plan.split.cnm
        );
        // Feedback for a shape that was never planned is a no-op.
        assert!(!cached.feedback("cinm.add", ShardShape::streaming(77), [1.0; 3]));
    }
}
