//! Workload runners: execute every benchmark on the host reference, the
//! [`Session`] graph API and the per-device back-ends, returning results and
//! simulated costs.
//!
//! [`run_session`] is the primary execution path (it is what the experiment
//! harness and [`run_upmem_with_stats`] drive); the eager
//! [`run_upmem`]/[`run_cim`] paths are retained as the equivalence oracle —
//! `session_results_match_the_eager_oracle` pins the two bit-identical per
//! workload, including the simulated kernel time.

use cinm_lowering::{
    CimBackend, CimRunOptions, CimRunStats, ShardedRunOptions, UpmemBackend, UpmemRunOptions,
};
use cinm_workloads::{data, Scale, WorkloadId, WorkloadParams};
use cpu_sim::kernels;
use cpu_sim::model::{CpuModel, OpCounts};
use upmem_sim::{BinOp, SystemStats};

use crate::session::{Session, SessionOptions, TensorShape};
use crate::shard::ShardPolicy;
use crate::target::Target;

/// The input tensors of one workload instance.
#[derive(Debug, Clone, Default)]
pub struct WorkloadInputs {
    /// Flat input buffers, in workload-specific order.
    pub buffers: Vec<Vec<i32>>,
}

/// Generates the (deterministic) inputs of a workload.
pub fn inputs(id: WorkloadId, scale: Scale) -> WorkloadInputs {
    let p = id.params(scale);
    let g = |seed, len| data::i32_vec(seed, len, -8, 8);
    let buffers = match p {
        WorkloadParams::Gemm { m, k, n } => vec![g(1, m * k), g(2, k * n)],
        WorkloadParams::Gemm2 { m, k, n, p } => vec![g(1, m * k), g(2, k * n), g(3, n * p)],
        WorkloadParams::Gemm3 { m, k, n, p } => {
            vec![g(1, m * k), g(2, k * n), g(3, n * k), g(4, k * p)]
        }
        WorkloadParams::Conv2d { h, w, c, kh, kw, f } => {
            vec![g(1, h * w * c), g(2, kh * kw * c * f)]
        }
        WorkloadParams::ContractL { a, b, c, d, e, f } => {
            vec![g(1, a * e * b * f), g(2, d * f * c * e)]
        }
        WorkloadParams::ContractS1 { a, b, c, d } => vec![g(1, a * c * d), g(2, d * b * c)],
        WorkloadParams::ContractS2 { a, b, c, d } => vec![g(1, a * c * d), g(2, d * b)],
        WorkloadParams::Mlp { batch, layers } => vec![
            g(1, batch * layers[0]),
            g(2, layers[1] * layers[0]),
            g(3, layers[1]),
            g(4, layers[2] * layers[1]),
            g(5, layers[2]),
            g(6, layers[3] * layers[2]),
            g(7, layers[3]),
        ],
        WorkloadParams::Gemv { rows, cols } => vec![g(1, rows * cols), g(2, cols)],
        WorkloadParams::Vector { len } => vec![g(1, len), g(2, len)],
        WorkloadParams::Select { len, .. } => vec![data::i32_vec(1, len, 0, 1 << 21)],
        WorkloadParams::Bfs { vertices, degree } => {
            let (rows, cols) = data::csr_graph(1, vertices, degree);
            let mut frontier = vec![0i32; vertices];
            for f in frontier.iter_mut().step_by(97) {
                *f = 1;
            }
            vec![rows, cols, frontier]
        }
        WorkloadParams::Histogram { len, max_value, .. } => {
            vec![data::i32_vec(1, len, 0, max_value)]
        }
        WorkloadParams::TimeSeries { len, .. } => vec![data::i32_vec(1, len, -64, 64)],
    };
    WorkloadInputs { buffers }
}

/// Computes the host reference result of a workload (single-threaded golden
/// implementation). For the partitioned PrIM kernels (`ts`, `bfs`) the
/// reference follows the same data partitioning as the device run, which is
/// supplied via `partitions`.
pub fn reference(
    id: WorkloadId,
    scale: Scale,
    inp: &WorkloadInputs,
    partitions: usize,
) -> Vec<i32> {
    let p = id.params(scale);
    let b = &inp.buffers;
    match p {
        WorkloadParams::Gemm { m, k, n } => kernels::matmul(&b[0], &b[1], m, k, n),
        WorkloadParams::Gemm2 { m, k, n, p } => {
            let d = kernels::matmul(&b[0], &b[1], m, k, n);
            kernels::matmul(&d, &b[2], m, n, p)
        }
        WorkloadParams::Gemm3 { m, k, n, p } => {
            let e = kernels::matmul(&b[0], &b[1], m, k, n);
            let f = kernels::matmul(&b[2], &b[3], n, k, p);
            kernels::matmul(&e, &f, m, n, p)
        }
        WorkloadParams::Conv2d { h, w, c, kh, kw, f } => {
            kernels::conv2d_nhwc_hwcf(&b[0], &b[1], 1, h, w, c, kh, kw, f)
        }
        WorkloadParams::ContractL {
            a,
            b: bb,
            c,
            d,
            e,
            f,
        } => kernels::contraction_contrl(&b[0], &b[1], a, bb, c, d, e, f),
        WorkloadParams::ContractS1 { a, b: bb, c, d } => {
            kernels::contraction_contrs1(&b[0], &b[1], a, bb, c, d)
        }
        WorkloadParams::ContractS2 { a, b: bb, c, d } => {
            kernels::contraction_contrs2(&b[0], &b[1], a, bb, c, d)
        }
        WorkloadParams::Mlp { batch, layers } => {
            let l1 =
                kernels::fully_connected(&b[0], &b[1], &b[2], batch, layers[0], layers[1], true);
            let l2 = kernels::fully_connected(&l1, &b[3], &b[4], batch, layers[1], layers[2], true);
            kernels::fully_connected(&l2, &b[5], &b[6], batch, layers[2], layers[3], false)
        }
        WorkloadParams::Gemv { rows, cols } => kernels::matvec(&b[0], &b[1], rows, cols),
        WorkloadParams::Vector { len: _ } => match id {
            WorkloadId::Red => vec![kernels::reduce_add(&b[0])],
            _ => kernels::vector_add(&b[0], &b[1]),
        },
        WorkloadParams::Select { threshold, .. } => kernels::select_gt(&b[0], threshold),
        WorkloadParams::Bfs { vertices, degree } => {
            // Partitioned semantics: each partition owns a contiguous block of
            // vertices with a local CSR fragment.
            let vp = vertices.div_ceil(partitions.max(1)).max(1);
            let mut out = Vec::new();
            for part in 0..vertices.div_ceil(vp) {
                let v0 = part * vp;
                let v1 = (v0 + vp).min(vertices);
                let local_n = v1 - v0;
                let mut rows = vec![0i32; vp + 1];
                let mut cols = Vec::new();
                for (li, v) in (v0..v1).enumerate() {
                    let s = b[0][v] as usize;
                    let e = b[0][v + 1] as usize;
                    cols.extend_from_slice(&b[1][s..e]);
                    rows[li + 1] = cols.len() as i32;
                }
                for li in local_n..vp {
                    rows[li + 1] = rows[local_n];
                }
                let mut frontier = vec![0i32; vp];
                frontier[..local_n].copy_from_slice(&b[2][v0..v1]);
                // Pad the column list to the fixed per-partition extent.
                cols.resize(vp * degree, 0);
                let next = kernels::bfs_step(&rows, &cols, &frontier, vp);
                out.extend_from_slice(&next);
            }
            out
        }
        WorkloadParams::Histogram {
            bins, max_value, ..
        } => kernels::histogram(&b[0], bins, max_value),
        WorkloadParams::TimeSeries { len, window } => {
            // Partitioned semantics: each partition profiles its chunk.
            let chunk = len.div_ceil(partitions.max(1)).max(window);
            let mut out = Vec::new();
            let mut padded = b[0].clone();
            padded.resize(chunk * len.div_ceil(chunk), 0);
            for part in 0..len.div_ceil(chunk) {
                let slice = &padded[part * chunk..(part + 1) * chunk];
                out.extend_from_slice(&kernels::time_series_profile(slice, window));
            }
            out
        }
    }
}

/// Per-partition CSR fragments of a BFS graph, laid out contiguously so a
/// chunked scatter gives each DPU its fragment (shared by the eager runner,
/// the session runner and the multi-step BFS experiment).
#[derive(Debug, Clone)]
pub struct BfsFragments {
    /// Concatenated per-partition row offsets (`vertices_per_dpu + 1` each).
    pub rows: Vec<i32>,
    /// Concatenated per-partition column indices, padded to
    /// `vertices_per_dpu * degree` each.
    pub cols: Vec<i32>,
    /// Concatenated per-partition frontier bitmaps.
    pub frontier: Vec<i32>,
    /// Vertices owned by each partition.
    pub vertices_per_dpu: usize,
    /// Partitions actually holding vertices.
    pub used_dpus: usize,
}

/// Builds the per-partition CSR fragments of a BFS graph over `partitions`
/// partitions (the device's DPU count): each partition owns a contiguous
/// block of vertices with a local CSR fragment whose column indices address
/// vertices modulo the partition size — the PrIM-style partitioned BFS
/// semantics both the simulator kernel and the host reference follow.
pub fn bfs_fragments(
    row_offsets: &[i32],
    col_indices: &[i32],
    frontier: &[i32],
    vertices: usize,
    degree: usize,
    partitions: usize,
) -> BfsFragments {
    let vp = vertices.div_ceil(partitions.max(1)).max(1);
    let used = vertices.div_ceil(vp);
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut front = Vec::new();
    for part in 0..used {
        let v0 = part * vp;
        let v1 = (v0 + vp).min(vertices);
        let mut local_rows = vec![0i32];
        let mut local_cols = Vec::new();
        for v in v0..v1 {
            let s = row_offsets[v] as usize;
            let e = row_offsets[v + 1] as usize;
            local_cols.extend_from_slice(&col_indices[s..e]);
            local_rows.push(local_cols.len() as i32);
        }
        local_rows.resize(vp + 1, *local_rows.last().unwrap());
        local_cols.resize(vp * degree, 0);
        rows.extend_from_slice(&local_rows);
        cols.extend_from_slice(&local_cols);
        let mut local_front = vec![0i32; vp];
        local_front[..v1 - v0].copy_from_slice(&frontier[v0..v1]);
        front.extend_from_slice(&local_front);
    }
    BfsFragments {
        rows,
        cols,
        frontier: front,
        vertices_per_dpu: vp,
        used_dpus: used,
    }
}

/// Runs a workload on the UPMEM backend, returning `(result, stats)`.
pub fn run_upmem(
    id: WorkloadId,
    scale: Scale,
    inp: &WorkloadInputs,
    backend: &mut UpmemBackend,
) -> Vec<i32> {
    let p = id.params(scale);
    let b = &inp.buffers;
    match p {
        WorkloadParams::Gemm { m, k, n } => backend.gemm(&b[0], &b[1], m, k, n),
        WorkloadParams::Gemm2 { m, k, n, p } => {
            let d = backend.gemm(&b[0], &b[1], m, k, n);
            backend.gemm(&d, &b[2], m, n, p)
        }
        WorkloadParams::Gemm3 { m, k, n, p } => {
            // The third GEMM depends on the first two; the host synchronises
            // in between (the barrier discussed for Figure 11).
            let e = backend.gemm(&b[0], &b[1], m, k, n);
            let f = backend.gemm(&b[2], &b[3], n, k, p);
            backend.gemm(&e, &f, m, n, p)
        }
        WorkloadParams::Conv2d { h, w, c, kh, kw, f } => {
            // conv is rewritten as im2col + GEMM (Figure 5); the host prepares
            // the patch matrix before scattering it.
            let patches = kernels::im2col(&b[0], 1, h, w, c, kh, kw);
            let oh = h - kh + 1;
            let ow = w - kw + 1;
            backend.gemm(&patches, &b[1], oh * ow, kh * kw * c, f)
        }
        WorkloadParams::ContractL {
            a,
            b: bb,
            c,
            d,
            e,
            f,
        } => {
            // Rewritten as GEMM over collapsed index groups. The contrl
            // kernel contracts (e, f): A[(a·b) × (e·f)], B[(e·f) × (c·d)].
            let a_mat = regroup_contrl_a(&b[0], a, bb, e, f);
            let b_mat = regroup_contrl_b(&b[1], c, d, e, f);
            let flat = backend.gemm(&a_mat, &b_mat, a * bb, e * f, c * d);
            reorder_contrl_output(&flat, a, bb, c, d)
        }
        WorkloadParams::ContractS1 { a, b: bb, c, d } => {
            let a_mat = regroup_contrs1_a(&b[0], a, c, d);
            let b_mat = regroup_contrs1_b(&b[1], bb, c, d);
            backend.gemm(&a_mat, &b_mat, a, c * d, bb)
        }
        WorkloadParams::ContractS2 { a, b: bb, c, d } => {
            let flat = backend.gemm(&b[0], &b[1], a * c, d, bb);
            reorder_contrs2_output(&flat, a, bb, c)
        }
        WorkloadParams::Mlp { batch, layers } => {
            let mut x = b[0].clone();
            let specs = [
                (&b[1], &b[2], layers[0], layers[1], true),
                (&b[3], &b[4], layers[1], layers[2], true),
                (&b[5], &b[6], layers[2], layers[3], false),
            ];
            for (w, bias, inf, outf, relu) in specs {
                let wt = kernels::transpose(w, outf, inf);
                let y = backend.gemm(&x, &wt, batch, inf, outf);
                let bias_full: Vec<i32> = (0..batch * outf).map(|i| bias[i % outf]).collect();
                let mut z = backend.elementwise(BinOp::Add, &y, &bias_full);
                if relu {
                    let zeros = vec![0i32; z.len()];
                    z = backend.elementwise(BinOp::Max, &z, &zeros);
                }
                x = z;
            }
            x
        }
        WorkloadParams::Gemv { rows, cols } => backend.gemv(&b[0], &b[1], rows, cols),
        WorkloadParams::Vector { .. } => match id {
            WorkloadId::Red => vec![backend.reduce(BinOp::Add, &b[0])],
            _ => backend.elementwise(BinOp::Add, &b[0], &b[1]),
        },
        WorkloadParams::Select { threshold, .. } => backend.select(&b[0], threshold),
        WorkloadParams::Bfs { vertices, degree } => {
            let f = bfs_fragments(&b[0], &b[1], &b[2], vertices, degree, backend.num_dpus());
            backend.bfs_step(
                &f.rows,
                &f.cols,
                &f.frontier,
                f.vertices_per_dpu,
                degree,
                f.used_dpus,
            )
        }
        WorkloadParams::Histogram {
            bins, max_value, ..
        } => backend.histogram(&b[0], bins, max_value),
        WorkloadParams::TimeSeries { window, .. } => backend.time_series(&b[0], window),
    }
}

/// Runs a workload through the [`Session`] graph API — the primary execution
/// path. Device ops are recorded lazily and compiled per [`Session::run`];
/// multi-op workloads (`2mm`, `3mm`, `mlp`) chain through device-resident
/// intermediates instead of the eager path's gather + re-scatter. Host-side
/// preparation (im2col, contraction regrouping, MLP weight transposes) runs
/// on the host exactly as in the eager path, so results are bit-identical to
/// [`run_upmem`] (pinned by the oracle test).
pub fn run_session(
    id: WorkloadId,
    scale: Scale,
    inp: &WorkloadInputs,
    s: &mut Session,
) -> Vec<i32> {
    let p = id.params(scale);
    let b = &inp.buffers;
    match p {
        WorkloadParams::Gemm { m, k, n } => {
            let a = s.matrix(&b[0], m, k);
            let bb = s.matrix(&b[1], k, n);
            let c = s.gemm(a, bb);
            s.run().expect("session plan");
            s.fetch(c)
        }
        WorkloadParams::Gemm2 { m, k, n, p } => {
            let a = s.matrix(&b[0], m, k);
            let bb = s.matrix(&b[1], k, n);
            let cc = s.matrix(&b[2], n, p);
            let d = s.gemm(a, bb);
            let e = s.gemm(d, cc);
            s.run().expect("session plan");
            s.fetch(e)
        }
        WorkloadParams::Gemm3 { m, k, n, p } => {
            let a = s.matrix(&b[0], m, k);
            let bb = s.matrix(&b[1], k, n);
            let cc = s.matrix(&b[2], n, k);
            let dd = s.matrix(&b[3], k, p);
            let e = s.gemm(a, bb);
            let f = s.gemm(cc, dd);
            let g = s.gemm(e, f);
            s.run().expect("session plan");
            s.fetch(g)
        }
        WorkloadParams::Conv2d { h, w, c, kh, kw, f } => {
            // conv is rewritten as im2col + GEMM (Figure 5); the host
            // prepares the patch matrix before the graph runs.
            let patches = kernels::im2col(&b[0], 1, h, w, c, kh, kw);
            let (oh, ow) = (h - kh + 1, w - kw + 1);
            let a = s.matrix(&patches, oh * ow, kh * kw * c);
            let bb = s.matrix(&b[1], kh * kw * c, f);
            let out = s.gemm(a, bb);
            s.run().expect("session plan");
            s.fetch(out)
        }
        WorkloadParams::ContractL {
            a,
            b: bb,
            c,
            d,
            e,
            f,
        } => {
            let a_mat = regroup_contrl_a(&b[0], a, bb, e, f);
            let b_mat = regroup_contrl_b(&b[1], c, d, e, f);
            let at = s.matrix(&a_mat, a * bb, e * f);
            let bt = s.matrix(&b_mat, e * f, c * d);
            let out = s.gemm(at, bt);
            s.run().expect("session plan");
            reorder_contrl_output(&s.fetch(out), a, bb, c, d)
        }
        WorkloadParams::ContractS1 { a, b: bb, c, d } => {
            let a_mat = regroup_contrs1_a(&b[0], a, c, d);
            let b_mat = regroup_contrs1_b(&b[1], bb, c, d);
            let at = s.matrix(&a_mat, a, c * d);
            let bt = s.matrix(&b_mat, c * d, bb);
            let out = s.gemm(at, bt);
            s.run().expect("session plan");
            s.fetch(out)
        }
        WorkloadParams::ContractS2 { a, b: bb, c, d } => {
            let at = s.matrix(&b[0], a * c, d);
            let bt = s.matrix(&b[1], d, bb);
            let out = s.gemm(at, bt);
            s.run().expect("session plan");
            reorder_contrs2_output(&s.fetch(out), a, bb, c)
        }
        WorkloadParams::Mlp { batch, layers } => {
            // The weight transposes and bias replication are host-side data
            // preparation; the three GEMM + bias + ReLU stages are one graph
            // whose intermediates chain on the device.
            let mut x = s.matrix(&b[0], batch, layers[0]);
            let specs = [
                (&b[1], &b[2], layers[0], layers[1], true),
                (&b[3], &b[4], layers[1], layers[2], true),
                (&b[5], &b[6], layers[2], layers[3], false),
            ];
            let mut out = None;
            for (w, bias, inf, outf, relu) in specs {
                let wt_host = kernels::transpose(w, outf, inf);
                let wt = s.matrix(&wt_host, inf, outf);
                let y = s.gemm(x, wt);
                let bias_full: Vec<i32> = (0..batch * outf).map(|i| bias[i % outf]).collect();
                let bias_t = s.vector(&bias_full);
                let mut z = s.elementwise(BinOp::Add, y, bias_t);
                if relu {
                    let zeros = s.vector(&vec![0i32; batch * outf]);
                    z = s.elementwise(BinOp::Max, z, zeros);
                }
                x = s.reshape(
                    z,
                    TensorShape::Matrix {
                        rows: batch,
                        cols: outf,
                    },
                );
                out = Some(z);
            }
            let _ = x; // the last layer's view feeds no further gemm
            s.run().expect("session plan");
            s.fetch(out.expect("mlp has layers"))
        }
        WorkloadParams::Gemv { rows, cols } => {
            let a = s.matrix(&b[0], rows, cols);
            let x = s.vector(&b[1]);
            let y = s.gemv(a, x);
            s.run().expect("session plan");
            s.fetch(y)
        }
        WorkloadParams::Vector { .. } => {
            let a = s.vector(&b[0]);
            match id {
                WorkloadId::Red => {
                    let r = s.reduce(BinOp::Add, a);
                    s.run().expect("session plan");
                    vec![s.fetch_scalar(r)]
                }
                _ => {
                    let bb = s.vector(&b[1]);
                    let c = s.elementwise(BinOp::Add, a, bb);
                    s.run().expect("session plan");
                    s.fetch(c)
                }
            }
        }
        WorkloadParams::Select { threshold, .. } => {
            let a = s.vector(&b[0]);
            let sel = s.select(a, threshold);
            s.run().expect("session plan");
            s.fetch(sel)
        }
        WorkloadParams::Bfs { vertices, degree } => {
            let f = bfs_fragments(&b[0], &b[1], &b[2], vertices, degree, s.num_dpus());
            let rows = s.vector(&f.rows);
            let cols = s.vector(&f.cols);
            let frontier = s.vector(&f.frontier);
            let next = s.bfs_step(
                rows,
                cols,
                frontier,
                f.vertices_per_dpu,
                degree,
                f.used_dpus,
            );
            s.run().expect("session plan");
            s.fetch(next)
        }
        WorkloadParams::Histogram {
            bins, max_value, ..
        } => {
            let a = s.vector(&b[0]);
            let h = s.histogram(a, bins, max_value);
            s.run().expect("session plan");
            s.fetch(h)
        }
        WorkloadParams::TimeSeries { window, .. } => {
            let a = s.vector(&b[0]);
            let t = s.time_series(a, window);
            s.run().expect("session plan");
            s.fetch(t)
        }
    }
}

/// Runs a matmul-like workload on the CIM backend.
pub fn run_cim(
    id: WorkloadId,
    scale: Scale,
    inp: &WorkloadInputs,
    backend: &mut CimBackend,
) -> Vec<i32> {
    let p = id.params(scale);
    let b = &inp.buffers;
    match p {
        WorkloadParams::Gemm { m, k, n } => backend.gemm(&b[0], &b[1], m, k, n),
        WorkloadParams::Gemm2 { m, k, n, p } => {
            let d = backend.gemm(&b[0], &b[1], m, k, n);
            backend.gemm(&d, &b[2], m, n, p)
        }
        WorkloadParams::Gemm3 { m, k, n, p } => {
            let e = backend.gemm(&b[0], &b[1], m, k, n);
            let f = backend.gemm(&b[2], &b[3], n, k, p);
            backend.gemm(&e, &f, m, n, p)
        }
        WorkloadParams::Conv2d { h, w, c, kh, kw, f } => {
            let patches = kernels::im2col(&b[0], 1, h, w, c, kh, kw);
            // The im2col reshuffle runs on the ARM host.
            backend.host_fallback(OpCounts {
                int_ops: patches.len() as f64,
                mul_ops: 0.0,
                bytes_read: (patches.len() * 4) as f64,
                bytes_written: (patches.len() * 4) as f64,
            });
            let oh = h - kh + 1;
            let ow = w - kw + 1;
            backend.gemm(&patches, &b[1], oh * ow, kh * kw * c, f)
        }
        WorkloadParams::ContractL {
            a,
            b: bb,
            c,
            d,
            e,
            f,
        } => {
            let a_mat = regroup_contrl_a(&b[0], a, bb, e, f);
            let b_mat = regroup_contrl_b(&b[1], c, d, e, f);
            backend.host_fallback(OpCounts {
                int_ops: (a_mat.len() + b_mat.len()) as f64,
                mul_ops: 0.0,
                bytes_read: ((a_mat.len() + b_mat.len()) * 4) as f64,
                bytes_written: ((a_mat.len() + b_mat.len()) * 4) as f64,
            });
            let flat = backend.gemm(&a_mat, &b_mat, a * bb, e * f, c * d);
            reorder_contrl_output(&flat, a, bb, c, d)
        }
        WorkloadParams::ContractS1 { a, b: bb, c, d } => {
            let a_mat = regroup_contrs1_a(&b[0], a, c, d);
            let b_mat = regroup_contrs1_b(&b[1], bb, c, d);
            backend.gemm(&a_mat, &b_mat, a, c * d, bb)
        }
        WorkloadParams::ContractS2 { a, b: bb, c, d } => {
            let flat = backend.gemm(&b[0], &b[1], a * c, d, bb);
            reorder_contrs2_output(&flat, a, bb, c)
        }
        WorkloadParams::Mlp { batch, layers } => {
            let mut x = b[0].clone();
            let specs = [
                (&b[1], &b[2], layers[0], layers[1], true),
                (&b[3], &b[4], layers[1], layers[2], true),
                (&b[5], &b[6], layers[2], layers[3], false),
            ];
            for (w, bias, inf, outf, relu) in specs {
                let wt = kernels::transpose(w, outf, inf);
                let y = backend.gemm(&x, &wt, batch, inf, outf);
                // Bias add and ReLU stay on the ARM host (non-matmul ops).
                backend.host_fallback(OpCounts {
                    int_ops: 2.0 * y.len() as f64,
                    mul_ops: 0.0,
                    bytes_read: (y.len() * 8) as f64,
                    bytes_written: (y.len() * 4) as f64,
                });
                x = y
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let z = v.wrapping_add(bias[i % outf]);
                        if relu {
                            z.max(0)
                        } else {
                            z
                        }
                    })
                    .collect();
            }
            x
        }
        WorkloadParams::Gemv { rows, cols } => backend.gemv(&b[0], &b[1], rows, cols),
        _ => panic!("{} is not part of the CIM suite", id.name()),
    }
}

/// Operation counts of the whole workload for the CPU roofline baselines.
pub fn cpu_op_counts(id: WorkloadId, scale: Scale) -> OpCounts {
    let p = id.params(scale);
    let dense = |macs: usize, elems: usize| {
        OpCounts::dense(macs as f64, (elems * 4) as f64, (elems * 4) as f64)
    };
    match p {
        WorkloadParams::Gemm { m, k, n } => dense(m * k * n, m * k + k * n + m * n),
        WorkloadParams::Gemm2 { m, k, n, p } => {
            dense(m * k * n + m * n * p, m * k + k * n + n * p + 2 * m * p)
        }
        WorkloadParams::Gemm3 { m, k, n, p } => dense(
            m * k * n + n * k * p + m * n * p,
            m * k + k * n + n * k + k * p + m * p,
        ),
        WorkloadParams::Conv2d { h, w, c, kh, kw, f } => {
            let oh = h - kh + 1;
            let ow = w - kw + 1;
            dense(
                oh * ow * f * kh * kw * c,
                h * w * c + kh * kw * c * f + oh * ow * f,
            )
        }
        WorkloadParams::ContractL { a, b, c, d, e, f } => dense(
            a * b * c * d * e * f,
            a * e * b * f + d * f * c * e + a * b * c * d,
        ),
        WorkloadParams::ContractS1 { a, b, c, d } => {
            dense(a * b * c * d, a * c * d + d * b * c + a * b)
        }
        WorkloadParams::ContractS2 { a, b, c, d } => {
            dense(a * b * c * d, a * c * d + d * b + a * b * c)
        }
        WorkloadParams::Mlp { batch, layers } => {
            let macs =
                batch * (layers[0] * layers[1] + layers[1] * layers[2] + layers[2] * layers[3]);
            dense(
                macs,
                batch * (layers[0] + layers[1] + layers[2] + layers[3]),
            )
        }
        WorkloadParams::Gemv { rows, cols } => dense(rows * cols, rows * cols + cols + rows),
        WorkloadParams::Vector { len } => OpCounts {
            int_ops: len as f64,
            mul_ops: 0.0,
            bytes_read: (len * 8) as f64,
            bytes_written: (len * 4) as f64,
        },
        WorkloadParams::Select { len, .. } => OpCounts {
            int_ops: 2.0 * len as f64,
            mul_ops: 0.0,
            bytes_read: (len * 4) as f64,
            bytes_written: (len * 2) as f64,
        },
        WorkloadParams::Bfs { vertices, degree } => OpCounts {
            int_ops: (vertices * (degree + 2)) as f64,
            mul_ops: 0.0,
            bytes_read: (vertices * degree * 8) as f64,
            bytes_written: (vertices * 4) as f64,
        },
        WorkloadParams::Histogram { len, .. } => OpCounts {
            int_ops: 3.0 * len as f64,
            mul_ops: len as f64,
            bytes_read: (len * 4) as f64,
            bytes_written: (len / 8) as f64,
        },
        WorkloadParams::TimeSeries { len, window } => dense(len * window, len * 2),
    }
}

/// Builds a CNM-placed session for `ranks` DIMMs under the given UPMEM
/// code-generation options (what the figure sweeps execute on).
pub fn cnm_session(ranks: usize, options: UpmemRunOptions) -> Session {
    let pool = options.pool.clone();
    Session::new(
        SessionOptions::default()
            .with_policy(ShardPolicy::Single(Target::Cnm))
            .with_sharded(ShardedRunOptions {
                ranks,
                upmem: options,
                pool,
                ..ShardedRunOptions::default()
            }),
    )
}

/// Convenience wrappers returning `(result, simulated stats)`. Since the
/// session migration this executes through the [`Session`] graph API with
/// all ops placed on the CNM grid; the figures report DPU kernel time,
/// which is bit-identical to the eager path (residency changes transfer
/// bytes only, never kernel seconds — see the oracle test).
pub fn run_upmem_with_stats(
    id: WorkloadId,
    scale: Scale,
    ranks: usize,
    options: UpmemRunOptions,
) -> (Vec<i32>, SystemStats) {
    let inp = inputs(id, scale);
    let mut session = cnm_session(ranks, options);
    let out = run_session(id, scale, &inp, &mut session);
    (out, *session.upmem_stats())
}

/// Runs a CIM-suite workload and returns `(result, simulated stats)`.
pub fn run_cim_with_stats(
    id: WorkloadId,
    scale: Scale,
    options: CimRunOptions,
) -> (Vec<i32>, CimRunStats) {
    let inp = inputs(id, scale);
    let mut backend = CimBackend::new(options);
    let out = run_cim(id, scale, &inp, &mut backend);
    (out, backend.stats())
}

/// Execution time of the workload on a CPU baseline model.
pub fn cpu_seconds(id: WorkloadId, scale: Scale, model: &CpuModel) -> f64 {
    model.execution_seconds(&cpu_op_counts(id, scale))
}

// --- layout helpers for the contraction→GEMM rewrites ----------------------

fn regroup_contrl_a(a: &[i32], da: usize, db: usize, de: usize, df: usize) -> Vec<i32> {
    // A[a,e,b,f] -> A'[(a,b),(e,f)]
    let mut out = vec![0i32; da * db * de * df];
    for ia in 0..da {
        for ie in 0..de {
            for ib in 0..db {
                for if_ in 0..df {
                    let src = ((ia * de + ie) * db + ib) * df + if_;
                    let dst = (ia * db + ib) * (de * df) + (ie * df + if_);
                    out[dst] = a[src];
                }
            }
        }
    }
    out
}

fn regroup_contrl_b(b: &[i32], dc: usize, dd: usize, de: usize, df: usize) -> Vec<i32> {
    // B[d,f,c,e] -> B'[(e,f),(c,d)]
    let mut out = vec![0i32; dc * dd * de * df];
    for id in 0..dd {
        for if_ in 0..df {
            for ic in 0..dc {
                for ie in 0..de {
                    let src = ((id * df + if_) * dc + ic) * de + ie;
                    let dst = (ie * df + if_) * (dc * dd) + (ic * dd + id);
                    out[dst] = b[src];
                }
            }
        }
    }
    out
}

fn reorder_contrl_output(flat: &[i32], da: usize, db: usize, dc: usize, dd: usize) -> Vec<i32> {
    // flat[(a,b),(c,d)] is already C[a,b,c,d] row-major.
    assert_eq!(flat.len(), da * db * dc * dd);
    flat.to_vec()
}

fn regroup_contrs1_a(a: &[i32], da: usize, dc: usize, dd: usize) -> Vec<i32> {
    // A[a,c,d] -> A'[a,(c,d)] — already contiguous.
    assert_eq!(a.len(), da * dc * dd);
    a.to_vec()
}

fn regroup_contrs1_b(b: &[i32], db: usize, dc: usize, dd: usize) -> Vec<i32> {
    // B[d,b,c] -> B'[(c,d),b]
    let mut out = vec![0i32; db * dc * dd];
    for id in 0..dd {
        for ib in 0..db {
            for ic in 0..dc {
                let src = (id * db + ib) * dc + ic;
                let dst = (ic * dd + id) * db + ib;
                out[dst] = b[src];
            }
        }
    }
    out
}

fn reorder_contrs2_output(flat: &[i32], da: usize, db: usize, dc: usize) -> Vec<i32> {
    // flat[(a,c),b] -> C[a,b,c]
    let mut out = vec![0i32; da * db * dc];
    for ia in 0..da {
        for ic in 0..dc {
            for ib in 0..db {
                out[(ia * db + ib) * dc + ic] = flat[(ia * dc + ic) * db + ib];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_results_match_reference_for_every_workload() {
        for id in WorkloadId::all() {
            let inp = inputs(id, Scale::Test);
            let mut cfg = upmem_sim::UpmemConfig::with_ranks(1);
            cfg.dpus_per_rank = 8;
            let mut backend = UpmemBackend::with_config(cfg, UpmemRunOptions::optimized());
            let got = run_upmem(id, Scale::Test, &inp, &mut backend);
            let want = reference(id, Scale::Test, &inp, backend.num_dpus());
            match id {
                // The select result length depends on the data; compare as sets
                // of equal length since padding rules are exercised elsewhere.
                WorkloadId::Sel => assert_eq!(got, want, "{}", id.name()),
                _ => assert_eq!(got, want, "{}", id.name()),
            }
            assert!(backend.total_ms() > 0.0, "{}", id.name());
        }
    }

    #[test]
    fn session_results_match_the_eager_oracle_for_every_workload() {
        for id in WorkloadId::all() {
            let inp = inputs(id, Scale::Test);
            let mut cfg = upmem_sim::UpmemConfig::with_ranks(1);
            cfg.dpus_per_rank = 8;
            let mut eager = UpmemBackend::with_config(cfg.clone(), UpmemRunOptions::optimized());
            let want = run_upmem(id, Scale::Test, &inp, &mut eager);
            // Optimizer off: the lowering must mirror the eager program
            // launch for launch, so time and launch counts are comparable.
            let mut session = Session::new(
                SessionOptions::default()
                    .with_upmem_config(cfg.clone())
                    .with_policy(ShardPolicy::Single(Target::Cnm))
                    .with_optimizer(false),
            );
            let got = run_session(id, Scale::Test, &inp, &mut session);
            assert_eq!(got, want, "{}", id.name());
            // Residency never changes kernel time, only transfer bytes.
            let s = session.upmem_stats();
            let e = eager.stats();
            assert_eq!(s.kernel_seconds, e.kernel_seconds, "{}", id.name());
            assert_eq!(s.launches, e.launches, "{}", id.name());
            assert!(
                s.host_to_dpu_bytes + s.dpu_to_host_bytes
                    <= e.host_to_dpu_bytes + e.dpu_to_host_bytes,
                "{}: session moved more bytes than the eager path",
                id.name()
            );
            // Optimizer on: fusion may change launch counts and kernel
            // time, but never the results.
            let mut optimized = Session::new(
                SessionOptions::default()
                    .with_upmem_config(cfg)
                    .with_policy(ShardPolicy::Single(Target::Cnm)),
            );
            let got_opt = run_session(id, Scale::Test, &inp, &mut optimized);
            assert_eq!(got_opt, want, "{} (optimizer on)", id.name());
            let o = optimized.upmem_stats();
            assert!(o.launches <= e.launches, "{}", id.name());
        }
    }

    #[test]
    fn cim_results_match_reference_for_the_cim_suite() {
        for id in WorkloadId::cim_suite() {
            let inp = inputs(id, Scale::Test);
            let mut backend = CimBackend::new(CimRunOptions::optimized());
            let got = run_cim(id, Scale::Test, &inp, &mut backend);
            let want = reference(id, Scale::Test, &inp, 1);
            assert_eq!(got, want, "{}", id.name());
            assert!(backend.stats().total_seconds() > 0.0, "{}", id.name());
        }
    }

    #[test]
    fn cpu_op_counts_are_positive_and_scale_with_problem_size() {
        for id in WorkloadId::all() {
            let small = cpu_op_counts(id, Scale::Test);
            let big = cpu_op_counts(id, Scale::Bench);
            assert!(small.total_ops() > 0.0, "{}", id.name());
            assert!(
                big.total_ops() > small.total_ops(),
                "{} should grow with scale",
                id.name()
            );
        }
    }

    #[test]
    fn cpu_models_order_as_expected() {
        let xeon = CpuModel::xeon_opt();
        let arm = CpuModel::arm_host();
        for id in WorkloadId::cim_suite() {
            // At bench scale the dense kernels are large enough that the
            // parallel Xeon clearly beats the in-order ARM host.
            assert!(
                cpu_seconds(id, Scale::Bench, &arm) > cpu_seconds(id, Scale::Bench, &xeon),
                "{}",
                id.name()
            );
        }
    }
}
