//! Command-line harness regenerating the paper's tables and figures.
//!
//! Usage: `cinm-experiments [fig10|fig11|fig12|table4|all] [--scale test|bench|paper]`

use cinm_core::experiments;
use cinm_workloads::Scale;

fn parse_scale(args: &[String]) -> Scale {
    match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("paper") => Scale::Paper,
        Some("test") => Scale::Test,
        _ => Scale::Bench,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_scale(&args);
    let run_fig10 = || println!("{}", experiments::format_figure10(&experiments::figure10(scale)));
    let run_fig11 = || println!("{}", experiments::format_figure11(&experiments::figure11(scale)));
    let run_fig12 = || println!("{}", experiments::format_figure12(&experiments::figure12(scale)));
    let run_table4 = || println!("{}", experiments::format_table4(&experiments::table4()));
    match which {
        "fig10" => run_fig10(),
        "fig11" => run_fig11(),
        "fig12" => run_fig12(),
        "table4" => run_table4(),
        "all" => {
            run_fig10();
            run_fig11();
            run_fig12();
            run_table4();
        }
        other => {
            eprintln!("unknown experiment '{other}'; expected fig10|fig11|fig12|table4|all");
            std::process::exit(2);
        }
    }
}
