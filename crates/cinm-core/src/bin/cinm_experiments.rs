//! Command-line harness regenerating the paper's tables and figures.
//!
//! Usage: `cinm-experiments [fig10|fig11|fig12|table4|sharded|bfs|pressure|energy|all]
//!            [--scale test|bench|paper] [--threads N|auto]
//!            [--shard auto|cnm-only|cim-only|host-only|min-energy|fractions a,b,c]`
//!
//! `energy` reports the per-workload joule figures of the UPMEM and CIM
//! energy models next to the ARM host baseline (see EXPERIMENTS.md).
//!
//! `bfs` runs multi-step breadth-first search to convergence through the
//! `Session` graph API with a device-resident frontier, against the eager
//! per-op loop (see EXPERIMENTS.md).
//!
//! `pressure` re-runs the BFS loop and a two-class serving mix under
//! shrinking MRAM limits: completed tiers are bit-identical with their
//! spill/reload traffic reported, limits below the working set refuse with
//! typed errors (see EXPERIMENTS.md).
//!
//! `--threads` sets the number of host worker threads used for the
//! *functional* side of the simulation (`auto` = all available cores). The
//! reproduced numbers are bit-identical for every thread count; only the
//! wall-clock time of the sweep changes. One persistent worker pool is
//! constructed up front and shared by every figure of the sweep.
//!
//! `--shard` selects the policy of the `sharded` experiment: `auto` balances
//! estimated completion times across UPMEM + crossbar + host, `cnm-only` /
//! `cim-only` / `host-only` force a single device, and `fractions a,b,c`
//! forces explicit work fractions (must sum to 1 — the harness errors
//! instead of renormalising).

use cinm_core::experiments;
use cinm_core::ShardPolicy;
use cinm_runtime::PoolHandle;
use cinm_workloads::Scale;

fn parse_scale(args: &[String]) -> Scale {
    match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("paper") => Scale::Paper,
        Some("test") => Scale::Test,
        _ => Scale::Bench,
    }
}

fn parse_threads(args: &[String]) -> usize {
    let Some(flag) = args.iter().position(|a| a == "--threads") else {
        return 1;
    };
    match args.get(flag + 1).map(String::as_str) {
        Some("auto") => 0,
        Some(n) => n.parse().unwrap_or_else(|_| {
            eprintln!("invalid --threads value '{n}'; expected a number or 'auto'");
            std::process::exit(2);
        }),
        None => {
            eprintln!("--threads requires a value (a number or 'auto')");
            std::process::exit(2);
        }
    }
}

fn parse_shard_policy(args: &[String]) -> ShardPolicy {
    let Some(flag) = args.iter().position(|a| a == "--shard") else {
        return ShardPolicy::Auto;
    };
    match args.get(flag + 1).map(String::as_str) {
        Some(value) => {
            let next = args.get(flag + 2).map(String::as_str);
            ShardPolicy::parse_cli(value, next).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        }
        None => {
            eprintln!(
                "--shard requires a value (auto|cnm-only|cim-only|host-only|fractions a,b,c)"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_scale(&args);
    let threads = parse_threads(&args);
    let shard_policy = parse_shard_policy(&args);
    // One persistent pool for the whole sweep: worker threads are spawned
    // once here and reused by every backend of every figure.
    let pool = PoolHandle::with_threads(threads);
    let run_fig10 = || {
        println!(
            "{}",
            experiments::format_figure10(&experiments::figure10_with_runtime(
                scale, threads, &pool
            ))
        )
    };
    let run_fig11 = || {
        println!(
            "{}",
            experiments::format_figure11(&experiments::figure11_with_runtime(
                scale, threads, &pool
            ))
        )
    };
    let run_fig12 = || {
        println!(
            "{}",
            experiments::format_figure12(&experiments::figure12_with_runtime(
                scale, threads, &pool
            ))
        )
    };
    let run_table4 = || println!("{}", experiments::format_table4(&experiments::table4()));
    let run_bfs = || {
        println!(
            "{}",
            experiments::format_bfs(&experiments::bfs_convergence(scale, threads, &pool))
        )
    };
    let run_pressure = || {
        println!(
            "{}",
            experiments::format_pressure(&experiments::memory_pressure(scale, threads, &pool))
        )
    };
    let run_energy = || {
        println!(
            "{}",
            experiments::format_energy(&experiments::energy_with_runtime(scale, threads, &pool))
        )
    };
    let run_sharded =
        || match experiments::sharded_with_runtime(scale, threads, &pool, shard_policy) {
            Ok(rows) => println!("{}", experiments::format_sharded(&rows)),
            Err(e) => {
                eprintln!("sharded experiment failed: {e}");
                std::process::exit(2);
            }
        };
    match which {
        "fig10" => run_fig10(),
        "fig11" => run_fig11(),
        "fig12" => run_fig12(),
        "table4" => run_table4(),
        "sharded" => run_sharded(),
        "bfs" => run_bfs(),
        "pressure" => run_pressure(),
        "energy" => run_energy(),
        "all" => {
            run_fig10();
            run_fig11();
            run_fig12();
            run_table4();
            run_sharded();
            run_bfs();
            run_pressure();
            run_energy();
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected fig10|fig11|fig12|table4|sharded|bfs|pressure|energy|all"
            );
            std::process::exit(2);
        }
    }
}
