//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (Section 4), plus the heterogeneous-sharding study
//! (`EXPERIMENTS.md`).

use cinm_dialects::cinm;
use cinm_ir::printer::func_lines_of_code;
use cinm_lowering::{
    CimRunOptions, ShardError, ShardSplit, ShardedBackend, ShardedRunOptions, UpmemBackend,
    UpmemRunOptions,
};
use cinm_runtime::PoolHandle;
use cinm_workloads::{build_func, data, Scale, WorkloadId, WorkloadParams};
use cpu_sim::kernels;
use cpu_sim::model::CpuModel;
use upmem_sim::BinOp;

use crate::runner;
use crate::serve::{ServeError, ServerOptions, SessionServer, TenantSpec};
use crate::session::{Session, SessionOptions};
use crate::shard::{ShardPlanner, ShardPolicy, ShardShape};
use crate::target::Target;

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

// ---------------------------------------------------------------------------
// Figure 10: CIM configurations vs the ARM host
// ---------------------------------------------------------------------------

/// One row of the Figure 10 reproduction.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Workload name.
    pub workload: String,
    /// Speedup of the plain `cim` configuration over the ARM host.
    pub cim: f64,
    /// Speedup of `cim-min-writes`.
    pub cim_min_writes: f64,
    /// Speedup of `cim-parallel`.
    pub cim_parallel: f64,
    /// Speedup of `cim-opt`.
    pub cim_opt: f64,
    /// Tile-write reduction of min-writes over the baseline.
    pub write_reduction: f64,
    /// Energy of `cim-opt` relative to the ARM host (host / cim-opt; > 1 is
    /// better).
    pub energy_gain: f64,
}

/// The Figure 10 reproduction: speedups of the four CIM configurations over
/// the ARM in-order host, plus write-reduction and energy columns.
pub fn figure10(scale: Scale) -> Vec<Fig10Row> {
    figure10_with_threads(scale, 1)
}

/// [`figure10`] with an explicit host-thread count for the functional
/// simulation: the sweep runs faster on multicore hosts, the reproduced
/// numbers are bit-identical. One worker pool is constructed for the whole
/// sweep and shared by every configuration.
pub fn figure10_with_threads(scale: Scale, host_threads: usize) -> Vec<Fig10Row> {
    figure10_with_runtime(scale, host_threads, &PoolHandle::with_threads(host_threads))
}

/// [`figure10_with_threads`] on an explicit shared worker pool (the
/// `cinm-experiments` binary constructs one pool for all figures).
pub fn figure10_with_runtime(
    scale: Scale,
    host_threads: usize,
    pool: &PoolHandle,
) -> Vec<Fig10Row> {
    let arm = CpuModel::arm_host();
    let mut rows = Vec::new();
    for id in WorkloadId::cim_suite() {
        let arm_seconds = runner::cpu_seconds(id, scale, &arm);
        let arm_energy = arm.energy_joules(&runner::cpu_op_counts(id, scale));
        let configs = [
            CimRunOptions::default()
                .with_host_threads(host_threads)
                .with_pool(pool.clone()),
            CimRunOptions {
                min_writes: true,
                parallel_tiles: false,
                host_threads,
                pool: pool.clone(),
            },
            CimRunOptions {
                min_writes: false,
                parallel_tiles: true,
                host_threads,
                pool: pool.clone(),
            },
            CimRunOptions::optimized()
                .with_host_threads(host_threads)
                .with_pool(pool.clone()),
        ];
        let mut speedups = [0.0f64; 4];
        let mut writes = [0u64; 4];
        let mut opt_energy = 0.0;
        for (i, cfg) in configs.iter().enumerate() {
            let (_, stats) = runner::run_cim_with_stats(id, scale, cfg.clone());
            speedups[i] = arm_seconds / stats.total_seconds();
            writes[i] = stats.xbar.tile_writes;
            if i == 3 {
                opt_energy = stats.total_energy_j();
            }
        }
        rows.push(Fig10Row {
            workload: id.name().to_string(),
            cim: speedups[0],
            cim_min_writes: speedups[1],
            cim_parallel: speedups[2],
            cim_opt: speedups[3],
            write_reduction: writes[0] as f64 / writes[1].max(1) as f64,
            energy_gain: arm_energy / opt_energy.max(1e-30),
        });
    }
    rows
}

/// Formats the Figure 10 rows as a printable table, with the geomean row the
/// paper reports.
pub fn format_figure10(rows: &[Fig10Row]) -> String {
    let mut out = String::from(
        "Figure 10 — speedup over the ARM host (and write reduction / energy gain of cim-opt)\n",
    );
    out.push_str("workload     cim   min-writes  parallel   cim-opt   writes/  energy\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>6.1}x {:>9.1}x {:>9.1}x {:>9.1}x {:>8.1}x {:>7.2}x\n",
            r.workload,
            r.cim,
            r.cim_min_writes,
            r.cim_parallel,
            r.cim_opt,
            r.write_reduction,
            r.energy_gain
        ));
    }
    let gm = |f: fn(&Fig10Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    out.push_str(&format!(
        "{:<10} {:>6.1}x {:>9.1}x {:>9.1}x {:>9.1}x {:>8.1}x {:>7.2}x\n",
        "geomean",
        gm(|r| r.cim),
        gm(|r| r.cim_min_writes),
        gm(|r| r.cim_parallel),
        gm(|r| r.cim_opt),
        gm(|r| r.write_reduction),
        gm(|r| r.energy_gain),
    ));
    out
}

// ---------------------------------------------------------------------------
// Energy study: per-workload joules on host, CNM and CIM
// ---------------------------------------------------------------------------

/// One row of the energy study: joules of the same workload on the ARM
/// host (the Figure 10 baseline), the optimised UPMEM configuration
/// (pipeline + DMA + static + transfer energy) and the optimised CIM
/// configuration (tile programming + analog MVMs + transfers). See
/// `EXPERIMENTS.md` for the paper-side figures these reproduce.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Workload name.
    pub workload: String,
    /// ARM host energy in joules.
    pub host_j: f64,
    /// `cinm-opt` UPMEM energy in joules (16 ranks).
    pub cnm_j: f64,
    /// `cim-opt` crossbar energy in joules.
    pub cim_j: f64,
}

impl EnergyRow {
    /// Host-over-CNM energy gain (> 1 means CNM spends fewer joules).
    pub fn cnm_gain(&self) -> f64 {
        self.host_j / self.cnm_j.max(1e-30)
    }

    /// Host-over-CIM energy gain (> 1 means CIM spends fewer joules).
    pub fn cim_gain(&self) -> f64 {
        self.host_j / self.cim_j.max(1e-30)
    }
}

/// The energy study over the Figure 10 workload suite.
pub fn energy(scale: Scale) -> Vec<EnergyRow> {
    energy_with_threads(scale, 1)
}

/// [`energy`] with an explicit host-thread count for the functional
/// simulation; the reproduced joule figures are bit-identical.
pub fn energy_with_threads(scale: Scale, host_threads: usize) -> Vec<EnergyRow> {
    energy_with_runtime(scale, host_threads, &PoolHandle::with_threads(host_threads))
}

/// [`energy_with_threads`] on an explicit shared worker pool.
pub fn energy_with_runtime(scale: Scale, host_threads: usize, pool: &PoolHandle) -> Vec<EnergyRow> {
    let arm = CpuModel::arm_host();
    WorkloadId::cim_suite()
        .into_iter()
        .map(|id| {
            let host_j = arm.energy_joules(&runner::cpu_op_counts(id, scale));
            let (_, cnm) = runner::run_upmem_with_stats(
                id,
                scale,
                16,
                UpmemRunOptions::optimized()
                    .with_host_threads(host_threads)
                    .with_pool(pool.clone()),
            );
            let (_, cim) = runner::run_cim_with_stats(
                id,
                scale,
                CimRunOptions::optimized()
                    .with_host_threads(host_threads)
                    .with_pool(pool.clone()),
            );
            EnergyRow {
                workload: id.name().to_string(),
                host_j,
                cnm_j: cnm.total_energy_j(),
                cim_j: cim.total_energy_j(),
            }
        })
        .collect()
}

/// Formats the energy rows as a printable table with geomean gains.
pub fn format_energy(rows: &[EnergyRow]) -> String {
    let mut out = String::from("Energy — joules per workload (host vs cinm-opt CNM vs cim-opt)\n");
    out.push_str("workload    host [J]     cnm [J]     cim [J]   host/cnm  host/cim\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>9.3e} {:>11.3e} {:>11.3e} {:>9.2}x {:>8.2}x\n",
            r.workload,
            r.host_j,
            r.cnm_j,
            r.cim_j,
            r.cnm_gain(),
            r.cim_gain()
        ));
    }
    let gm = |f: fn(&EnergyRow) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    out.push_str(&format!(
        "{:<10} {:>9} {:>11} {:>11} {:>9.2}x {:>8.2}x\n",
        "geomean",
        "",
        "",
        "",
        gm(EnergyRow::cnm_gain),
        gm(EnergyRow::cim_gain),
    ));
    out
}

// ---------------------------------------------------------------------------
// Figure 11: impact of the CINM device-aware optimisations on UPMEM
// ---------------------------------------------------------------------------

/// One row of the Figure 11 reproduction.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Workload name.
    pub workload: String,
    /// Number of DIMMs.
    pub ranks: usize,
    /// Execution time of the `cinm-nd` configuration in milliseconds.
    pub cinm_ms: f64,
    /// Execution time of the `cinm-opt-nd` configuration in milliseconds.
    pub cinm_opt_ms: f64,
}

impl Fig11Row {
    /// Relative improvement of the optimised configuration.
    pub fn improvement(&self) -> f64 {
        1.0 - self.cinm_opt_ms / self.cinm_ms
    }
}

/// The Figure 11 reproduction: `cinm-{4,8,16}d` vs `cinm-opt-{4,8,16}d`.
pub fn figure11(scale: Scale) -> Vec<Fig11Row> {
    figure11_with_threads(scale, 1)
}

/// [`figure11`] with an explicit host-thread count for the functional
/// simulation: the sweep runs faster on multicore hosts, the reproduced
/// numbers are bit-identical. One worker pool is constructed for the whole
/// sweep and shared by every configuration.
pub fn figure11_with_threads(scale: Scale, host_threads: usize) -> Vec<Fig11Row> {
    figure11_with_runtime(scale, host_threads, &PoolHandle::with_threads(host_threads))
}

/// [`figure11_with_threads`] on an explicit shared worker pool.
pub fn figure11_with_runtime(
    scale: Scale,
    host_threads: usize,
    pool: &PoolHandle,
) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for id in WorkloadId::upmem_opt_suite() {
        for ranks in [4usize, 8, 16] {
            let (_, base) = runner::run_upmem_with_stats(
                id,
                scale,
                ranks,
                UpmemRunOptions::default()
                    .with_host_threads(host_threads)
                    .with_pool(pool.clone()),
            );
            let (_, opt) = runner::run_upmem_with_stats(
                id,
                scale,
                ranks,
                UpmemRunOptions::optimized()
                    .with_host_threads(host_threads)
                    .with_pool(pool.clone()),
            );
            // As in the PrIM methodology the figures report DPU kernel
            // execution time; bulk host<->MRAM loads are reported separately
            // by the simulator statistics.
            rows.push(Fig11Row {
                workload: id.name().to_string(),
                ranks,
                cinm_ms: base.kernel_seconds * 1e3,
                cinm_opt_ms: opt.kernel_seconds * 1e3,
            });
        }
    }
    rows
}

/// Formats the Figure 11 rows, including the per-rank geometric-mean
/// improvement the paper reports (47 % / 42 % / 40 %).
pub fn format_figure11(rows: &[Fig11Row]) -> String {
    let mut out = String::from("Figure 11 — execution time (ms), cinm vs cinm-opt\n");
    out.push_str("workload   ranks   cinm [ms]   cinm-opt [ms]   improvement\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>4}d {:>11.3} {:>15.3} {:>12.1}%\n",
            r.workload,
            r.ranks,
            r.cinm_ms,
            r.cinm_opt_ms,
            100.0 * r.improvement()
        ));
    }
    for ranks in [4usize, 8, 16] {
        let gains: Vec<f64> = rows
            .iter()
            .filter(|r| r.ranks == ranks)
            .map(|r| r.cinm_ms / r.cinm_opt_ms)
            .collect();
        out.push_str(&format!(
            "geomean speedup of cinm-opt-{}d over cinm-{}d: {:.2}x ({:.0}% faster)\n",
            ranks,
            ranks,
            geomean(&gains),
            100.0 * (1.0 - 1.0 / geomean(&gains)),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 12: CPU vs PrIM vs CINM on the PrIM suite
// ---------------------------------------------------------------------------

/// One row of the Figure 12 reproduction.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Workload name.
    pub workload: String,
    /// Number of DIMMs.
    pub ranks: usize,
    /// Optimised CPU baseline in milliseconds.
    pub cpu_opt_ms: f64,
    /// Hand-optimised PrIM DPU code in milliseconds.
    pub prim_ms: f64,
    /// CINM-generated code in milliseconds.
    pub cinm_opt_ms: f64,
}

/// Per-workload model of the PrIM hand-written kernels relative to the
/// CINM-generated ones (documented in EXPERIMENTS.md): PrIM also blocks into
/// WRAM, but with fixed 256-element tiles, and its histogram kernel updates a
/// shared copy, which is where the paper observes CINM's largest win.
fn prim_options(id: WorkloadId, host_threads: usize, pool: &PoolHandle) -> UpmemRunOptions {
    let overhead = match id {
        WorkloadId::HstL => 3.4,
        WorkloadId::Mlp => 1.7,
        WorkloadId::Red => 1.4,
        WorkloadId::Sel => 1.3,
        WorkloadId::Va => 1.2,
        WorkloadId::Bfs => 1.15,
        WorkloadId::Mv => 1.0,
        WorkloadId::Ts => 0.93,
        _ => 1.0,
    };
    UpmemRunOptions {
        locality_optimized: true,
        tasklets: 16,
        instruction_overhead: overhead,
        wram_tile_elems: Some(256),
        host_threads,
        pool: pool.clone(),
    }
}

/// The Figure 12 reproduction.
pub fn figure12(scale: Scale) -> Vec<Fig12Row> {
    figure12_with_threads(scale, 1)
}

/// [`figure12`] with an explicit host-thread count for the functional
/// simulation: the sweep runs faster on multicore hosts, the reproduced
/// numbers are bit-identical. One worker pool is constructed for the whole
/// sweep and shared by every configuration.
pub fn figure12_with_threads(scale: Scale, host_threads: usize) -> Vec<Fig12Row> {
    figure12_with_runtime(scale, host_threads, &PoolHandle::with_threads(host_threads))
}

/// [`figure12_with_threads`] on an explicit shared worker pool.
pub fn figure12_with_runtime(
    scale: Scale,
    host_threads: usize,
    pool: &PoolHandle,
) -> Vec<Fig12Row> {
    let xeon = CpuModel::xeon_opt();
    let mut rows = Vec::new();
    for id in WorkloadId::prim_suite() {
        let cpu_ms = runner::cpu_seconds(id, scale, &xeon) * 1e3;
        for ranks in [4usize, 8, 16] {
            let (_, prim) = runner::run_upmem_with_stats(
                id,
                scale,
                ranks,
                prim_options(id, host_threads, pool),
            );
            let (_, cinm) = runner::run_upmem_with_stats(
                id,
                scale,
                ranks,
                UpmemRunOptions::optimized()
                    .with_host_threads(host_threads)
                    .with_pool(pool.clone()),
            );
            rows.push(Fig12Row {
                workload: id.name().to_string(),
                ranks,
                cpu_opt_ms: cpu_ms,
                prim_ms: prim.kernel_seconds * 1e3,
                cinm_opt_ms: cinm.kernel_seconds * 1e3,
            });
        }
    }
    rows
}

/// Formats the Figure 12 rows with the aggregate ratios the paper reports.
pub fn format_figure12(rows: &[Fig12Row]) -> String {
    let mut out =
        String::from("Figure 12 — execution time (ms), cpu-opt vs prim-nd vs cinm-opt-nd\n");
    out.push_str("workload   ranks   cpu-opt [ms]   prim [ms]   cinm-opt [ms]\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>4}d {:>13.3} {:>11.3} {:>14.3}\n",
            r.workload, r.ranks, r.cpu_opt_ms, r.prim_ms, r.cinm_opt_ms
        ));
    }
    for ranks in [4usize, 8, 16] {
        let sel: Vec<&Fig12Row> = rows.iter().filter(|r| r.ranks == ranks).collect();
        let prim_vs_cpu = geomean(
            &sel.iter()
                .map(|r| r.cpu_opt_ms / r.prim_ms)
                .collect::<Vec<_>>(),
        );
        let cinm_vs_prim = geomean(
            &sel.iter()
                .map(|r| r.prim_ms / r.cinm_opt_ms)
                .collect::<Vec<_>>(),
        );
        out.push_str(&format!(
            "{}d: prim is {:.1}x faster than cpu-opt; cinm-opt is {:.2}x faster than prim\n",
            ranks, prim_vs_cpu, cinm_vs_prim
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Heterogeneous sharding: one op across UPMEM + CIM + host
// ---------------------------------------------------------------------------

/// One row of the heterogeneous-sharding study: a single op executed on
/// each device alone and co-executed across all of them.
#[derive(Debug, Clone)]
pub struct ShardedRow {
    /// Workload name.
    pub workload: String,
    /// Simulated milliseconds with all work on the UPMEM grid.
    pub cnm_ms: f64,
    /// Simulated milliseconds with all work on the crossbar (`None` for ops
    /// the MVM-only crossbar backend cannot execute).
    pub cim_ms: Option<f64>,
    /// Simulated milliseconds with all work on the host.
    pub host_ms: f64,
    /// Simulated makespan milliseconds of the sharded run (devices execute
    /// concurrently; the slowest shard defines completion).
    pub sharded_ms: f64,
    /// Work fractions of the sharded run, `[cnm, cim, host]`.
    pub fractions: [f64; 3],
    /// Per-device utilisation of the sharded run (busy time / makespan).
    pub utilization: [f64; 3],
    /// Maximum device tasks observed in flight simultaneously.
    pub max_concurrent: usize,
}

impl ShardedRow {
    /// The fastest single-device time.
    pub fn best_single_ms(&self) -> f64 {
        let mut best = self.cnm_ms.min(self.host_ms);
        if let Some(cim) = self.cim_ms {
            best = best.min(cim);
        }
        best
    }

    /// Speedup of the sharded run over the best single device.
    pub fn speedup_vs_best_single(&self) -> f64 {
        self.best_single_ms() / self.sharded_ms.max(1e-30)
    }
}

/// The shardable subset of the suite: one representative per sharded work
/// dimension (GEMM/GEMV rows; element-wise, reduction and histogram
/// elements).
pub fn sharded_suite() -> Vec<WorkloadId> {
    vec![
        WorkloadId::Mm,
        WorkloadId::Mv,
        WorkloadId::Va,
        WorkloadId::Red,
        WorkloadId::HstL,
    ]
}

/// The `cinm` op a sharded-suite workload maps onto.
fn sharded_op_name(id: WorkloadId) -> &'static str {
    match id {
        WorkloadId::Mm => cinm::GEMM,
        WorkloadId::Mv => cinm::GEMV,
        WorkloadId::Red => cinm::REDUCE,
        WorkloadId::HstL => cinm::HISTOGRAM,
        _ => "cinm.add",
    }
}

/// The heterogeneous-sharding study with the auto-balancing policy.
pub fn sharded(scale: Scale) -> Vec<ShardedRow> {
    sharded_with_runtime(scale, 1, &PoolHandle::with_threads(1), ShardPolicy::Auto)
        .expect("auto policy never fails")
}

/// [`sharded`] with an explicit host-thread count, shared worker pool and
/// shard policy. Every sharded (and single-device) result is checked
/// bit-identical against the `cpu_sim::kernels` golden before timing is
/// reported. A user-forced policy whose fractions do not sum to 1 is an
/// error; a policy that necessarily places work on the crossbar
/// ([`ShardPolicy::requires_cim`]) skips the streaming ops the MVM-only
/// backend cannot execute instead of failing the whole sweep.
pub fn sharded_with_runtime(
    scale: Scale,
    host_threads: usize,
    pool: &PoolHandle,
    policy: ShardPolicy,
) -> Result<Vec<ShardedRow>, ShardError> {
    const RANKS: usize = 16;
    let planner = ShardPlanner::with_default_models(RANKS).with_policy(policy);
    let options = || {
        ShardedRunOptions::default()
            .with_ranks(RANKS)
            .with_pool(pool.clone())
            .with_host_threads(host_threads)
    };
    let mut rows = Vec::new();
    for id in sharded_suite() {
        if policy.requires_cim() && !crate::shard::cim_supports(sharded_op_name(id)) {
            continue;
        }
        let inp = runner::inputs(id, scale);
        let b = &inp.buffers;
        // (op name, shard shape, golden, runner)
        type Run<'a> =
            Box<dyn Fn(&mut ShardedBackend, &ShardSplit) -> Result<Vec<i32>, ShardError> + 'a>;
        let (op, shape, golden, run): (&str, ShardShape, Vec<i32>, Run<'_>) = match id.params(scale)
        {
            WorkloadParams::Gemm { m, k, n } => (
                sharded_op_name(id),
                ShardShape::matmul(m, k, n),
                kernels::matmul(&b[0], &b[1], m, k, n),
                Box::new(move |be, split| be.gemm(&b[0], &b[1], m, k, n, split)),
            ),
            WorkloadParams::Gemv { rows, cols } => (
                sharded_op_name(id),
                ShardShape::matmul(rows, cols, 1),
                kernels::matvec(&b[0], &b[1], rows, cols),
                Box::new(move |be, split| be.gemv(&b[0], &b[1], rows, cols, split)),
            ),
            WorkloadParams::Vector { len } => match id {
                WorkloadId::Red => (
                    sharded_op_name(id),
                    ShardShape::streaming(len),
                    vec![kernels::reduce_add(&b[0])],
                    Box::new(move |be, split| be.reduce(BinOp::Add, &b[0], split).map(|v| vec![v])),
                ),
                _ => (
                    sharded_op_name(id),
                    ShardShape::streaming(len),
                    kernels::vector_add(&b[0], &b[1]),
                    Box::new(move |be, split| be.elementwise(BinOp::Add, &b[0], &b[1], split)),
                ),
            },
            WorkloadParams::Histogram {
                len,
                bins,
                max_value,
            } => (
                sharded_op_name(id),
                ShardShape::streaming(len),
                kernels::histogram(&b[0], bins, max_value),
                Box::new(move |be, split| be.histogram(&b[0], bins, max_value, split)),
            ),
            other => panic!("{} ({other:?}) is not in the sharded suite", id.name()),
        };
        let work = shape.work;

        // Single-device baselines (each on a fresh backend for clean stats).
        let single_ms = |split: ShardSplit| -> f64 {
            let mut be = ShardedBackend::new(options());
            let got = run(&mut be, &split).expect("single-device shard");
            assert_eq!(got, golden, "{} single-device result", id.name());
            be.stats().sim_makespan_seconds * 1e3
        };
        let cnm_ms = single_ms(ShardSplit::all_cnm(work));
        let host_ms = single_ms(ShardSplit::all_host(work));
        let cim_ms = crate::shard::cim_supports(op).then(|| single_ms(ShardSplit::all_cim(work)));

        // The sharded run under the requested policy.
        let plan = planner.plan(op, shape)?;
        let mut be = ShardedBackend::new(options());
        let got = run(&mut be, &plan.split)?;
        assert_eq!(got, golden, "{} sharded result", id.name());
        let stats = *be.stats();
        rows.push(ShardedRow {
            workload: id.name().to_string(),
            cnm_ms,
            cim_ms,
            host_ms,
            sharded_ms: stats.sim_makespan_seconds * 1e3,
            fractions: stats.fractions(),
            utilization: stats.utilization(),
            max_concurrent: stats.max_concurrent,
        });
    }
    Ok(rows)
}

/// Formats the sharded rows as a printable table.
pub fn format_sharded(rows: &[ShardedRow]) -> String {
    let mut out = String::from(
        "Heterogeneous sharding — one op across UPMEM (cnm) + crossbar (cim) + host\n",
    );
    out.push_str(
        "workload   cnm [ms]   cim [ms]  host [ms]  sharded [ms]  frac cnm/cim/host   vs best\n",
    );
    for r in rows {
        let cim = r
            .cim_ms
            .map(|v| format!("{v:>9.3}"))
            .unwrap_or_else(|| format!("{:>9}", "-"));
        out.push_str(&format!(
            "{:<10} {:>8.3} {} {:>10.3} {:>13.3}   {:.2}/{:.2}/{:.2}      {:>6.2}x\n",
            r.workload,
            r.cnm_ms,
            cim,
            r.host_ms,
            r.sharded_ms,
            r.fractions[0],
            r.fractions[1],
            r.fractions[2],
            r.speedup_vs_best_single(),
        ));
    }
    let speedups: Vec<f64> = rows
        .iter()
        .map(ShardedRow::speedup_vs_best_single)
        .collect();
    out.push_str(&format!(
        "geomean speedup of auto-sharding over the best single device: {:.2}x\n",
        geomean(&speedups)
    ));
    out
}

// ---------------------------------------------------------------------------
// Multi-step BFS to convergence (Session residency showcase)
// ---------------------------------------------------------------------------

/// Result of running breadth-first search to convergence, comparing the
/// resident [`Session`] loop against the eager per-op loop.
#[derive(Debug, Clone)]
pub struct BfsConvergence {
    /// Vertices of the graph.
    pub vertices: usize,
    /// Average degree.
    pub degree: usize,
    /// Frontier expansions until the frontier emptied.
    pub iterations: usize,
    /// Vertices reached (including the seed frontier).
    pub reached: usize,
    /// Simulated milliseconds of the session loop.
    pub session_sim_ms: f64,
    /// Simulated milliseconds of the eager per-op loop.
    pub eager_sim_ms: f64,
    /// Host-interface bytes of the session loop.
    pub session_bytes: u64,
    /// Host-interface bytes of the eager loop.
    pub eager_bytes: u64,
    /// Memoized-plan replays of the session loop (steady-state iterations
    /// that paid no compilation).
    pub replays: u64,
    /// Session `run()` calls of the session loop (one per frontier
    /// expansion).
    pub runs: u64,
    /// Kernel launches of the (optimizer-on) session loop.
    pub session_launches: u64,
    /// Kernel launches of the same loop with the graph optimizer disabled —
    /// the pre-optimizer baseline.
    pub unopt_launches: u64,
    /// Fused element-wise groups the optimizer emitted while compiling the
    /// session loop.
    pub fused_groups: u64,
}

impl BfsConvergence {
    /// How many times fewer bytes the resident loop moved.
    pub fn byte_reduction(&self) -> f64 {
        self.eager_bytes as f64 / (self.session_bytes.max(1)) as f64
    }

    /// Simulated-time speedup of the resident loop.
    pub fn sim_speedup(&self) -> f64 {
        self.eager_sim_ms / self.session_sim_ms.max(1e-30)
    }

    /// Fraction of `run()` calls that replayed a memoized plan.
    pub fn replay_rate(&self) -> f64 {
        self.replays as f64 / (self.runs.max(1)) as f64
    }
}

/// Runs partitioned BFS to convergence (the `bfs` experiment).
///
/// The frontier, visited bitmap and CSR fragments live as session tensors:
/// each iteration records `bfs_step → xor → and → or → reduce` and only the
/// reduced new-frontier count returns to the host, so the CSR fragments are
/// scattered **once** and the frontier never round-trips. The eager loop
/// pays the full scatter + gather of every operand on every iteration.
/// Results (the reached set and the iteration count) are asserted identical
/// between the session loop, the eager loop and a pure-host reference.
pub fn bfs_convergence(scale: Scale, host_threads: usize, pool: &PoolHandle) -> BfsConvergence {
    const RANKS: usize = 16;
    let WorkloadParams::Bfs { vertices, degree } = WorkloadId::Bfs.params(scale) else {
        unreachable!("bfs params");
    };
    let inp = runner::inputs(WorkloadId::Bfs, scale);
    let b = &inp.buffers;
    let options = ShardedRunOptions::default()
        .with_ranks(RANKS)
        .with_pool(pool.clone())
        .with_host_threads(host_threads);
    let dpus = upmem_sim::UpmemConfig::with_ranks(RANKS).num_dpus();
    let f = runner::bfs_fragments(&b[0], &b[1], &b[2], vertices, degree, dpus);
    let (vp, used) = (f.vertices_per_dpu, f.used_dpus);
    let n = used * vp;
    let max_iters = vp + 2; // partitioned reachability converges within the
                            // partition diameter
    let ones_host = vec![1i32; n];

    // Pure-host reference (partitioned semantics, plain Rust).
    let (host_visited, host_iters) = {
        let mut frontier = f.frontier.clone();
        let mut visited = f.frontier.clone();
        let mut iters = 0usize;
        loop {
            let mut raw = Vec::with_capacity(n);
            for part in 0..used {
                raw.extend_from_slice(&kernels::bfs_step(
                    &f.rows[part * (vp + 1)..(part + 1) * (vp + 1)],
                    &f.cols[part * vp * degree..(part + 1) * vp * degree],
                    &frontier[part * vp..(part + 1) * vp],
                    vp,
                ));
            }
            let fresh: Vec<i32> = raw
                .iter()
                .zip(&visited)
                .map(|(&r, &v)| r & (v ^ 1))
                .collect();
            for (v, &r) in visited.iter_mut().zip(&raw) {
                *v |= r;
            }
            iters += 1;
            let count: i32 = fresh.iter().sum();
            frontier = fresh;
            if count == 0 || iters >= max_iters {
                break;
            }
        }
        (visited, iters)
    };

    // Resident session loop, run twice: once with the graph optimizer (the
    // chain's `xor → and → or` collapses into one fused launch per
    // iteration) and once without it (the pre-optimizer baseline, one
    // launch per element-wise op).
    let run_session = |optimizer: bool| {
        let mut sess = Session::new(
            SessionOptions::default()
                .with_policy(ShardPolicy::Single(Target::Cnm))
                .with_sharded(options.clone())
                .with_optimizer(optimizer),
        );
        let rows_t = sess.vector(&f.rows);
        let cols_t = sess.vector(&f.cols);
        let ones_t = sess.vector(&ones_host);
        let mut frontier_t = sess.vector(&f.frontier);
        let mut visited_t = sess.vector(&f.frontier);
        let mut iterations = 0usize;
        loop {
            let raw = sess.bfs_step(rows_t, cols_t, frontier_t, vp, degree, used);
            let not_visited = sess.elementwise(BinOp::Xor, visited_t, ones_t);
            let fresh = sess.elementwise(BinOp::And, raw, not_visited);
            let visited_next = sess.elementwise(BinOp::Or, visited_t, raw);
            let count = sess.reduce(BinOp::Add, fresh);
            sess.run().expect("cnm placement never fails to plan");
            iterations += 1;
            let c = sess.fetch_scalar(count);
            frontier_t = fresh;
            visited_t = visited_next;
            if c == 0 || iterations >= max_iters {
                break;
            }
        }
        let visited = sess.fetch(visited_t);
        let stats = *sess.upmem_stats();
        let (runs, replays) = sess.run_counts();
        (
            visited,
            stats,
            iterations,
            runs,
            replays,
            sess.optimizer_stats(),
        )
    };
    let (unopt_visited, unopt_stats, unopt_iters, ..) = run_session(false);
    let (session_visited, session_stats, iterations, runs, replays, opt) = run_session(true);
    assert_eq!(session_visited, unopt_visited, "optimizer on vs off");
    assert_eq!(iterations, unopt_iters, "optimizer on vs off iterations");

    // Eager per-op loop (the oracle): same computation, full round-trips.
    let mut be = UpmemBackend::new(RANKS, {
        let mut o = options.upmem.clone();
        o.pool = pool.clone();
        o.host_threads = host_threads;
        o
    });
    let mut frontier = f.frontier.clone();
    let mut visited = f.frontier.clone();
    let mut eager_iters = 0usize;
    loop {
        let raw = be.bfs_step(&f.rows, &f.cols, &frontier, vp, degree, used);
        let not_visited = be.elementwise(BinOp::Xor, &visited, &ones_host);
        let fresh = be.elementwise(BinOp::And, &raw, &not_visited);
        visited = be.elementwise(BinOp::Or, &visited, &raw);
        let count = be.reduce(BinOp::Add, &fresh);
        eager_iters += 1;
        frontier = fresh;
        if count == 0 || eager_iters >= max_iters {
            break;
        }
    }

    assert_eq!(session_visited, host_visited, "session vs host reference");
    assert_eq!(visited, host_visited, "eager vs host reference");
    assert_eq!(iterations, host_iters, "iteration counts");
    assert_eq!(iterations, eager_iters, "iteration counts");
    let eager_stats = be.stats();
    BfsConvergence {
        vertices,
        degree,
        iterations,
        reached: host_visited.iter().filter(|&&v| v != 0).count(),
        session_sim_ms: session_stats.total_ms(),
        eager_sim_ms: eager_stats.total_ms(),
        session_bytes: session_stats.host_to_dpu_bytes + session_stats.dpu_to_host_bytes,
        eager_bytes: eager_stats.host_to_dpu_bytes + eager_stats.dpu_to_host_bytes,
        replays,
        runs,
        session_launches: session_stats.launches,
        unopt_launches: unopt_stats.launches,
        fused_groups: opt.fused_groups,
    }
}

/// Formats the BFS convergence study.
pub fn format_bfs(r: &BfsConvergence) -> String {
    format!(
        "Multi-step BFS to convergence — resident Session loop vs eager per-op loop\n\
         vertices {} (degree {}): {} iterations, {} vertices reached\n\
         session: {:.3} ms simulated, {} host-interface bytes ({} plan replays)\n\
         eager:   {:.3} ms simulated, {} host-interface bytes\n\
         residency moves {:.1}x fewer bytes; simulated speedup {:.2}x\n\
         optimizer: {} launches vs {} unoptimized ({} fused groups); \
         replay rate {:.0}% ({}/{} runs)\n",
        r.vertices,
        r.degree,
        r.iterations,
        r.reached,
        r.session_sim_ms,
        r.session_bytes,
        r.replays,
        r.eager_sim_ms,
        r.eager_bytes,
        r.byte_reduction(),
        r.sim_speedup(),
        r.session_launches,
        r.unopt_launches,
        r.fused_groups,
        r.replay_rate() * 100.0,
        r.replays,
        r.runs,
    )
}

// ---------------------------------------------------------------------------
// Memory pressure: bounded MRAM on BFS and a two-class serving mix
// ---------------------------------------------------------------------------

/// Outcome of running a workload under one MRAM-limit tier.
#[derive(Debug, Clone)]
pub enum PressureOutcome {
    /// The tier ran to completion, bit-identical to the unlimited run.
    Completed {
        /// Evictions the residency layer performed (any flavour).
        evictions: u64,
        /// Evictions that moved data: session spills / serving weight
        /// reloads.
        restores: u64,
        /// Bytes that traffic moved (session device→host spill bytes;
        /// serving host→device weight re-upload bytes).
        traffic_bytes: u64,
        /// Peak per-DPU bytes actually reached (within the limit).
        peak_bytes: usize,
    },
    /// The limit is below the minimal working set: a typed refusal, never
    /// a hang or a wrong answer.
    Refused {
        /// Bytes per DPU the failing allocation needed.
        needed_bytes: usize,
        /// Bytes per DPU that were still available.
        available_bytes: usize,
    },
}

/// One MRAM-limit tier of the memory-pressure study.
#[derive(Debug, Clone)]
pub struct PressureTier {
    /// Limit as a percentage of the workload's unlimited footprint.
    pub percent: u32,
    /// The per-DPU byte limit this tier ran under.
    pub limit_bytes: usize,
    /// What happened.
    pub outcome: PressureOutcome,
}

/// Result of the `pressure` experiment: the BFS session loop and a
/// two-class four-tenant serving mix re-run under shrinking MRAM limits.
#[derive(Debug, Clone)]
pub struct MemoryPressureStudy {
    /// Peak per-DPU bytes of the unlimited BFS run.
    pub bfs_peak_bytes: usize,
    /// BFS tiers (percent of the unlimited peak).
    pub bfs: Vec<PressureTier>,
    /// Per-DPU footprint of the two serving shape classes.
    pub serving_class_bytes: [usize; 2],
    /// Serving tiers (percent of the two classes' combined footprint).
    pub serving: Vec<PressureTier>,
}

/// Runs the memory-pressure study (the `pressure` experiment).
///
/// **BFS** is all-hot: every device tensor (CSR fragments, frontier,
/// visited bitmap) is touched on every iteration, so the only slack below
/// the peak is free drops of host-backed tensors (re-scattered on the next
/// run, no spill traffic) — and once that slack is gone a tighter limit
/// refuses with a typed error instead of computing wrong results.
/// **Serving** has cold state: four tenants over two gemv shape
/// classes, rounds alternating between the classes, so a budget that fits
/// either class alone (but not both) evicts and reloads the idle class's
/// weights every round — bit-identical results, billed reload traffic.
pub fn memory_pressure(
    scale: Scale,
    host_threads: usize,
    pool: &PoolHandle,
) -> MemoryPressureStudy {
    const RANKS: usize = 16;
    let WorkloadParams::Bfs { vertices, degree } = WorkloadId::Bfs.params(scale) else {
        unreachable!("bfs params");
    };
    let inp = runner::inputs(WorkloadId::Bfs, scale);
    let b = &inp.buffers;
    let options = ShardedRunOptions::default()
        .with_ranks(RANKS)
        .with_pool(pool.clone())
        .with_host_threads(host_threads);
    let dpus = upmem_sim::UpmemConfig::with_ranks(RANKS).num_dpus();
    let f = runner::bfs_fragments(&b[0], &b[1], &b[2], vertices, degree, dpus);
    let (vp, used) = (f.vertices_per_dpu, f.used_dpus);
    let n = used * vp;
    let max_iters = vp + 2;
    let ones_host = vec![1i32; n];

    // The BFS session loop under an optional limit. Identical to the `bfs`
    // experiment's loop, with run errors surfaced instead of expected away.
    let run_bfs = |limit: Option<usize>| -> Result<
        (Vec<i32>, usize, crate::session::ResidencyStats),
        ShardError,
    > {
        let mut o = SessionOptions::default()
            .with_policy(ShardPolicy::Single(Target::Cnm))
            .with_sharded(options.clone());
        if let Some(bytes) = limit {
            o = o.with_mram_limit_bytes(bytes);
        }
        let mut sess = Session::new(o);
        let rows_t = sess.vector(&f.rows);
        let cols_t = sess.vector(&f.cols);
        let ones_t = sess.vector(&ones_host);
        let mut frontier_t = sess.vector(&f.frontier);
        let mut visited_t = sess.vector(&f.frontier);
        let mut iterations = 0usize;
        loop {
            let raw = sess.bfs_step(rows_t, cols_t, frontier_t, vp, degree, used);
            let not_visited = sess.elementwise(BinOp::Xor, visited_t, ones_t);
            let fresh = sess.elementwise(BinOp::And, raw, not_visited);
            let visited_next = sess.elementwise(BinOp::Or, visited_t, raw);
            let count = sess.reduce(BinOp::Add, fresh);
            sess.run()?;
            iterations += 1;
            let c = sess.fetch_scalar(count);
            frontier_t = fresh;
            visited_t = visited_next;
            if c == 0 || iterations >= max_iters {
                break;
            }
        }
        let visited = sess.fetch(visited_t);
        Ok((visited, iterations, sess.residency_stats()))
    };

    let (bfs_visited, bfs_iters, bfs_unlimited) =
        run_bfs(None).expect("the unlimited BFS run cannot hit capacity");
    let bfs_peak_bytes = bfs_unlimited.peak_mram_bytes;
    let mut bfs_tiers = Vec::new();
    for percent in [100u32, 75, 50] {
        let limit_bytes = bfs_peak_bytes * percent as usize / 100;
        let outcome = match run_bfs(Some(limit_bytes)) {
            Ok((visited, iterations, res)) => {
                assert_eq!(visited, bfs_visited, "capped BFS diverged at {percent}%");
                assert_eq!(iterations, bfs_iters, "capped BFS iterations at {percent}%");
                assert!(res.peak_mram_bytes <= limit_bytes);
                PressureOutcome::Completed {
                    evictions: res.evictions,
                    restores: res.spills,
                    traffic_bytes: res.spilled_bytes,
                    peak_bytes: res.peak_mram_bytes,
                }
            }
            Err(ShardError::MramExhausted {
                needed_bytes,
                available_bytes,
            }) => PressureOutcome::Refused {
                needed_bytes,
                available_bytes,
            },
            Err(e) => panic!("capped BFS failed with a non-capacity error: {e}"),
        };
        bfs_tiers.push(PressureTier {
            percent,
            limit_bytes,
            outcome,
        });
    }

    // Serving mix: four tenants over two gemv shape classes, rounds
    // alternating between the classes so the idle class is always a cold
    // eviction candidate.
    const ROUNDS: usize = 12;
    let cols = 128usize;
    let class_rows = [256usize, 192];
    let tenant_rows = |i: usize| class_rows[i / 2];
    let weights: Vec<Vec<i32>> = (0..4)
        .map(|i| data::i32_matrix(50 + i as u64, tenant_rows(i), cols, -8, 8))
        .collect();
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|i| data::i32_vec(60 + i as u64, cols, -8, 8))
        .collect();

    struct ServingRun {
        outs: Vec<Vec<i32>>,
        residency: crate::serve::ServerResidency,
        class_bytes: [usize; 2],
    }
    let run_serving = |limit: Option<usize>| -> Result<ServingRun, ServeError> {
        let mut o = ServerOptions::default().with_tenant_slots(4);
        if let Some(bytes) = limit {
            o = o.with_mram_limit_bytes(bytes);
        }
        let mut server = SessionServer::new(o);
        let mut models = Vec::new();
        let mut class_bytes = [0usize; 2];
        for i in 0..4 {
            let t = server.register_tenant(TenantSpec::new(["s0", "s1", "s2", "s3"][i]));
            models.push(server.load_gemv_weights(t, &weights[i], tenant_rows(i), cols)?);
            if i == 1 {
                class_bytes[0] = server.mram_used_bytes();
            }
        }
        class_bytes[1] = server.mram_used_bytes().saturating_sub(class_bytes[0]);
        let mut outs = Vec::new();
        let mut buf = Vec::new();
        for round in 0..ROUNDS {
            let pair = if round % 2 == 0 {
                &models[0..2]
            } else {
                &models[2..4]
            };
            let mut tickets = Vec::new();
            for (k, &m) in pair.iter().enumerate() {
                tickets.push(server.submit(m, &xs[(round + k) % 4])?);
            }
            for &ticket in &tickets {
                server.wait_into(ticket, &mut buf)?;
                outs.push(buf.clone());
            }
        }
        Ok(ServingRun {
            outs,
            residency: server.residency_snapshot(),
            class_bytes,
        })
    };

    let unlimited = run_serving(None).expect("the unlimited serving mix cannot hit capacity");
    let (serving_outs, serving_class_bytes) = (unlimited.outs, unlimited.class_bytes);
    let total = serving_class_bytes[0] + serving_class_bytes[1];
    let (larger, smaller) = (
        serving_class_bytes[0].max(serving_class_bytes[1]),
        serving_class_bytes[0].min(serving_class_bytes[1]),
    );
    // Both classes resident / one class plus slack (thrash) / below either
    // class alone (typed refusal).
    let serving_limits = [total, larger + smaller / 2, smaller / 2];
    let mut serving_tiers = Vec::new();
    for limit_bytes in serving_limits {
        let outcome = match run_serving(Some(limit_bytes)) {
            Ok(ServingRun {
                outs,
                residency: res,
                ..
            }) => {
                assert_eq!(outs, serving_outs, "capped serving mix diverged");
                assert!(res.peak_mram_bytes <= limit_bytes);
                PressureOutcome::Completed {
                    evictions: res.evictions,
                    restores: res.reloads,
                    traffic_bytes: res.reload_bytes,
                    peak_bytes: res.peak_mram_bytes,
                }
            }
            Err(ServeError::CapacityExhausted {
                needed_bytes,
                available_bytes,
            }) => PressureOutcome::Refused {
                needed_bytes,
                available_bytes,
            },
            Err(e) => panic!("capped serving mix failed with a non-capacity error: {e}"),
        };
        serving_tiers.push(PressureTier {
            percent: (limit_bytes * 100 / total.max(1)) as u32,
            limit_bytes,
            outcome,
        });
    }

    MemoryPressureStudy {
        bfs_peak_bytes,
        bfs: bfs_tiers,
        serving_class_bytes,
        serving: serving_tiers,
    }
}

/// Formats the memory-pressure study.
pub fn format_pressure(r: &MemoryPressureStudy) -> String {
    let mut out = String::from(
        "Bounded MRAM — spill/reload traffic vs capacity limit\n\
         BFS session loop (every tensor touched each iteration: slack comes only\n\
         from free drops of host-backed tensors, re-scattered on the next run)\n",
    );
    let fmt_tier = |t: &PressureTier| -> String {
        match &t.outcome {
            PressureOutcome::Completed {
                evictions,
                restores,
                traffic_bytes,
                peak_bytes,
            } => format!(
                "  {:>3}% ({:>6} B/DPU): completed bit-identically — {} evictions, {} restores, {} B traffic, peak {} B/DPU\n",
                t.percent, t.limit_bytes, evictions, restores, traffic_bytes, peak_bytes,
            ),
            PressureOutcome::Refused {
                needed_bytes,
                available_bytes,
            } => format!(
                "  {:>3}% ({:>6} B/DPU): typed refusal — needed {} B, {} B available\n",
                t.percent, t.limit_bytes, needed_bytes, available_bytes,
            ),
        }
    };
    out.push_str(&format!("  unlimited peak: {} B/DPU\n", r.bfs_peak_bytes));
    for t in &r.bfs {
        out.push_str(&fmt_tier(t));
    }
    out.push_str(&format!(
        "4-tenant serving mix, two gemv shape classes ({} + {} B/DPU), rounds alternating classes\n",
        r.serving_class_bytes[0], r.serving_class_bytes[1],
    ));
    for t in &r.serving {
        out.push_str(&fmt_tier(t));
    }
    out
}

// ---------------------------------------------------------------------------
// Table 4: lines of code
// ---------------------------------------------------------------------------

/// One row of the Table 4 reproduction.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Application name.
    pub application: String,
    /// Lines of the CINM (high-level IR) representation.
    pub cinm_loc: usize,
    /// Lines of the hand-written UPMEM C/C++ implementation (from the paper).
    pub upmem_loc: usize,
}

impl Table4Row {
    /// LoC reduction factor.
    pub fn reduction(&self) -> f64 {
        self.upmem_loc as f64 / self.cinm_loc.max(1) as f64
    }
}

/// The Table 4 reproduction: counts the printed high-level IR of every
/// application against the paper's UPMEM C/C++ line counts.
pub fn table4() -> Vec<Table4Row> {
    WorkloadId::all()
        .into_iter()
        .map(|id| {
            let func = build_func(id, Scale::Paper);
            Table4Row {
                application: id.name().to_string(),
                cinm_loc: func_lines_of_code(&func),
                upmem_loc: id.upmem_c_loc(),
            }
        })
        .collect()
}

/// Formats the Table 4 rows.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut out = String::from("Table 4 — lines of code, CINM vs hand-written UPMEM C/C++\n");
    out.push_str("application   CINM (IR)   UPMEM (C/C++)   reduction\n");
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>10} {:>15} {:>10.0}x\n",
            r.application,
            r.cinm_loc,
            r.upmem_loc,
            r.reduction()
        ));
    }
    let avg = geomean(&rows.iter().map(Table4Row::reduction).collect::<Vec<_>>());
    out.push_str(&format!("average reduction (geomean): {avg:.1}x\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn figure10_shape_holds_at_test_scale() {
        let rows = figure10(Scale::Test);
        assert_eq!(rows.len(), WorkloadId::cim_suite().len());
        for r in &rows {
            assert!(r.cim > 0.0, "{}", r.workload);
            // min-writes never increases the number of tile writes.
            assert!(r.write_reduction >= 1.0, "{}", r.workload);
            // The fully optimised configuration is at least as fast as the
            // baseline crossbar mapping.
            assert!(r.cim_opt >= r.cim * 0.99, "{}", r.workload);
        }
        let text = format_figure10(&rows);
        assert!(text.contains("geomean"));
    }

    #[test]
    fn figure11_opt_is_never_slower() {
        let rows = figure11(Scale::Test);
        assert_eq!(rows.len(), WorkloadId::upmem_opt_suite().len() * 3);
        for r in &rows {
            assert!(
                r.cinm_opt_ms <= r.cinm_ms * 1.001,
                "{} {}d",
                r.workload,
                r.ranks
            );
        }
        assert!(format_figure11(&rows).contains("geomean"));
    }

    #[test]
    fn figure12_produces_all_rows() {
        let rows = figure12(Scale::Test);
        assert_eq!(rows.len(), WorkloadId::prim_suite().len() * 3);
        for r in &rows {
            assert!(r.cpu_opt_ms > 0.0 && r.prim_ms > 0.0 && r.cinm_opt_ms > 0.0);
        }
        assert!(format_figure12(&rows).contains("cinm-opt is"));
    }

    #[test]
    fn sharded_study_covers_the_suite_and_balances_work() {
        let pool = PoolHandle::with_threads(2);
        let rows = sharded_with_runtime(Scale::Test, 1, &pool, ShardPolicy::Auto).unwrap();
        assert_eq!(rows.len(), sharded_suite().len());
        for r in &rows {
            // Result equality with the golden is asserted inside the runner;
            // here we check the reported accounting is sane.
            assert!(r.sharded_ms > 0.0, "{}", r.workload);
            assert!(
                (r.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                "{}",
                r.workload
            );
            // The MVM-only crossbar never reports a time for streaming ops.
            match r.workload.as_str() {
                "mm" | "mv" => assert!(r.cim_ms.is_some(), "{}", r.workload),
                _ => {
                    assert!(r.cim_ms.is_none(), "{}", r.workload);
                    assert_eq!(r.fractions[1], 0.0, "{}", r.workload);
                }
            }
        }
        let text = format_sharded(&rows);
        assert!(text.contains("geomean speedup"));
    }

    #[test]
    fn sharded_study_supports_forced_policies() {
        let pool = PoolHandle::with_threads(2);
        // Forcing everything onto the CNM grid must match its baseline.
        let rows = sharded_with_runtime(
            Scale::Test,
            1,
            &pool,
            ShardPolicy::Single(crate::Target::Cnm),
        )
        .unwrap();
        for r in &rows {
            assert_eq!(r.fractions, [1.0, 0.0, 0.0], "{}", r.workload);
            assert!((r.sharded_ms - r.cnm_ms).abs() < 1e-9, "{}", r.workload);
        }
        // Fractions that do not sum to 1 must error, not renormalise.
        assert!(sharded_with_runtime(
            Scale::Test,
            1,
            &pool,
            ShardPolicy::Fractions([0.8, 0.0, 0.1])
        )
        .is_err());
    }

    #[test]
    fn memory_pressure_tiers_are_refusals_or_bit_identical() {
        let pool = PoolHandle::with_threads(2);
        // Bit-identity of completed tiers is asserted inside; check the
        // expected regimes here.
        let r = memory_pressure(Scale::Test, 1, &pool);
        assert!(r.bfs_peak_bytes > 0);
        // BFS is all-hot: the 100% tier completes without churn, tighter
        // tiers refuse with a typed error (never a hang or wrong answer).
        assert!(matches!(
            r.bfs[0].outcome,
            PressureOutcome::Completed { evictions: 0, .. }
        ));
        for t in &r.bfs[1..] {
            assert!(
                matches!(
                    t.outcome,
                    PressureOutcome::Refused { needed_bytes, available_bytes }
                        if needed_bytes > available_bytes
                ),
                "BFS at {}% must refuse: {:?}",
                t.percent,
                t.outcome
            );
        }
        // Serving has cold state: both classes fit at 100%, the middle tier
        // thrashes (evict + reload every class switch, bit-identical), and
        // a budget below either class alone refuses.
        assert!(matches!(
            r.serving[0].outcome,
            PressureOutcome::Completed { evictions: 0, .. }
        ));
        assert!(
            matches!(
                r.serving[1].outcome,
                PressureOutcome::Completed { evictions, restores, traffic_bytes, .. }
                    if evictions > 0 && restores > 0 && traffic_bytes > 0
            ),
            "the middle serving tier must thrash: {:?}",
            r.serving[1].outcome
        );
        assert!(matches!(
            r.serving[2].outcome,
            PressureOutcome::Refused { .. }
        ));
    }

    #[test]
    fn bfs_converges_and_residency_moves_fewer_bytes() {
        let pool = PoolHandle::with_threads(2);
        let r = bfs_convergence(Scale::Test, 1, &pool);
        // Result equality with the host reference and the eager loop is
        // asserted inside; check the accounting here.
        assert!(r.iterations >= 1);
        assert!(r.reached > 0 && r.reached <= r.vertices);
        assert!(
            r.session_bytes < r.eager_bytes,
            "resident BFS must move fewer bytes ({} vs {})",
            r.session_bytes,
            r.eager_bytes
        );
        assert!(r.session_sim_ms <= r.eager_sim_ms);
        // The graph optimizer fuses the per-iteration `xor → and → or`
        // chain: strictly fewer launches than the unoptimized loop, with a
        // bounded number of compilations (canonical signatures make the
        // rotating frontier/visited temporaries replay).
        assert!(
            r.session_launches < r.unopt_launches,
            "fusion must save launches ({} vs {})",
            r.session_launches,
            r.unopt_launches
        );
        assert!(r.fused_groups >= 1, "the chain must fuse");
        assert!(
            r.runs - r.replays <= 2,
            "at most two compilations ({} runs, {} replays)",
            r.runs,
            r.replays
        );
        assert!(format_bfs(&r).contains("fewer bytes"));
    }

    #[test]
    fn table4_reports_substantial_reduction() {
        let rows = table4();
        assert_eq!(rows.len(), 15);
        for r in &rows {
            assert!(
                r.cinm_loc > 0 && r.cinm_loc < 80,
                "{}: {}",
                r.application,
                r.cinm_loc
            );
            assert!(r.reduction() > 1.5, "{}", r.application);
        }
        let avg = geomean(&rows.iter().map(Table4Row::reduction).collect::<Vec<_>>());
        assert!(avg > 5.0, "average reduction {avg}");
    }
}
