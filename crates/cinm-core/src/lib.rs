//! # cinm-core — the CINM (Cinnamon) compiler driver and evaluation harness
//!
//! Ties the whole reproduction together:
//!
//! * [`pipeline`] — the pre-assembled lowering pipelines of Figure 4
//!   (`tosa/linalg → cinm → cnm → upmem` and `… → cim → memristor`);
//! * [`target`] — target selection and the cost-model registration mechanism
//!   of Sections 3.2.2 and 3.3;
//! * [`shard`] — the cost-model-driven shard planner splitting one op across
//!   UPMEM, the crossbar and the host (executed by
//!   `cinm_lowering::ShardedBackend`);
//! * [`runner`] — executes every benchmark on the host reference, the UPMEM
//!   backend and the crossbar backend, with simulated time and energy;
//! * [`experiments`] — regenerates Figure 10, Figure 11, Figure 12 and
//!   Table 4 of the paper, plus the heterogeneous-sharding study
//!   (see `EXPERIMENTS.md`);
//! * [`serve`] — the multi-tenant serving runtime: a [`SessionServer`]
//!   owning the device set, with admission control, cross-tenant batching
//!   keyed on canonical plan signatures, and weighted-fair scheduling.
//!
//! The `cinm-experiments` binary prints any of the experiments:
//!
//! ```text
//! cargo run -p cinm-core --release --bin cinm-experiments -- fig11 --scale bench
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod pipeline;
pub mod runner;
pub mod serve;
pub mod session;
pub mod shard;
pub mod target;

pub use experiments::{figure10, figure11, figure12, table4};
pub use pipeline::{cim_pipeline, cinm_pipeline, cnm_pipeline, compile};
pub use serve::{
    ModelId, RequestReport, RequestTicket, ServeError, ServerOptions, ServerResidency, ServerStats,
    SessionServer, TenantId, TenantSpec, TenantStats,
};
pub use session::{
    OptimizerStats, PlanCacheStats, ResidencyStats, Session, SessionOptions, TensorHandle,
    TensorShape,
};
pub use shard::{ShardCalibrator, ShardPlan, ShardPlanner, ShardPolicy};
pub use target::{CostModel, Target, TargetSelector};
