//! The lazy `Session` graph API with device-resident tensors — the one
//! public execution entry point of the reproduction.
//!
//! The eager per-backend methods force every operation through a full
//! host round-trip: scatter the inputs, launch, gather the output — even
//! when the very next op consumes that output in place. A [`Session`]
//! instead records a **lazy op graph** against typed [`TensorHandle`]s and
//! compiles the whole graph at [`Session::run`]:
//!
//! 1. **Placement.** Each plannable op (`gemm`/`gemv`/element-wise/
//!    `reduce`/`histogram`) is shard-planned by the existing (cached)
//!    [`CachedShardPlanner`] built from the devices' own cost hookups
//!    ([`cinm_lowering::Device::cost`]); the PrIM device kernels without a
//!    planner model (`select`, `time_series`, `bfs_step`) go to the UPMEM
//!    grid. An op consuming a tensor that is already **device-resident** in
//!    a compatible layout is placed on that device directly — no plan, no
//!    round-trip.
//! 2. **Compilation.** Consecutive UPMEM-placed ops become one **segment**:
//!    a single hazard-tracked [`CommandStream`] per device per segment
//!    (transfers of independent inputs overlap, dependent launches are
//!    RAW-ordered on their MRAM buffers by `UpmemSystem::sync`). Sharded
//!    ops dispatch one `submit` per device concurrently on the shared
//!    worker pool via [`ShardedBackend`].
//! 3. **Residency.** Intermediate tensors stay in DPU MRAM between ops:
//!    a `gemv → select` chain launches both kernels against the same
//!    resident buffer, skipping the gather + re-scatter the eager API pays.
//!    Unchanged *input* tensors also stay resident across runs — a serving
//!    loop re-broadcasts only the vectors it [`Session::write`]s.
//!    [`Session::fetch`] is the only point data returns to the host.
//!
//! # The graph optimizer
//!
//! Between recording and compilation the session runs the recorded graph
//! through `cinm-ir`'s pass machinery ([`cinm_ir::PassManager`] over
//! [`cinm_ir::fusion`] patterns): duplicate ops are CSE'd, dead ops (only
//! possible after [`Session::discard`]) are eliminated, and chains of
//! shape-compatible element-wise ops placed on the UPMEM grid are **fused
//! into one multi-output kernel launch** (`DpuKernelKind::FusedElementwise`)
//! — the BFS epilogue's three launches per iteration become one. The
//! optimizer never changes results: every constituent's output still
//! materialises under its own handle, bit-identically to the unoptimized
//! program ([`SessionOptions::with_optimizer`]`(false)`, property-tested).
//!
//! # Replay (the allocation-free hot path)
//!
//! `run()` memoizes compiled plans in a small LRU cache keyed by the graph's
//! **canonical signature**: tensor slots are renamed in first-use order, so
//! structurally identical graphs match even when their temporary ids rotate
//! (the steady state of any iterating loop — BFS re-records the same five
//! ops against fresh frontier handles every iteration). On a hit the plan's
//! physical bindings are patched in place (`rebind`) and the session
//! **replays** the compiled plan through the simulator's eager entry points
//! in the recorded hazard order, which is bit-identical to the stream
//! schedule (`cinm-runtime` streams are property-tested equal to in-order
//! eager execution) and performs **zero heap allocations per op** — pinned
//! by `tests/alloc_regression.rs`. The first iterations of a loop compile
//! (cold transfers, then once more with the inputs observed resident — at
//! most two compilations); every later iteration replays.
//!
//! # Measurement-fed shard planning
//!
//! Every shard-dispatched step feeds its measured per-device simulated
//! seconds back into the planner's [`crate::shard::ShardCalibrator`]; when a
//! correction moves significantly the memoized shard plans and compiled
//! session plans are invalidated, so later runs re-plan against the
//! calibrated models.
//!
//! # Equivalence
//!
//! With residency disabled ([`SessionOptions::with_residency`]`(false)`)
//! the compiled program is command-for-command the eager per-op program:
//! results **and** simulated statistics are bit-identical to calling the
//! backend methods in graph order (property-tested in
//! `tests/properties.rs`). With residency enabled, results stay
//! bit-identical while strictly fewer simulated bytes cross the host
//! interface on multi-op chains.
//!
//! ```
//! use cinm_core::session::{Session, SessionOptions};
//! use cinm_core::{ShardPolicy, Target};
//! use upmem_sim::UpmemConfig;
//!
//! let mut cfg = UpmemConfig::with_ranks(1);
//! cfg.dpus_per_rank = 4;
//! let mut sess = Session::new(
//!     SessionOptions::default()
//!         .with_upmem_config(cfg)
//!         .with_policy(ShardPolicy::Single(Target::Cnm)),
//! );
//! let a = sess.matrix(&vec![1; 8 * 6], 8, 6);
//! let x = sess.vector(&vec![1; 6]);
//! let y = sess.gemv(a, x); // lazy: nothing executed yet
//! let s = sess.select(y, 3); // chained: y stays resident in MRAM
//! sess.run().unwrap();
//! assert_eq!(sess.fetch(y), vec![6; 8]);
//! assert_eq!(sess.fetch(s), vec![6; 8]);
//! ```

use std::borrow::Cow;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::ops::Range;

use cinm_ir::fusion;
use cinm_ir::{
    Attribute, CsePattern, DcePass, ElementwiseChainFusion, ElementwiseRootMerge, Func, Module,
    OpBuilder, OpSpec, PassManager, PatternRewritePass, ScalarType, Type, ValueId,
};
use cinm_lowering::backend::{
    decode_select_into, fold_reduce_partials, merge_histogram_partials_into,
};
use cinm_lowering::{
    elementwise_op_name, ShardDevice, ShardError, ShardSplit, ShardedBackend, ShardedRunOptions,
};
use cinm_runtime::{CommandStream, FaultConfig, FaultStats};
use upmem_sim::{
    BinOp, Command, CommandOutput, DpuKernelKind, FusedArg, FusedStage, KernelSpec, SimError,
    SystemStats, TransferStats, UpmemConfig,
};

use cinm_dialects::cinm;

use crate::shard::{CachedShardPlanner, ShardPlanner, ShardPolicy, ShardShape};
use crate::target::Target;

// The IR fusion patterns and the simulator's fused kernel share one stage
// cap; the session lowers fused groups directly into fused kernel specs.
const _: () = assert!(fusion::MAX_FUSED_STAGES == upmem_sim::MAX_FUSED_STAGES);

/// Binary ops in declaration order — the positional code used to round-trip
/// [`BinOp`] through integer IR attributes.
const BINOPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Max,
    BinOp::Min,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
];

fn binop_code(op: BinOp) -> i64 {
    BINOPS.iter().position(|&b| b == op).expect("known binop") as i64
}

fn binop_from_code(code: i64) -> Option<BinOp> {
    usize::try_from(code)
        .ok()
        .and_then(|i| BINOPS.get(i).copied())
}

/// Options of a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Device set configuration (ranks, UPMEM/CIM code-generation options,
    /// host roofline, shared pool) — the same options the sharded backend
    /// takes.
    pub sharded: ShardedRunOptions,
    /// The placement policy handed to the shard planner.
    pub policy: ShardPolicy,
    /// Whether intermediate (and unchanged input) tensors stay
    /// device-resident between ops and runs. Disabling reproduces the eager
    /// per-op program exactly — the equivalence-oracle mode.
    pub residency: bool,
    /// Whether the graph optimizer (CSE, DCE, element-wise fusion) runs
    /// between recording and compilation. Only active together with
    /// `residency` (the optimizer reasons about device-resident chains);
    /// disabling compiles every recorded op one-to-one — the oracle mode for
    /// the optimizer-equivalence property tests.
    pub optimizer: bool,
    /// Explicit UPMEM machine configuration (test harnesses use small
    /// grids); `None` uses `sharded.ranks` DIMMs of the default geometry.
    pub upmem_config: Option<UpmemConfig>,
    /// Deterministic fault schedule injected into **both** simulators (the
    /// UPMEM grid and the crossbar). `None` runs fault-free. Under any
    /// schedule that leaves at least one healthy device, session results
    /// stay bit-identical to the fault-free run — the session retries
    /// transients, re-plans around dead devices and falls back to the host.
    pub fault: Option<FaultConfig>,
    /// Per-DPU MRAM budget the session's resident tensors must fit in
    /// (capped at the machine's physical `mram_bytes`). `None` uses the
    /// full physical MRAM. Under pressure the session evicts resident
    /// tensors by cost — spilling to the host or dropping rematerializable
    /// intermediates — and results stay bit-identical to the unlimited run
    /// for any limit that admits the graph's true working set; a limit
    /// below that surfaces as a typed [`ShardError::MramExhausted`].
    pub mram_limit_bytes: Option<usize>,
    /// Optional metrics registry. The session threads it into both
    /// simulators (per-op counters, accumulated joules) and publishes its
    /// own gauges after every run: run/replay counts, plan-cache
    /// hits/misses/hit-rate, residency evictions/spills/remat ops, fault
    /// retries. Recording is atomics-only — results, simulated statistics
    /// and the warmed hot path's zero-allocation guarantee are unaffected.
    pub telemetry: Option<cinm_telemetry::Telemetry>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            sharded: ShardedRunOptions::default(),
            policy: ShardPolicy::Auto,
            residency: true,
            optimizer: true,
            upmem_config: None,
            fault: None,
            mram_limit_bytes: None,
            telemetry: None,
        }
    }
}

impl SessionOptions {
    /// Overrides the placement policy.
    pub fn with_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables device residency (see the field documentation).
    pub fn with_residency(mut self, residency: bool) -> Self {
        self.residency = residency;
        self
    }

    /// Enables or disables the graph optimizer (see the field
    /// documentation).
    pub fn with_optimizer(mut self, optimizer: bool) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Overrides the UPMEM machine configuration.
    pub fn with_upmem_config(mut self, config: UpmemConfig) -> Self {
        self.upmem_config = Some(config);
        self
    }

    /// Overrides the full device-set options.
    pub fn with_sharded(mut self, sharded: ShardedRunOptions) -> Self {
        self.sharded = sharded;
        self
    }

    /// Attaches a deterministic fault schedule to both simulators (see the
    /// field documentation).
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Caps the per-DPU MRAM bytes available to resident tensors (see the
    /// field documentation).
    pub fn with_mram_limit_bytes(mut self, limit: usize) -> Self {
        self.mram_limit_bytes = Some(limit);
        self
    }

    /// Attaches a metrics registry (see the field documentation).
    pub fn with_telemetry(mut self, telemetry: cinm_telemetry::Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// Logical shape of a session tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorShape {
    /// A flat vector of `len` elements.
    Vector {
        /// Element count.
        len: usize,
    },
    /// A row-major matrix.
    Matrix {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// A single scalar (reduction results).
    Scalar,
}

impl TensorShape {
    /// Total element count of the shape. For `select` outputs this is the
    /// *upper bound* (the input length) — the fetched vector carries the
    /// data-dependent actual length.
    pub fn len(&self) -> usize {
        match self {
            TensorShape::Vector { len } => *len,
            TensorShape::Matrix { rows, cols } => rows * cols,
            TensorShape::Scalar => 1,
        }
    }

    /// Whether the shape holds zero elements (sessions reject empty
    /// tensors, so this is always `false` for live handles).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A typed handle to a session tensor — a `Copy` token naming a tensor plus
/// its logical shape.
///
/// Handles of **op outputs** stay fetchable until the *next* [`Session::run`]
/// (at which point unreferenced temporaries are recycled and their handles
/// go stale — using one afterwards panics with a clear message); handles of
/// [`Session::vector`]/[`Session::matrix`] source tensors stay valid for the
/// session's lifetime.
///
/// ```
/// use cinm_core::session::{Session, SessionOptions, TensorShape};
///
/// let mut sess = Session::new(SessionOptions::default());
/// let v = sess.vector(&[1, 2, 3, 4]);
/// assert_eq!(v.shape(), TensorShape::Vector { len: 4 });
/// assert_eq!(v.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorHandle {
    id: u32,
    gen: u32,
    shape: TensorShape,
}

impl TensorHandle {
    /// The logical shape of the tensor.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Total element count (see [`TensorShape::len`]).
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the tensor is empty (never true for live handles).
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }
}

/// Where a resident tensor's device copy lives and how to decode it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Resident {
    /// The MRAM buffer holding the copy.
    buf: u32,
    /// Per-DPU elements of that buffer (the gather chunk).
    gather_chunk: usize,
    /// How the buffer contents map back to the logical tensor.
    layout: ResidentLayout,
}

/// Decoding rule of a resident buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ResidentLayout {
    /// Per-DPU chunks of the logical vector, zero-padded tail — directly
    /// consumable by any same-chunk scatter input.
    Chunked,
    /// The same logical value replicated to every DPU (broadcast inputs).
    Replicated,
    /// Raw select output: `(count, values…)` records per DPU.
    SelectRaw {
        threshold: i32,
        len: usize,
        chunk: usize,
    },
    /// Per-DPU reduction partials (fold the first `used` in DPU order).
    ReducePartials { op: BinOp, used: usize },
    /// Per-DPU privatised histograms.
    HistPartials {
        bins: usize,
        len: usize,
        chunk: usize,
    },
    /// Per-DPU time-series profiles.
    Profiles { used: usize, positions: usize },
}

/// Device-buffer key of one tensor role: a scatter target of `chunk`
/// elements per DPU, or a broadcast target of the full (replicated) length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufKey {
    Chunk(usize),
    Broadcast(usize),
}

impl BufKey {
    fn elems_per_dpu(&self) -> usize {
        match self {
            BufKey::Chunk(c) => *c,
            BufKey::Broadcast(l) => *l,
        }
    }
}

/// One tensor slot of the session.
#[derive(Debug, Default)]
struct Slot {
    gen: u32,
    shape: Option<TensorShape>,
    /// Host copy (valid when `host_valid`). Storage is retained across
    /// recycling so steady-state loops never re-allocate.
    host: Vec<i32>,
    host_valid: bool,
    /// Whether the resident device copy is current.
    device_valid: bool,
    resident: Option<Resident>,
    /// Whether the tensor may be consumed by further ops (select outputs
    /// have data-dependent length and are fetch-only).
    composable: bool,
    pinned: bool,
    /// Device buffers of this slot, keyed by role layout. Kept across
    /// recycling (same-shaped successors reuse the MRAM).
    bufs: Vec<(BufKey, u32)>,
    /// Raw gather scratch for decoding (reused across fetches).
    scratch: Vec<i32>,
    /// Run token of the last run that bound this slot — the LRU recency the
    /// eviction policy orders victims by.
    last_use: u64,
    /// Run token of the run currently compiling or replaying against this
    /// slot; a slot whose token matches the in-flight run is never a
    /// victim (its buffer ids are already patched into the plan).
    protected: u64,
    /// MRAM round trips (spills, drops and reloads) this tensor has taken.
    trips: u32,
    /// The op that produced this tensor, with physical input slots — the
    /// DTR-style recompute recipe a dropped (unspilled) tensor is
    /// rematerialized from. `None` for source tensors.
    recipe: Option<OpNode>,
    /// Generations of the recipe's input slots at recording time; a bumped
    /// generation means an input was recycled and the recipe is dead.
    recipe_gens: [u32; 3],
}

/// One recorded graph op. `PartialEq` + `Copy` so the replay signature
/// check is a plain slice comparison with no allocation; `Hash` feeds the
/// canonical graph signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OpNode {
    kind: OpKindNode,
    inputs: [u32; 3],
    n_inputs: u8,
    output: u32,
}

impl OpNode {
    fn inputs(&self) -> &[u32] {
        &self.inputs[..self.n_inputs as usize]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKindNode {
    Gemm {
        m: usize,
        k: usize,
        n: usize,
    },
    Gemv {
        rows: usize,
        cols: usize,
    },
    Elementwise {
        op: BinOp,
        len: usize,
    },
    Reduce {
        op: BinOp,
        len: usize,
    },
    Histogram {
        bins: usize,
        max_value: i32,
        len: usize,
    },
    Select {
        threshold: i32,
        len: usize,
    },
    TimeSeries {
        window: usize,
        len: usize,
    },
    BfsStep {
        vertices_per_dpu: usize,
        avg_degree: usize,
        used_dpus: usize,
    },
}

impl OpKindNode {
    /// The `cinm` dialect name of the op when the shard planner can plan it.
    fn plannable_name(&self) -> Option<&'static str> {
        match self {
            OpKindNode::Gemm { .. } => Some(cinm::GEMM),
            OpKindNode::Gemv { .. } => Some(cinm::GEMV),
            OpKindNode::Elementwise { op, .. } => Some(elementwise_op_name(*op)),
            OpKindNode::Reduce { .. } => Some(cinm::REDUCE),
            OpKindNode::Histogram { .. } => Some(cinm::HISTOGRAM),
            _ => None,
        }
    }

    fn shard_shape(&self) -> Option<ShardShape> {
        match *self {
            OpKindNode::Gemm { m, k, n } => Some(ShardShape::matmul(m, k, n)),
            OpKindNode::Gemv { rows, cols } => Some(ShardShape::matmul(rows, cols, 1)),
            OpKindNode::Elementwise { len, .. }
            | OpKindNode::Reduce { len, .. }
            | OpKindNode::Histogram { len, .. } => Some(ShardShape::streaming(len)),
            _ => None,
        }
    }

    /// Logical output element count (decorative result-type length of the
    /// optimizer IR; deterministic per kind so CSE compares consistently).
    fn out_len(&self) -> usize {
        match *self {
            OpKindNode::Gemm { m, n, .. } => m * n,
            OpKindNode::Gemv { rows, .. } => rows,
            OpKindNode::Elementwise { len, .. } => len,
            OpKindNode::Reduce { .. } => 1,
            OpKindNode::Histogram { bins, .. } => bins,
            OpKindNode::Select { len, .. } => len,
            OpKindNode::TimeSeries { len, .. } => len,
            OpKindNode::BfsStep {
                vertices_per_dpu,
                used_dpus,
                ..
            } => used_dpus * vertices_per_dpu,
        }
    }
}

/// Hashes a canonical op graph (plus the residency mode) into its replay
/// signature. [`Session::canonicalize`] and the serving layer's batching
/// key both call this, so "same compiled plan" and "batch-compatible
/// request" stay the same predicate by construction.
fn canonical_signature(ops: &[OpNode], discards: &[bool], residency: bool) -> u64 {
    let mut hasher = DefaultHasher::new();
    ops.hash(&mut hasher);
    discards.hash(&mut hasher);
    residency.hash(&mut hasher);
    hasher.finish()
}

/// Canonical replay signature of the single-op request graph
/// `y = gemv(a, x)` recorded on a fresh resident session — the batching
/// compatibility key of the serving layer ([`crate::serve`]): two requests
/// may share one fused launch iff their signatures match. A unit test pins
/// this to the signature `canonicalize` computes for the same graph.
pub(crate) fn gemv_request_signature(rows: usize, cols: usize) -> u64 {
    single_op_signature(OpKindNode::Gemv { rows, cols })
}

/// Canonical replay signature of `c = gemm(a, b)` — see
/// [`gemv_request_signature`].
pub(crate) fn gemm_request_signature(m: usize, k: usize, n: usize) -> u64 {
    single_op_signature(OpKindNode::Gemm { m, k, n })
}

/// The canonical form of any fresh two-input single-op graph: inputs intern
/// to canonical slots 0 and 1 (unused third input stays at its recorded
/// zero padding), the output to slot 2, nothing discarded, residency on.
fn single_op_signature(kind: OpKindNode) -> u64 {
    let node = OpNode {
        kind,
        inputs: [0, 1, 0],
        n_inputs: 2,
        output: 2,
    };
    canonical_signature(&[node], &[false], true)
}

/// The optimizer-IR op name of a kind. Element-wise ops share one name —
/// the `"kind"` attribute (which CSE compares) carries the opcode.
fn ir_name(kind: &OpKindNode) -> &'static str {
    match kind {
        OpKindNode::Gemm { .. } => "sess.gemm",
        OpKindNode::Gemv { .. } => "sess.gemv",
        OpKindNode::Elementwise { .. } => "sess.elementwise",
        OpKindNode::Reduce { .. } => "sess.reduce",
        OpKindNode::Histogram { .. } => "sess.histogram",
        OpKindNode::Select { .. } => "sess.select",
        OpKindNode::TimeSeries { .. } => "sess.time_series",
        OpKindNode::BfsStep { .. } => "sess.bfs_step",
    }
}

/// Round-trips an op kind through a four-integer IR attribute, so the
/// structural identity of an op survives the pass pipeline.
fn encode_kind(kind: &OpKindNode) -> [i64; 4] {
    match *kind {
        OpKindNode::Gemm { m, k, n } => [0, m as i64, k as i64, n as i64],
        OpKindNode::Gemv { rows, cols } => [1, rows as i64, cols as i64, 0],
        OpKindNode::Elementwise { op, len } => [2, binop_code(op), len as i64, 0],
        OpKindNode::Reduce { op, len } => [3, binop_code(op), len as i64, 0],
        OpKindNode::Histogram {
            bins,
            max_value,
            len,
        } => [4, bins as i64, max_value as i64, len as i64],
        OpKindNode::Select { threshold, len } => [5, threshold as i64, len as i64, 0],
        OpKindNode::TimeSeries { window, len } => [6, window as i64, len as i64, 0],
        OpKindNode::BfsStep {
            vertices_per_dpu,
            avg_degree,
            used_dpus,
        } => [
            7,
            vertices_per_dpu as i64,
            avg_degree as i64,
            used_dpus as i64,
        ],
    }
}

fn decode_kind(code: &[i64]) -> Option<OpKindNode> {
    let &[tag, a, b, c] = code else { return None };
    Some(match tag {
        0 => OpKindNode::Gemm {
            m: a as usize,
            k: b as usize,
            n: c as usize,
        },
        1 => OpKindNode::Gemv {
            rows: a as usize,
            cols: b as usize,
        },
        2 => OpKindNode::Elementwise {
            op: binop_from_code(a)?,
            len: b as usize,
        },
        3 => OpKindNode::Reduce {
            op: binop_from_code(a)?,
            len: b as usize,
        },
        4 => OpKindNode::Histogram {
            bins: a as usize,
            max_value: b as i32,
            len: c as usize,
        },
        5 => OpKindNode::Select {
            threshold: a as i32,
            len: b as usize,
        },
        6 => OpKindNode::TimeSeries {
            window: a as usize,
            len: b as usize,
        },
        7 => OpKindNode::BfsStep {
            vertices_per_dpu: a as usize,
            avg_degree: b as usize,
            used_dpus: c as usize,
        },
        _ => return None,
    })
}

/// Per-op UPMEM geometry: expected input buffer keys, output buffer and its
/// resident layout, and the per-DPU kernel.
struct CnmGeometry {
    inputs: [BufKey; 3],
    out_chunk: usize,
    out_layout: ResidentLayout,
    kernel: DpuKernelKind,
}

fn cnm_geometry(node: &OpNode, dpus: usize) -> CnmGeometry {
    match node.kind {
        OpKindNode::Gemm { m, k, n } => {
            let rpd = m.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [
                    BufKey::Chunk(rpd * k),
                    BufKey::Broadcast(k * n),
                    BufKey::Chunk(0),
                ],
                out_chunk: rpd * n,
                out_layout: ResidentLayout::Chunked,
                kernel: DpuKernelKind::Gemm { m: rpd, k, n },
            }
        }
        OpKindNode::Gemv { rows, cols } => {
            let rpd = rows.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [
                    BufKey::Chunk(rpd * cols),
                    BufKey::Broadcast(cols),
                    BufKey::Chunk(0),
                ],
                out_chunk: rpd,
                out_layout: ResidentLayout::Chunked,
                kernel: DpuKernelKind::Gemv { rows: rpd, cols },
            }
        }
        OpKindNode::Elementwise { op, len } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(c), BufKey::Chunk(0)],
                out_chunk: c,
                out_layout: ResidentLayout::Chunked,
                kernel: DpuKernelKind::Elementwise { op, len: c },
            }
        }
        OpKindNode::Reduce { op, len } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: 1,
                out_layout: ResidentLayout::ReducePartials {
                    op,
                    used: len.div_ceil(c),
                },
                kernel: DpuKernelKind::Reduce { op, len: c },
            }
        }
        OpKindNode::Histogram {
            bins,
            max_value,
            len,
        } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: bins,
                out_layout: ResidentLayout::HistPartials {
                    bins,
                    len,
                    chunk: c,
                },
                kernel: DpuKernelKind::Histogram {
                    bins,
                    len: c,
                    max_value,
                },
            }
        }
        OpKindNode::Select { threshold, len } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: c + 1,
                out_layout: ResidentLayout::SelectRaw {
                    threshold,
                    len,
                    chunk: c,
                },
                kernel: DpuKernelKind::Select { len: c, threshold },
            }
        }
        OpKindNode::TimeSeries { window, len } => {
            let c = len.div_ceil(dpus).max(window);
            let positions = c - window + 1;
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: positions,
                out_layout: ResidentLayout::Profiles {
                    used: len.div_ceil(c),
                    positions,
                },
                kernel: DpuKernelKind::TimeSeries { len: c, window },
            }
        }
        OpKindNode::BfsStep {
            vertices_per_dpu: vp,
            avg_degree,
            ..
        } => CnmGeometry {
            inputs: [
                BufKey::Chunk(vp + 1),
                BufKey::Chunk(vp * avg_degree),
                BufKey::Chunk(vp),
            ],
            out_chunk: vp,
            out_layout: ResidentLayout::Chunked,
            kernel: DpuKernelKind::BfsStep {
                vertices: vp,
                avg_degree,
            },
        },
    }
}

/// One compiled UPMEM command of a segment.
///
/// Commands carry both **canonical** fields (`cslot` indices into the plan's
/// `binding`, plus layout keys) and the **physical** fields the executors
/// read (slot ids, buffer ids). On a replay-cache hit `rebind` re-derives
/// every physical field from the canonical ones under the new binding, so
/// one memoized plan serves every graph with the same canonical signature.
#[derive(Debug)]
enum CnmCmd {
    Scatter {
        cslot: u32,
        slot: u32,
        buf: u32,
        chunk: usize,
    },
    Broadcast {
        cslot: u32,
        slot: u32,
        buf: u32,
        len: usize,
    },
    Zero {
        cslot: u32,
        key: BufKey,
        buf: u32,
    },
    Launch {
        spec: KernelSpec,
        /// Canonical sources of the spec's buffer arguments, for rebinding.
        args: Vec<LaunchBind>,
    },
    /// Sets the output slot's resident descriptor after its launch.
    SetOutput {
        cslot: u32,
        slot: u32,
        resident: Resident,
    },
    /// Gathers the slot's resident buffer into its scratch (residency-off
    /// mode gathers every op output, mirroring the eager program).
    Gather {
        cslot: u32,
        slot: u32,
        buf: u32,
        chunk: usize,
    },
    /// Decodes the slot's scratch into its host copy.
    Decode {
        cslot: u32,
        slot: u32,
    },
}

/// Canonical source of one buffer argument of a compiled kernel spec.
#[derive(Debug, Clone, Copy)]
struct LaunchBind {
    role: LaunchRole,
    cslot: u32,
    key: BufKey,
}

/// Which field of the [`KernelSpec`] a [`LaunchBind`] patches.
#[derive(Debug, Clone, Copy)]
enum LaunchRole {
    Input(u8),
    Output,
    Extra(u8),
}

/// One compiled execution step.
#[derive(Debug)]
enum Step {
    /// Gather + decode a resident tensor to the host (stream boundary).
    Materialize { cslot: u32, slot: u32 },
    /// One hazard-tracked UPMEM command stream.
    Segment { cmds: Range<usize> },
    /// One shard-planned op dispatched across the device set.
    Planned { op: usize, split: ShardSplit },
}

/// Replay precondition of one external input, in canonical terms: the host
/// validity and the *effective* residency shape (`None` when the device
/// copy is stale) of the slot bound to `cslot`. Physical buffer and slot
/// ids deliberately do not appear — plans are data- and id-oblivious.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Precond {
    cslot: u32,
    host_valid: bool,
    resident: Option<(usize, ResidentLayout)>,
}

/// One schedule item of an optimized graph (compile-local).
enum SchedItem {
    /// Lower `ops[i]` through the standard per-op path.
    Plain(usize),
    /// Lower a fused element-wise group: `ops` indexes the flattened
    /// per-stage nodes, `stages`/`externals` describe the fused kernel.
    Fused {
        ops: Range<usize>,
        stages: Vec<FusedStage>,
        externals: Vec<u32>,
        len: usize,
    },
}

#[derive(Debug, Default)]
struct Compiled {
    valid: bool,
    residency: bool,
    /// Canonical signature hash (fast reject) of `canon_src` + discards +
    /// residency.
    sig: u64,
    /// LRU stamp (monotonic; refreshed on every hit).
    stamp: u64,
    /// The canonical source graph this plan was compiled from — replay
    /// requires an exact match.
    canon_src: Vec<OpNode>,
    /// Per-source-op discard flags at compile time.
    discards: Vec<bool>,
    /// Post-optimization canonical ops (fused groups flattened back to one
    /// node per stage — valid SSA, used for re-planning recovery and
    /// end-of-run bookkeeping).
    ops: Vec<OpNode>,
    /// Canonical slots of `canon_src` outputs the optimizer eliminated
    /// (discarded duplicates / dead ops) — recycled after every run.
    eliminated: Vec<u32>,
    /// Canonical slot → physical slot binding of the *current* run.
    binding: Vec<u32>,
    preconds: Vec<Precond>,
    steps: Vec<Step>,
    cmds: Vec<CnmCmd>,
}

/// Counters of the graph optimizer (see [`Session::optimizer_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Graphs that went through the optimization pipeline at compile time.
    pub graphs_optimized: u64,
    /// Source ops removed by CSE/DCE (discarded duplicates and dead code).
    pub ops_eliminated: u64,
    /// Fused element-wise groups emitted.
    pub fused_groups: u64,
    /// Element-wise ops folded into those groups.
    pub ops_fused: u64,
    /// Kernel launches saved by fusion (`ops_fused - fused_groups`).
    pub launches_saved: u64,
}

/// Counters of the compiled-plan LRU cache (see
/// [`Session::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Runs that replayed a memoized plan.
    pub hits: u64,
    /// Runs that compiled.
    pub misses: u64,
    /// Valid plans evicted to make room.
    pub evictions: u64,
    /// Valid plans currently cached.
    pub entries: usize,
}

/// Counters of the session's residency manager (see
/// [`Session::residency_stats`]). All zero while the working set fits the
/// MRAM budget — the no-pressure hot path never touches the eviction
/// machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Resident tensors evicted under allocation pressure (any flavour:
    /// spilled, dropped with a recipe, or scratch-buffer reclaims).
    pub evictions: u64,
    /// Evictions that spilled the tensor to the host (no host copy, no
    /// usable recipe — the value had to move).
    pub spills: u64,
    /// Device-to-host bytes those spills gathered.
    pub spilled_bytes: u64,
    /// Evictions that dropped the device copy and recorded nothing — the
    /// tensor is recomputed (DTR-style) when next touched.
    pub remat_drops: u64,
    /// Recompute ops re-injected to rematerialize dropped tensors.
    pub remat_ops: u64,
    /// High-water mark of per-DPU MRAM bytes the session ever held.
    pub peak_mram_bytes: usize,
    /// Per-DPU MRAM bytes currently allocated.
    pub used_mram_bytes: usize,
    /// The per-DPU MRAM budget (the physical capacity when no explicit
    /// limit was set).
    pub limit_bytes: usize,
}

/// The mutable counter subset of [`ResidencyStats`] (peak/used/limit are
/// read off the simulator when a snapshot is taken).
#[derive(Debug, Clone, Copy, Default)]
struct ResidencyCounters {
    evictions: u64,
    spills: u64,
    spilled_bytes: u64,
    remat_drops: u64,
    remat_ops: u64,
}

/// The session's registered telemetry series (see
/// [`SessionOptions::telemetry`]). Gauges are registered once at
/// construction and published by atomic stores after every run — the warmed
/// hot path stays allocation-free.
#[derive(Debug)]
struct SessionTele {
    runs: cinm_telemetry::Gauge,
    replays: cinm_telemetry::Gauge,
    plan_cache_hits: cinm_telemetry::Gauge,
    plan_cache_misses: cinm_telemetry::Gauge,
    plan_cache_evictions: cinm_telemetry::Gauge,
    plan_cache_entries: cinm_telemetry::Gauge,
    plan_cache_hit_rate: cinm_telemetry::Gauge,
    res_evictions: cinm_telemetry::Gauge,
    res_spills: cinm_telemetry::Gauge,
    res_spilled_bytes: cinm_telemetry::Gauge,
    res_remat_ops: cinm_telemetry::Gauge,
    fault_retries: cinm_telemetry::Gauge,
}

impl SessionTele {
    fn register(t: &cinm_telemetry::Telemetry) -> Self {
        SessionTele {
            runs: t.gauge("session.runs"),
            replays: t.gauge("session.replays"),
            plan_cache_hits: t.gauge("session.plan_cache.hits"),
            plan_cache_misses: t.gauge("session.plan_cache.misses"),
            plan_cache_evictions: t.gauge("session.plan_cache.evictions"),
            plan_cache_entries: t.gauge("session.plan_cache.entries"),
            plan_cache_hit_rate: t.gauge("session.plan_cache.hit_rate"),
            res_evictions: t.gauge("session.residency.evictions"),
            res_spills: t.gauge("session.residency.spills"),
            res_spilled_bytes: t.gauge("session.residency.spilled_bytes"),
            res_remat_ops: t.gauge("session.residency.remat_ops"),
            fault_retries: t.gauge("session.fault.retries"),
        }
    }
}

/// How one recovery attempt resumes execution.
#[derive(Debug, Clone, Copy)]
enum Recovery {
    /// The compiled plan is still valid: re-execute from the failed step.
    Resume,
    /// The graph was re-planned across the surviving devices into a new
    /// compiled plan: execute it from the start.
    Replanned(usize),
}

/// The lazy graph execution session (see the [module documentation](self)).
#[derive(Debug)]
pub struct Session {
    backend: ShardedBackend,
    planner: CachedShardPlanner,
    residency: bool,
    optimizer: bool,
    slots: Vec<Slot>,
    free: VecDeque<u32>,
    ops: Vec<OpNode>,
    /// Op-output slots the user marked unobserved (cleared every run).
    discarded: Vec<u32>,
    live_temps: Vec<u32>,
    /// LRU cache of memoized compiled plans (see `COMPILED_CACHE`).
    compiled: Vec<Compiled>,
    /// Monotonic LRU clock.
    stamp_counter: u64,
    /// Canonicalization scratch (reused every run, allocation-free when
    /// warmed): physical slot → canonical slot, canonical slot → physical
    /// slot, canonical ops, per-op discard flags, signature hash.
    slot_to_cslot: Vec<u32>,
    binding_scratch: Vec<u32>,
    canon_scratch: Vec<OpNode>,
    discard_scratch: Vec<bool>,
    sig_scratch: u64,
    /// Set when planner feedback invalidated the shard-plan cache; compiled
    /// plans embedding the stale splits are dropped at the next run.
    planner_feedback_dirty: bool,
    runs: u64,
    replays: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    opt_stats: OptimizerStats,
    /// Session-level recovery counters (re-plans, degradations); the
    /// backends' own retry counters are merged in by
    /// [`fault_stats`](Session::fault_stats).
    fault_stats: FaultStats,
    /// Monotonic per-run token driving slot recency and eviction
    /// protection (separate from the LRU `stamp_counter`, which only moves
    /// on cache traffic).
    run_token: u64,
    /// Eviction/spill/remat counters of the residency manager.
    res_counters: ResidencyCounters,
    /// Whether the current `run()` is an injected rematerialization (a
    /// fetch or write forced an evicted tensor back; temp recycling is
    /// suppressed because the caller's pending graph is saved aside).
    in_remat: bool,
    /// Registered telemetry gauges (see [`SessionOptions::telemetry`]).
    tele: Option<SessionTele>,
}

impl Session {
    /// Device failures the session tries to recover from before giving up on
    /// a run. Each attempt either re-executes (transient storms, a swapped-in
    /// spare) or re-plans around a freshly unhealthy device; a graph that
    /// keeps failing past this is surfaced as an error.
    const MAX_RECOVERY_ATTEMPTS: u32 = 8;

    /// Capacity of the compiled-plan LRU cache. Sized for serving loops
    /// that interleave a handful of distinct graph shapes; the least
    /// recently replayed plan is evicted beyond this.
    const COMPILED_CACHE: usize = 8;

    /// Creates a session over the three devices described by `options`; the
    /// shard planner is assembled from the devices' own cost hookups.
    pub fn new(options: SessionOptions) -> Self {
        let SessionOptions {
            mut sharded,
            policy,
            residency,
            optimizer,
            mut upmem_config,
            fault,
            mram_limit_bytes,
            telemetry,
        } = options;
        if let Some(fault) = fault {
            // One schedule drives both simulators (independent event streams:
            // the injectors key draws on their own event counters).
            let cfg = upmem_config
                .take()
                .unwrap_or_else(|| UpmemConfig::with_ranks(sharded.ranks));
            upmem_config = Some(cfg.with_fault(fault.clone()));
            let cim_cfg = sharded.cim_config.take().unwrap_or_default();
            sharded.cim_config = Some(cim_cfg.with_fault(fault));
        }
        if let Some(limit) = mram_limit_bytes {
            // The simulator itself enforces the budget: shrinking its
            // capacity makes every allocation path report typed exhaustion,
            // which the residency manager relieves by evicting.
            let mut cfg = upmem_config
                .take()
                .unwrap_or_else(|| UpmemConfig::with_ranks(sharded.ranks));
            cfg.mram_bytes = limit.min(cfg.mram_bytes);
            upmem_config = Some(cfg);
        }
        if let Some(t) = &telemetry {
            // Both simulators register their per-op counters against the
            // same registry the session publishes its gauges to — one
            // snapshot covers the whole stack.
            let cfg = upmem_config
                .take()
                .unwrap_or_else(|| UpmemConfig::with_ranks(sharded.ranks));
            upmem_config = Some(cfg.with_telemetry(t.clone()));
            let cim_cfg = sharded.cim_config.take().unwrap_or_default();
            sharded.cim_config = Some(cim_cfg.with_telemetry(t.clone()));
        }
        let backend = match upmem_config {
            Some(cfg) => ShardedBackend::with_upmem_config(cfg, sharded),
            None => ShardedBackend::new(sharded),
        };
        let mut planner = ShardPlanner::new().with_policy(policy);
        for device in ShardDevice::ALL {
            planner.register_device(backend.device(device));
        }
        Session {
            backend,
            planner: CachedShardPlanner::new(planner),
            residency,
            optimizer,
            slots: Vec::new(),
            free: VecDeque::new(),
            ops: Vec::new(),
            discarded: Vec::new(),
            live_temps: Vec::new(),
            compiled: Vec::new(),
            stamp_counter: 0,
            slot_to_cslot: Vec::new(),
            binding_scratch: Vec::new(),
            canon_scratch: Vec::new(),
            discard_scratch: Vec::new(),
            sig_scratch: 0,
            planner_feedback_dirty: false,
            runs: 0,
            replays: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            opt_stats: OptimizerStats::default(),
            fault_stats: FaultStats::default(),
            run_token: 0,
            res_counters: ResidencyCounters::default(),
            in_remat: false,
            tele: telemetry.as_ref().map(SessionTele::register),
        }
    }

    // -- tensors ------------------------------------------------------------

    fn alloc_slot(&mut self, shape: TensorShape, composable: bool) -> TensorHandle {
        assert!(!shape.is_empty(), "session tensors must be non-empty");
        let id = match self.free.pop_front() {
            Some(id) => {
                let slot = &mut self.slots[id as usize];
                slot.shape = Some(shape);
                slot.host.clear();
                slot.host_valid = false;
                slot.device_valid = false;
                slot.resident = None;
                slot.composable = composable;
                slot.pinned = false;
                slot.trips = 0;
                slot.last_use = 0;
                slot.protected = 0;
                slot.recipe = None;
                slot.recipe_gens = [0; 3];
                id
            }
            None => {
                let id = self.slots.len() as u32;
                self.slots.push(Slot {
                    shape: Some(shape),
                    composable,
                    ..Slot::default()
                });
                id
            }
        };
        TensorHandle {
            id,
            gen: self.slots[id as usize].gen,
            shape,
        }
    }

    fn check(&self, h: TensorHandle) -> &Slot {
        let slot = &self.slots[h.id as usize];
        assert_eq!(
            slot.gen, h.gen,
            "stale tensor handle: op outputs are recycled at the next run() \
             unless pinned or used as inputs"
        );
        slot
    }

    fn check_input(&self, h: TensorHandle) {
        let slot = self.check(h);
        assert!(
            slot.composable,
            "select outputs have data-dependent length and can only be fetched"
        );
    }

    /// Creates a vector tensor from host data.
    pub fn vector(&mut self, data: &[i32]) -> TensorHandle {
        let h = self.alloc_slot(TensorShape::Vector { len: data.len() }, true);
        self.write(h, data);
        h
    }

    /// Creates a row-major matrix tensor from host data.
    pub fn matrix(&mut self, data: &[i32], rows: usize, cols: usize) -> TensorHandle {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        let h = self.alloc_slot(TensorShape::Matrix { rows, cols }, true);
        self.write(h, data);
        h
    }

    /// Overwrites a tensor's host contents (device copies are invalidated;
    /// the next run re-transfers it). The data length must match the shape.
    pub fn write(&mut self, h: TensorHandle, data: &[i32]) {
        self.check(h);
        assert_eq!(data.len(), h.shape.len(), "write length mismatch");
        // An evicted dependent would later rematerialize from the *new*
        // contents: recompute it now, then kill every recipe reading the
        // rewritten tensor (including this slot's own producer recipe).
        self.remat_dependents_of(h.id);
        for s in self.slots.iter_mut() {
            if s.recipe.is_some_and(|r| r.inputs().contains(&h.id)) {
                s.recipe = None;
            }
        }
        let slot = &mut self.slots[h.id as usize];
        slot.recipe = None;
        slot.host.clear();
        slot.host.extend_from_slice(data);
        slot.host_valid = true;
        slot.device_valid = false;
    }

    /// Pins an op output so it survives future runs even when unreferenced.
    pub fn pin(&mut self, h: TensorHandle) {
        self.check(h);
        self.slots[h.id as usize].pinned = true;
    }

    /// Marks a *recorded op output* of the pending graph as unobserved: the
    /// caller promises not to fetch it. The optimizer may then eliminate the
    /// op entirely (if nothing consumes it) or CSE it into a structurally
    /// identical twin; either way the handle goes stale after the next
    /// [`Session::run`]. Discarding a source tensor has no effect.
    pub fn discard(&mut self, h: TensorHandle) {
        self.check(h);
        if !self.discarded.contains(&h.id) {
            self.discarded.push(h.id);
        }
    }

    /// Reinterprets a tensor under a different shape of the same element
    /// count (e.g. an element-wise result viewed as the next layer's matrix).
    /// The returned handle aliases the same tensor — residency is preserved.
    pub fn reshape(&mut self, h: TensorHandle, shape: TensorShape) -> TensorHandle {
        self.check_input(h);
        assert_eq!(h.shape.len(), shape.len(), "reshape must preserve length");
        TensorHandle {
            id: h.id,
            gen: h.gen,
            shape,
        }
    }

    // -- graph building -----------------------------------------------------

    fn push_op(
        &mut self,
        kind: OpKindNode,
        inputs: &[TensorHandle],
        out_shape: TensorShape,
        composable: bool,
    ) -> TensorHandle {
        for &h in inputs {
            self.check_input(h);
        }
        let out = self.alloc_slot(out_shape, composable);
        let mut ids = [0u32; 3];
        for (slot, h) in ids.iter_mut().zip(inputs) {
            *slot = h.id;
        }
        self.ops.push(OpNode {
            kind,
            inputs: ids,
            n_inputs: inputs.len() as u8,
            output: out.id,
        });
        out
    }

    fn vec_len(h: TensorHandle) -> usize {
        match h.shape() {
            TensorShape::Vector { len } => len,
            other => panic!("expected a vector tensor, got {other:?}"),
        }
    }

    /// Records `C[m×n] = A[m×k] × B[k×n]`.
    pub fn gemm(&mut self, a: TensorHandle, b: TensorHandle) -> TensorHandle {
        let (TensorShape::Matrix { rows: m, cols: k }, TensorShape::Matrix { rows: kb, cols: n }) =
            (a.shape(), b.shape())
        else {
            panic!("gemm expects two matrix tensors");
        };
        assert_eq!(k, kb, "gemm inner dimensions must match");
        self.push_op(
            OpKindNode::Gemm { m, k, n },
            &[a, b],
            TensorShape::Matrix { rows: m, cols: n },
            true,
        )
    }

    /// Records `y[rows] = A[rows×cols] × x[cols]`.
    pub fn gemv(&mut self, a: TensorHandle, x: TensorHandle) -> TensorHandle {
        let TensorShape::Matrix { rows, cols } = a.shape() else {
            panic!("gemv expects a matrix tensor");
        };
        assert_eq!(Self::vec_len(x), cols, "gemv vector length mismatch");
        self.push_op(
            OpKindNode::Gemv { rows, cols },
            &[a, x],
            TensorShape::Vector { len: rows },
            true,
        )
    }

    /// Records an element-wise binary op over two equal-length tensors.
    pub fn elementwise(&mut self, op: BinOp, a: TensorHandle, b: TensorHandle) -> TensorHandle {
        let len = a.len();
        assert_eq!(len, b.len(), "element-wise operands must match");
        self.push_op(
            OpKindNode::Elementwise { op, len },
            &[a, b],
            TensorShape::Vector { len },
            true,
        )
    }

    /// Records a reduction to a scalar tensor.
    pub fn reduce(&mut self, op: BinOp, a: TensorHandle) -> TensorHandle {
        let len = a.len();
        self.push_op(
            OpKindNode::Reduce { op, len },
            &[a],
            TensorShape::Scalar,
            true,
        )
    }

    /// Records a histogram over `bins` bins of values in `[0, max_value)`.
    pub fn histogram(&mut self, a: TensorHandle, bins: usize, max_value: i32) -> TensorHandle {
        assert!(bins > 0, "histogram needs at least one bin");
        let len = a.len();
        self.push_op(
            OpKindNode::Histogram {
                bins,
                max_value,
                len,
            },
            &[a],
            TensorShape::Vector { len: bins },
            true,
        )
    }

    /// Records a database select (`> threshold`). The output's shape carries
    /// the input length as an *upper bound*; the fetched vector has the
    /// data-dependent actual length, and the handle cannot feed further ops.
    pub fn select(&mut self, a: TensorHandle, threshold: i32) -> TensorHandle {
        let len = a.len();
        self.push_op(
            OpKindNode::Select { threshold, len },
            &[a],
            TensorShape::Vector { len },
            false,
        )
    }

    /// Records a partitioned time-series distance profile (each DPU profiles
    /// its chunk against the chunk's leading window).
    pub fn time_series(&mut self, a: TensorHandle, window: usize) -> TensorHandle {
        let len = a.len();
        assert!(window > 0 && window <= len, "invalid time-series window");
        let dpus = self.backend.num_dpus();
        let chunk = len.div_ceil(dpus).max(window);
        let positions = chunk - window + 1;
        let used = len.div_ceil(chunk);
        self.push_op(
            OpKindNode::TimeSeries { window, len },
            &[a],
            TensorShape::Vector {
                len: used * positions,
            },
            true,
        )
    }

    /// Records one BFS frontier expansion over partitioned CSR fragments
    /// (`rows`/`cols`/`frontier` laid out per partition, as
    /// [`crate::runner::bfs_fragments`] builds them). The output frontier
    /// has the same per-partition layout as the input frontier, so iterated
    /// BFS keeps the frontier device-resident across [`Session::run`] calls.
    pub fn bfs_step(
        &mut self,
        rows: TensorHandle,
        cols: TensorHandle,
        frontier: TensorHandle,
        vertices_per_dpu: usize,
        avg_degree: usize,
        used_dpus: usize,
    ) -> TensorHandle {
        assert_eq!(
            Self::vec_len(rows),
            used_dpus * (vertices_per_dpu + 1),
            "row-offset fragment length mismatch"
        );
        assert_eq!(
            Self::vec_len(cols),
            used_dpus * vertices_per_dpu * avg_degree,
            "column fragment length mismatch"
        );
        assert_eq!(
            Self::vec_len(frontier),
            used_dpus * vertices_per_dpu,
            "frontier length mismatch"
        );
        self.push_op(
            OpKindNode::BfsStep {
                vertices_per_dpu,
                avg_degree,
                used_dpus,
            },
            &[rows, cols, frontier],
            TensorShape::Vector {
                len: used_dpus * vertices_per_dpu,
            },
            true,
        )
    }

    // -- compilation --------------------------------------------------------

    /// Renames the recorded graph's slots into canonical first-use order.
    ///
    /// Fills the canonicalization scratch: `canon_scratch` holds the ops
    /// with every slot id replaced by its canonical index, `binding_scratch`
    /// maps canonical index → physical slot, `discard_scratch` flags
    /// discarded outputs, and `sig_scratch` hashes the lot (plus the
    /// residency mode). Structurally identical graphs produce identical
    /// canonical forms regardless of which physical slot ids they touch —
    /// the key property that lets iterating loops with rotating temporaries
    /// hit the replay cache. Allocation-free once the scratch capacity is
    /// warmed.
    fn canonicalize(&mut self) {
        let residency = self.residency;
        let Session {
            ops,
            discarded,
            slots,
            slot_to_cslot,
            binding_scratch,
            canon_scratch,
            discard_scratch,
            sig_scratch,
            ..
        } = self;
        slot_to_cslot.clear();
        slot_to_cslot.resize(slots.len(), u32::MAX);
        binding_scratch.clear();
        canon_scratch.clear();
        discard_scratch.clear();
        fn intern(map: &mut [u32], binding: &mut Vec<u32>, slot: u32) -> u32 {
            let entry = &mut map[slot as usize];
            if *entry == u32::MAX {
                *entry = binding.len() as u32;
                binding.push(slot);
            }
            *entry
        }
        for op in ops.iter() {
            let mut node = *op;
            for i in 0..node.n_inputs as usize {
                node.inputs[i] = intern(slot_to_cslot, binding_scratch, node.inputs[i]);
            }
            node.output = intern(slot_to_cslot, binding_scratch, node.output);
            canon_scratch.push(node);
            discard_scratch.push(discarded.contains(&op.output));
        }
        *sig_scratch = canonical_signature(canon_scratch, discard_scratch, residency);
    }

    /// Finds a memoized compiled plan matching the canonicalized graph
    /// (`canonicalize` must have run) and the current residency
    /// preconditions of its external inputs, evaluated through the new
    /// binding. Read-only: on a hit the caller refreshes the entry's
    /// binding and stamps, then `rebind`s the physical fields.
    fn find_compiled(&self) -> Option<usize> {
        self.compiled.iter().position(|c| {
            c.valid
                && c.residency == self.residency
                && c.sig == self.sig_scratch
                && c.canon_src == self.canon_scratch
                && c.discards == self.discard_scratch
                && c.preconds.iter().all(|p| {
                    let phys = self.binding_scratch[p.cslot as usize];
                    let slot = &self.slots[phys as usize];
                    let effective = slot
                        .device_valid
                        .then_some(slot.resident)
                        .flatten()
                        .map(|r| (r.gather_chunk, r.layout));
                    slot.host_valid == p.host_valid && effective == p.resident
                })
        })
    }

    /// Patches every physical field of plan `idx` (slot ids, buffer ids in
    /// commands and kernel specs) from its canonical fields under the
    /// entry's refreshed binding. Buffers are re-derived by layout key via
    /// `ensure_buf_in` — in the warmed steady state every lookup hits the
    /// slot's existing buffer list and the pass allocates nothing; a slot
    /// evicted under MRAM pressure re-allocates here (possibly evicting
    /// colder tensors in turn).
    fn rebind(&mut self, idx: usize) -> Result<(), ShardError> {
        let dpus = self.backend.num_dpus();
        let token = self.run_token;
        let Session {
            backend,
            slots,
            live_temps,
            compiled,
            res_counters,
            ..
        } = self;
        let Compiled {
            binding,
            steps,
            cmds,
            ..
        } = &mut compiled[idx];
        for step in steps.iter_mut() {
            if let Step::Materialize { cslot, slot } = step {
                *slot = binding[*cslot as usize];
            }
        }
        for cmd in cmds.iter_mut() {
            match cmd {
                CnmCmd::Scatter {
                    cslot,
                    slot,
                    buf,
                    chunk,
                } => {
                    *slot = binding[*cslot as usize];
                    *buf = ensure_buf_in(
                        backend,
                        slots,
                        live_temps,
                        *slot,
                        BufKey::Chunk(*chunk),
                        token,
                        res_counters,
                        dpus,
                    )?;
                }
                CnmCmd::Broadcast {
                    cslot,
                    slot,
                    buf,
                    len,
                } => {
                    *slot = binding[*cslot as usize];
                    *buf = ensure_buf_in(
                        backend,
                        slots,
                        live_temps,
                        *slot,
                        BufKey::Broadcast(*len),
                        token,
                        res_counters,
                        dpus,
                    )?;
                }
                CnmCmd::Zero { cslot, key, buf } => {
                    *buf = ensure_buf_in(
                        backend,
                        slots,
                        live_temps,
                        binding[*cslot as usize],
                        *key,
                        token,
                        res_counters,
                        dpus,
                    )?;
                }
                CnmCmd::Launch { spec, args } => {
                    for bind in args.iter() {
                        let buf = ensure_buf_in(
                            backend,
                            slots,
                            live_temps,
                            binding[bind.cslot as usize],
                            bind.key,
                            token,
                            res_counters,
                            dpus,
                        )?;
                        match bind.role {
                            LaunchRole::Input(i) => spec.inputs[i as usize] = buf,
                            LaunchRole::Output => spec.output = buf,
                            LaunchRole::Extra(j) => spec.extra_outputs[j as usize] = buf,
                        }
                    }
                }
                CnmCmd::SetOutput {
                    cslot,
                    slot,
                    resident,
                } => {
                    *slot = binding[*cslot as usize];
                    resident.buf = ensure_buf_in(
                        backend,
                        slots,
                        live_temps,
                        *slot,
                        BufKey::Chunk(resident.gather_chunk),
                        token,
                        res_counters,
                        dpus,
                    )?;
                }
                CnmCmd::Gather {
                    cslot,
                    slot,
                    buf,
                    chunk,
                } => {
                    *slot = binding[*cslot as usize];
                    *buf = ensure_buf_in(
                        backend,
                        slots,
                        live_temps,
                        *slot,
                        BufKey::Chunk(*chunk),
                        token,
                        res_counters,
                        dpus,
                    )?;
                }
                CnmCmd::Decode { cslot, slot } => {
                    *slot = binding[*cslot as usize];
                }
            }
        }
        Ok(())
    }

    /// Recycles temporaries of the previous run that the current graph does
    /// not reference (and that are not pinned). Their handles go stale;
    /// slot storage (host vector, device buffers) is retained for reuse.
    fn recycle_unreferenced_temps(&mut self) {
        let mut live = std::mem::take(&mut self.live_temps);
        let slots = &mut self.slots;
        let free = &mut self.free;
        let ops = &self.ops;
        live.retain(|&t| {
            let referenced = ops.iter().any(|o| o.inputs().contains(&t));
            let slot = &mut slots[t as usize];
            if slot.pinned || referenced {
                true
            } else {
                slot.gen = slot.gen.wrapping_add(1);
                slot.host_valid = false;
                slot.device_valid = false;
                slot.resident = None;
                free.push_back(t);
                false
            }
        });
        self.live_temps = live;
    }

    /// Prepends the recompute recipes of evicted graph inputs to the
    /// recorded ops: a referenced tensor left with no valid copy on either
    /// side (dropped under MRAM pressure) is re-derived DTR-style as extra
    /// ops of the same run, so eviction stays transparent to compile and
    /// replay. Allocation-free when nothing was dropped.
    fn remat_evicted_inputs(&mut self) {
        let mut injected: Vec<OpNode> = Vec::new();
        for oi in 0..self.ops.len() {
            let op = self.ops[oi];
            for &inp in op.inputs() {
                let s = &self.slots[inp as usize];
                if s.host_valid
                    || s.device_valid
                    || self.ops.iter().any(|o| o.output == inp)
                    || injected.iter().any(|r| r.output == inp)
                {
                    continue;
                }
                let recipe = s
                    .recipe
                    .expect("tensor has no valid copy and no recompute recipe");
                for (i, &rin) in recipe.inputs().iter().enumerate() {
                    let rs = &self.slots[rin as usize];
                    assert!(
                        rs.gen == s.recipe_gens[i] && rs.host_valid,
                        "recompute recipe input went stale"
                    );
                }
                self.res_counters.remat_ops += 1;
                injected.push(recipe);
            }
        }
        if !injected.is_empty() {
            injected.extend_from_slice(&self.ops);
            self.ops = injected;
        }
    }

    /// Rematerializes one evicted tensor by running its recorded recipe as
    /// a one-op graph; the pending recorded graph is saved and restored
    /// around the injected run.
    fn remat_slot(&mut self, id: u32) {
        let recipe = self.slots[id as usize]
            .recipe
            .expect("tensor has no valid copy; run() the graph that produces it first");
        let saved_ops = std::mem::take(&mut self.ops);
        let saved_discarded = std::mem::take(&mut self.discarded);
        self.ops.push(recipe);
        self.res_counters.remat_ops += 1;
        self.in_remat = true;
        let outcome = self.run();
        self.in_remat = false;
        outcome.expect("rematerialization run failed");
        self.ops = saved_ops;
        self.discarded = saved_discarded;
    }

    /// Recomputes every evicted tensor whose (current) recipe reads `id`,
    /// before that tensor's contents change under it. Scanning is
    /// allocation-free when nothing was evicted.
    fn remat_dependents_of(&mut self, id: u32) {
        loop {
            let dep = self.slots.iter().position(|s| {
                !s.host_valid
                    && !s.device_valid
                    && s.recipe.is_some_and(|r| {
                        r.inputs().contains(&id)
                            && r.inputs()
                                .iter()
                                .enumerate()
                                .all(|(i, &inp)| self.slots[inp as usize].gen == s.recipe_gens[i])
                    })
            });
            let Some(dep) = dep else { break };
            self.remat_slot(dep as u32);
            // The recipe reads the tensor about to be overwritten, so it
            // dies here: a later eviction of this value must spill it, not
            // drop it (guaranteeing this loop visits each dependent once).
            self.slots[dep].recipe = None;
        }
    }

    fn ensure_buf(&mut self, slot: u32, key: BufKey) -> Result<u32, ShardError> {
        let dpus = self.backend.num_dpus();
        ensure_buf_in(
            &mut self.backend,
            &mut self.slots,
            &self.live_temps,
            slot,
            key,
            self.run_token,
            &mut self.res_counters,
            dpus,
        )
    }

    /// `ensure_buf` for the compile path: an MRAM-exhausted allocation
    /// aborts the half-built plan (recycling its output slots) before the
    /// typed error surfaces, so a failed compile neither leaks slots nor
    /// leaves a replayable half-plan.
    fn ensure_buf_compile(
        &mut self,
        idx: usize,
        slot: u32,
        key: BufKey,
    ) -> Result<u32, ShardError> {
        match self.ensure_buf(slot, key) {
            Ok(buf) => Ok(buf),
            Err(e) => {
                self.abort_compile(idx);
                Err(e)
            }
        }
    }

    /// Marks every physical slot bound by the canonicalized graph as part
    /// of the in-flight run: it cannot be an eviction victim (plan commands
    /// may already hold its buffer ids) and its LRU recency is refreshed.
    fn protect_bound_slots(&mut self) {
        let token = self.run_token;
        let Session {
            binding_scratch,
            slots,
            ..
        } = self;
        for &phys in binding_scratch.iter() {
            let s = &mut slots[phys as usize];
            s.protected = token;
            s.last_use = token;
        }
    }

    /// Discards a failed compilation: the graph's output slots are recycled
    /// (their handles go stale — the outputs never materialised) and the
    /// cache entry is cleared (stamp zero, so the LRU reuses it first),
    /// so retrying under a fixed policy neither leaks slots nor replays a
    /// half-built plan. Device buffers already allocated stay attached to
    /// the recycled slots and are reused by their next tenants, exactly
    /// like normal recycling.
    fn abort_compile(&mut self, idx: usize) {
        let failed = std::mem::take(&mut self.compiled[idx]);
        for op in &failed.canon_src {
            let phys = failed.binding[op.output as usize];
            let slot = &mut self.slots[phys as usize];
            slot.gen = slot.gen.wrapping_add(1);
            slot.host_valid = false;
            slot.device_valid = false;
            slot.resident = None;
            self.free.push_back(phys);
        }
    }

    /// Runs the recorded (canonical) graph through the `cinm-ir` pass
    /// pipeline: CSE + DCE first, then a placement simulation that marks
    /// segment-placed element-wise ops fusable, then the element-wise
    /// fusion patterns. Returns the post-optimization canonical ops (fused
    /// groups flattened to one node per stage), the lowering schedule, and
    /// the canonical slots of eliminated source outputs — or `None` to fall
    /// back to the identity schedule (unsupported graphs, planner errors —
    /// those resurface identically through the plain path).
    fn optimize(
        &mut self,
        canon: &[OpNode],
        discards: &[bool],
        binding: &[u32],
    ) -> Option<(Vec<OpNode>, Vec<SchedItem>, Vec<u32>)> {
        if canon.is_empty() {
            return None;
        }
        let dpus = self.backend.num_dpus();
        let n_cslots = binding.len();
        let mut is_output = vec![false; n_cslots];
        for op in canon {
            is_output[op.output as usize] = true;
        }
        let arg_cslots: Vec<u32> = (0..n_cslots as u32)
            .filter(|&c| !is_output[c as usize])
            .collect();
        let arg_types: Vec<Type> = arg_cslots
            .iter()
            .map(|&c| {
                let len = self.slots[binding[c as usize] as usize]
                    .shape
                    .map_or(1, |s| s.len());
                Type::tensor(&[len as i64], ScalarType::I32)
            })
            .collect();
        let mut func = Func::new("session_graph", arg_types, vec![]);
        let args = func.arguments();
        let entry = func.body.entry_block();
        let mut val_of: Vec<Option<ValueId>> = vec![None; n_cslots];
        for (i, &c) in arg_cslots.iter().enumerate() {
            val_of[c as usize] = Some(args[i]);
        }
        {
            let mut b = OpBuilder::at_end(&mut func.body, entry);
            for (oi, op) in canon.iter().enumerate() {
                let mut spec = OpSpec::new(ir_name(&op.kind))
                    .attr("kind", Attribute::IntArray(encode_kind(&op.kind).to_vec()))
                    .attr(fusion::ATTR_TAG, Attribute::Int(op.output as i64))
                    .result(Type::tensor(&[op.kind.out_len() as i64], ScalarType::I32));
                if !discards[oi] {
                    spec = spec.attr(fusion::ATTR_LIVE_OUT, Attribute::Int(1));
                }
                for &inp in op.inputs() {
                    spec = spec.operand(val_of[inp as usize]?);
                }
                let built = b.push(spec);
                val_of[op.output as usize] = Some(built.result());
            }
        }
        let mut module = Module::new("session");
        let fi = module.add_func(func);

        // Pass 1: structural cleanup. Duplicates whose output the user
        // observes survive CSE (their uses are rewired); discarded ones and
        // dead chains are erased.
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(PatternRewritePass::new(
            "cse",
            vec![Box::new(CsePattern::new())],
        )));
        pm.add_pass(Box::new(DcePass));
        pm.run(&mut module).ok()?;

        // Placement simulation: mirror `compile`'s placement decisions over
        // the cleaned graph and mark every segment-placed element-wise op
        // as fusion-eligible at its placement.
        let chain_ok = matches!(
            self.planner.planner().policy,
            ShardPolicy::Auto | ShardPolicy::Single(Target::Cnm)
        ) && self.backend.device(ShardDevice::Cnm).is_healthy();
        let mut cslot_of: HashMap<ValueId, u32> = HashMap::new();
        for (i, &c) in arg_cslots.iter().enumerate() {
            cslot_of.insert(args[i], c);
        }
        {
            let func = &mut module.funcs[fi];
            let entry = func.body.entry_block();
            let mut virt: Vec<(bool, Option<(usize, ResidentLayout)>)> = binding
                .iter()
                .map(|&p| {
                    let s = &self.slots[p as usize];
                    (
                        s.host_valid,
                        s.device_valid
                            .then_some(s.resident)
                            .flatten()
                            .map(|r| (r.gather_chunk, r.layout)),
                    )
                })
                .collect();
            let op_ids: Vec<cinm_ir::OpId> = func.body.block_ops(entry).to_vec();
            for id in op_ids {
                let (kind, tag, in_cslots) = {
                    let o = func.body.op(id);
                    let kind = decode_kind(o.int_array_attr("kind")?)?;
                    let tag = o.int_attr(fusion::ATTR_TAG)? as u32;
                    let ins: Option<Vec<u32>> = o
                        .operands
                        .iter()
                        .map(|v| cslot_of.get(v).copied())
                        .collect();
                    (kind, tag, ins?)
                };
                cslot_of.insert(func.body.result(id, 0), tag);
                let mut node = OpNode {
                    kind,
                    inputs: [0u32; 3],
                    n_inputs: in_cslots.len() as u8,
                    output: tag,
                };
                for (i, &c) in in_cslots.iter().enumerate() {
                    node.inputs[i] = c;
                }
                let geometry = cnm_geometry(&node, dpus);
                let resident_chain =
                    chain_ok
                        && node.inputs().iter().enumerate().any(|(pos, &t)| {
                            virt_key_match(virt[t as usize].1, geometry.inputs[pos])
                        });
                let planned = if node.kind.plannable_name().is_none() || resident_chain {
                    false
                } else {
                    let split = self
                        .planner
                        .split_for(node.kind.plannable_name()?, node.kind.shard_shape()?)
                        .ok()?;
                    split.cnm != split.total()
                };
                if planned {
                    for &inp in node.inputs() {
                        virt[inp as usize].0 = true;
                    }
                    virt[node.output as usize] = (true, None);
                } else {
                    if let OpKindNode::Elementwise { op, len } = node.kind {
                        let o = func.body.op_mut(id);
                        o.attrs
                            .insert(fusion::ATTR_ELIGIBLE.to_string(), Attribute::Int(1));
                        o.attrs.insert(
                            fusion::ATTR_CODE.to_string(),
                            Attribute::Int(binop_code(op)),
                        );
                        o.attrs
                            .insert(fusion::ATTR_LEN.to_string(), Attribute::Int(len as i64));
                    }
                    for (pos, &inp) in node.inputs().iter().enumerate() {
                        let key = geometry.inputs[pos];
                        if virt_key_match(virt[inp as usize].1, key) {
                            continue;
                        }
                        virt[inp as usize].0 = true;
                        virt[inp as usize].1 = Some(match key {
                            BufKey::Chunk(c) => (c, ResidentLayout::Chunked),
                            BufKey::Broadcast(l) => (l, ResidentLayout::Replicated),
                        });
                    }
                    virt[node.output as usize] =
                        (false, Some((geometry.out_chunk, geometry.out_layout)));
                }
            }
        }

        // Pass 2: element-wise fusion over the annotated graph.
        let mut pm2 = PassManager::new();
        pm2.add_pass(Box::new(PatternRewritePass::new(
            "fuse-elementwise",
            vec![
                Box::new(ElementwiseChainFusion),
                Box::new(ElementwiseRootMerge),
            ],
        )));
        pm2.run(&mut module).ok()?;

        // Extraction: read the optimized block back into canonical nodes
        // and a lowering schedule.
        let func = &module.funcs[fi];
        let entry = func.body.entry_block();
        let mut ops: Vec<OpNode> = Vec::new();
        let mut sched: Vec<SchedItem> = Vec::new();
        let mut survives = vec![false; n_cslots];
        let mut fused_groups = 0u64;
        let mut ops_fused = 0u64;
        for &id in func.body.block_ops(entry) {
            let o = func.body.op(id);
            if o.name == fusion::FUSED_OP {
                let flat = o.int_array_attr(fusion::ATTR_STAGES)?;
                let tags = o.int_array_attr(fusion::ATTR_TAGS)?.to_vec();
                let len = o.int_attr(fusion::ATTR_LEN)? as usize;
                let externals: Option<Vec<u32>> = o
                    .operands
                    .iter()
                    .map(|v| cslot_of.get(v).copied())
                    .collect();
                let externals = externals?;
                let start = ops.len();
                let mut stages: Vec<FusedStage> = Vec::with_capacity(tags.len());
                for (s, words) in flat.chunks(fusion::STAGE_WORDS).enumerate() {
                    let op = binop_from_code(words[0])?;
                    let resolve = |kind: i64, v: i64| -> Option<(FusedArg, u32)> {
                        if kind == fusion::ARG_INPUT {
                            Some((FusedArg::Input(v as u8), *externals.get(v as usize)?))
                        } else {
                            Some((FusedArg::Stage(v as u8), *tags.get(v as usize)? as u32))
                        }
                    };
                    let (lhs, lc) = resolve(words[1], words[2])?;
                    let (rhs, rc) = resolve(words[3], words[4])?;
                    let out_c = *tags.get(s)? as u32;
                    ops.push(OpNode {
                        kind: OpKindNode::Elementwise { op, len },
                        inputs: [lc, rc, 0],
                        n_inputs: 2,
                        output: out_c,
                    });
                    stages.push(FusedStage { op, lhs, rhs });
                    survives[out_c as usize] = true;
                }
                for (s, &t) in tags.iter().enumerate() {
                    cslot_of.insert(func.body.result(id, s), t as u32);
                }
                ops_fused += stages.len() as u64;
                fused_groups += 1;
                sched.push(SchedItem::Fused {
                    ops: start..ops.len(),
                    stages,
                    externals,
                    len,
                });
            } else {
                let kind = decode_kind(o.int_array_attr("kind")?)?;
                let tag = o.int_attr(fusion::ATTR_TAG)? as u32;
                let ins: Option<Vec<u32>> = o
                    .operands
                    .iter()
                    .map(|v| cslot_of.get(v).copied())
                    .collect();
                let ins = ins?;
                cslot_of.insert(func.body.result(id, 0), tag);
                let mut node = OpNode {
                    kind,
                    inputs: [0u32; 3],
                    n_inputs: ins.len() as u8,
                    output: tag,
                };
                for (i, &c) in ins.iter().enumerate() {
                    node.inputs[i] = c;
                }
                survives[tag as usize] = true;
                sched.push(SchedItem::Plain(ops.len()));
                ops.push(node);
            }
        }
        let eliminated: Vec<u32> = canon
            .iter()
            .filter(|op| !survives[op.output as usize])
            .map(|op| op.output)
            .collect();
        self.opt_stats.graphs_optimized += 1;
        self.opt_stats.ops_eliminated += eliminated.len() as u64;
        self.opt_stats.fused_groups += fused_groups;
        self.opt_stats.ops_fused += ops_fused;
        self.opt_stats.launches_saved += ops_fused.saturating_sub(fused_groups);
        Some((ops, sched, eliminated))
    }

    /// Compiles the recorded graph into a fresh LRU cache entry (placement,
    /// optimization, buffers, per-segment command lists). No command is
    /// executed here; buffer allocation is the only device side effect
    /// (untimed, like the eager backends' context allocation).
    fn compile(&mut self) -> Result<usize, ShardError> {
        let dpus = self.backend.num_dpus();
        let residency = self.residency;
        self.canonicalize();
        self.protect_bound_slots();
        let canon_src = self.canon_scratch.clone();
        let discards = self.discard_scratch.clone();
        let binding = self.binding_scratch.clone();
        let sig = self.sig_scratch;
        self.ops.clear();
        self.discarded.clear();

        let optimized = if self.optimizer && residency {
            self.optimize(&canon_src, &discards, &binding)
        } else {
            None
        };
        let (ops, sched, eliminated) = match optimized {
            Some(result) => result,
            None => (
                canon_src.clone(),
                (0..canon_src.len()).map(SchedItem::Plain).collect(),
                Vec::new(),
            ),
        };

        // LRU entry selection: evict the least recently used plan (aborted
        // entries carry stamp zero and are reused first).
        let idx = if self.compiled.len() < Self::COMPILED_CACHE {
            self.compiled.push(Compiled::default());
            self.compiled.len() - 1
        } else {
            let (idx, was_valid) = self
                .compiled
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.stamp)
                .map(|(i, c)| (i, c.valid))
                .expect("plan cache is non-empty");
            if was_valid {
                self.cache_evictions += 1;
            }
            idx
        };
        self.stamp_counter += 1;
        self.compiled[idx] = Compiled {
            valid: false,
            residency,
            sig,
            stamp: self.stamp_counter,
            canon_src,
            discards,
            ops,
            eliminated,
            binding: binding.clone(),
            preconds: Vec::new(),
            steps: Vec::new(),
            cmds: Vec::new(),
        };
        // Virtual per-canonical-slot state evolved during compilation (the
        // actual slots are only updated at execution time).
        let mut virt: Vec<(bool, Option<Resident>)> = binding
            .iter()
            .map(|&p| {
                let s = &self.slots[p as usize];
                (s.host_valid, s.device_valid.then_some(s.resident).flatten())
            })
            .collect();
        let mut produced = vec![false; binding.len()];
        let mut precond_done = vec![false; binding.len()];
        let mut seg_start = 0usize;
        let mut host_written_in_seg: Vec<u32> = Vec::new();

        macro_rules! flush_segment {
            ($self:ident, $idx:ident, $seg_start:ident, $hw:ident) => {
                let end = $self.compiled[$idx].cmds.len();
                if end > $seg_start {
                    $self.compiled[$idx].steps.push(Step::Segment {
                        cmds: $seg_start..end,
                    });
                }
                $seg_start = end;
                $hw.clear();
            };
        }

        // Records the replay precondition of an external input (a canonical
        // slot not produced earlier in the schedule) at its first use.
        macro_rules! note_external {
            ($self:ident, $idx:ident, $c:expr) => {
                let c = $c;
                if !produced[c as usize] && !precond_done[c as usize] {
                    precond_done[c as usize] = true;
                    let slot = &$self.slots[binding[c as usize] as usize];
                    let resident = slot
                        .device_valid
                        .then_some(slot.resident)
                        .flatten()
                        .map(|r| (r.gather_chunk, r.layout));
                    $self.compiled[$idx].preconds.push(Precond {
                        cslot: c,
                        host_valid: slot.host_valid,
                        resident,
                    });
                }
            };
        }

        for item in &sched {
            match item {
                SchedItem::Plain(oi) => {
                    let node = self.compiled[idx].ops[*oi];
                    for &inp in node.inputs() {
                        note_external!(self, idx, inp);
                    }
                    let geometry = cnm_geometry(&node, dpus);
                    // Placement: residency-first for chains, otherwise the
                    // planner.
                    let resident_chain = residency
                        && matches!(
                            self.planner.planner().policy,
                            ShardPolicy::Auto | ShardPolicy::Single(Target::Cnm)
                        )
                        // Plans built after a grid failure must not route
                        // chains back onto the unhealthy device.
                        && self.backend.device(ShardDevice::Cnm).is_healthy()
                        && node.inputs().iter().enumerate().any(|(pos, &t)| {
                            resident_buf(&virt[t as usize].1, geometry.inputs[pos]).is_some()
                        });
                    let placement = if node.kind.plannable_name().is_none() || resident_chain {
                        None // UPMEM segment
                    } else {
                        let name = node.kind.plannable_name().unwrap();
                        let shape = node.kind.shard_shape().unwrap();
                        let split = match self.planner.split_for(name, shape) {
                            Ok(split) => split,
                            Err(e) => {
                                self.abort_compile(idx);
                                return Err(e);
                            }
                        };
                        if split.cnm == split.total() {
                            None // single-device CNM: the resident segment path
                        } else {
                            Some(split)
                        }
                    };

                    match placement {
                        Some(split) => {
                            flush_segment!(self, idx, seg_start, host_written_in_seg);
                            for &inp in node.inputs() {
                                if !virt[inp as usize].0 {
                                    self.compiled[idx].steps.push(Step::Materialize {
                                        cslot: inp,
                                        slot: binding[inp as usize],
                                    });
                                    virt[inp as usize].0 = true;
                                }
                            }
                            self.compiled[idx]
                                .steps
                                .push(Step::Planned { op: *oi, split });
                            virt[node.output as usize] = (true, None);
                            produced[node.output as usize] = true;
                        }
                        None => {
                            // UPMEM segment op.
                            let mut input_bufs: Vec<u32> = Vec::with_capacity(node.inputs().len());
                            for (pos, &inp) in node.inputs().iter().enumerate() {
                                let key = geometry.inputs[pos];
                                if let Some(buf) = resident_buf(&virt[inp as usize].1, key) {
                                    input_bufs.push(buf);
                                    continue;
                                }
                                if !virt[inp as usize].0 {
                                    // Host copy needed but the tensor is
                                    // resident in an incompatible layout:
                                    // materialize first.
                                    flush_segment!(self, idx, seg_start, host_written_in_seg);
                                    self.compiled[idx].steps.push(Step::Materialize {
                                        cslot: inp,
                                        slot: binding[inp as usize],
                                    });
                                    virt[inp as usize].0 = true;
                                }
                                if host_written_in_seg.contains(&inp) {
                                    // The payload is produced by a decode
                                    // earlier in this segment: a stream would
                                    // record a stale borrow, so cut the
                                    // segment here.
                                    flush_segment!(self, idx, seg_start, host_written_in_seg);
                                }
                                let phys = binding[inp as usize];
                                let buf = self.ensure_buf_compile(idx, phys, key)?;
                                match key {
                                    BufKey::Chunk(c) => {
                                        self.compiled[idx].cmds.push(CnmCmd::Scatter {
                                            cslot: inp,
                                            slot: phys,
                                            buf,
                                            chunk: c,
                                        });
                                        virt[inp as usize].1 = residency.then_some(Resident {
                                            buf,
                                            gather_chunk: c,
                                            layout: ResidentLayout::Chunked,
                                        });
                                    }
                                    BufKey::Broadcast(l) => {
                                        self.compiled[idx].cmds.push(CnmCmd::Broadcast {
                                            cslot: inp,
                                            slot: phys,
                                            buf,
                                            len: l,
                                        });
                                        virt[inp as usize].1 = residency.then_some(Resident {
                                            buf,
                                            gather_chunk: l,
                                            layout: ResidentLayout::Replicated,
                                        });
                                    }
                                }
                                input_bufs.push(buf);
                            }
                            let out = node.output;
                            let out_phys = binding[out as usize];
                            let out_key = BufKey::Chunk(geometry.out_chunk);
                            let out_buf = self.ensure_buf_compile(idx, out_phys, out_key)?;
                            self.compiled[idx].cmds.push(CnmCmd::Zero {
                                cslot: out,
                                key: out_key,
                                buf: out_buf,
                            });
                            let mut args: Vec<LaunchBind> =
                                Vec::with_capacity(node.inputs().len() + 1);
                            for (pos, &inp) in node.inputs().iter().enumerate() {
                                args.push(LaunchBind {
                                    role: LaunchRole::Input(pos as u8),
                                    cslot: inp,
                                    key: geometry.inputs[pos],
                                });
                            }
                            args.push(LaunchBind {
                                role: LaunchRole::Output,
                                cslot: out,
                                key: out_key,
                            });
                            let spec = self.backend.upmem().kernel_spec(
                                geometry.kernel.clone(),
                                input_bufs,
                                out_buf,
                            );
                            self.compiled[idx].cmds.push(CnmCmd::Launch { spec, args });
                            let resident = Resident {
                                buf: out_buf,
                                gather_chunk: geometry.out_chunk,
                                layout: geometry.out_layout,
                            };
                            self.compiled[idx].cmds.push(CnmCmd::SetOutput {
                                cslot: out,
                                slot: out_phys,
                                resident,
                            });
                            virt[out as usize] = (false, residency.then_some(resident));
                            produced[out as usize] = true;
                            if !residency {
                                // Mirror the eager program: gather and decode
                                // every op output immediately.
                                self.compiled[idx].cmds.push(CnmCmd::Gather {
                                    cslot: out,
                                    slot: out_phys,
                                    buf: out_buf,
                                    chunk: geometry.out_chunk,
                                });
                                self.compiled[idx].cmds.push(CnmCmd::Decode {
                                    cslot: out,
                                    slot: out_phys,
                                });
                                virt[out as usize].0 = true;
                                host_written_in_seg.push(out);
                            }
                        }
                    }
                }
                SchedItem::Fused {
                    ops,
                    stages,
                    externals,
                    len,
                } => {
                    // One multi-output fused element-wise kernel launch in
                    // the current segment. Only emitted with residency on.
                    let c = len.div_ceil(dpus).max(1);
                    let key = BufKey::Chunk(c);
                    let mut input_bufs: Vec<u32> = Vec::with_capacity(externals.len());
                    for &inp in externals {
                        note_external!(self, idx, inp);
                        if let Some(buf) = resident_buf(&virt[inp as usize].1, key) {
                            input_bufs.push(buf);
                            continue;
                        }
                        if !virt[inp as usize].0 {
                            flush_segment!(self, idx, seg_start, host_written_in_seg);
                            self.compiled[idx].steps.push(Step::Materialize {
                                cslot: inp,
                                slot: binding[inp as usize],
                            });
                            virt[inp as usize].0 = true;
                        }
                        if host_written_in_seg.contains(&inp) {
                            flush_segment!(self, idx, seg_start, host_written_in_seg);
                        }
                        let phys = binding[inp as usize];
                        let buf = self.ensure_buf_compile(idx, phys, key)?;
                        self.compiled[idx].cmds.push(CnmCmd::Scatter {
                            cslot: inp,
                            slot: phys,
                            buf,
                            chunk: c,
                        });
                        virt[inp as usize].1 = Some(Resident {
                            buf,
                            gather_chunk: c,
                            layout: ResidentLayout::Chunked,
                        });
                        input_bufs.push(buf);
                    }
                    let stage_outs: Vec<u32> = self.compiled[idx].ops[ops.clone()]
                        .iter()
                        .map(|o| o.output)
                        .collect();
                    let mut out_bufs: Vec<u32> = Vec::with_capacity(stage_outs.len());
                    for &out_c in &stage_outs {
                        let phys = binding[out_c as usize];
                        let buf = self.ensure_buf_compile(idx, phys, key)?;
                        self.compiled[idx].cmds.push(CnmCmd::Zero {
                            cslot: out_c,
                            key,
                            buf,
                        });
                        out_bufs.push(buf);
                    }
                    let kind = DpuKernelKind::FusedElementwise {
                        stages: stages.clone(),
                        len: c,
                        arity: externals.len(),
                    };
                    let spec = self
                        .backend
                        .upmem()
                        .kernel_spec(kind, input_bufs, out_bufs[0])
                        .with_extra_outputs(out_bufs[1..].to_vec());
                    let mut args: Vec<LaunchBind> =
                        Vec::with_capacity(externals.len() + stage_outs.len());
                    for (pos, &inp) in externals.iter().enumerate() {
                        args.push(LaunchBind {
                            role: LaunchRole::Input(pos as u8),
                            cslot: inp,
                            key,
                        });
                    }
                    args.push(LaunchBind {
                        role: LaunchRole::Output,
                        cslot: stage_outs[0],
                        key,
                    });
                    for (j, &out_c) in stage_outs[1..].iter().enumerate() {
                        args.push(LaunchBind {
                            role: LaunchRole::Extra(j as u8),
                            cslot: out_c,
                            key,
                        });
                    }
                    self.compiled[idx].cmds.push(CnmCmd::Launch { spec, args });
                    for (&out_c, &buf) in stage_outs.iter().zip(&out_bufs) {
                        let resident = Resident {
                            buf,
                            gather_chunk: c,
                            layout: ResidentLayout::Chunked,
                        };
                        self.compiled[idx].cmds.push(CnmCmd::SetOutput {
                            cslot: out_c,
                            slot: binding[out_c as usize],
                            resident,
                        });
                        virt[out_c as usize] = (false, Some(resident));
                        produced[out_c as usize] = true;
                    }
                }
            }
        }
        flush_segment!(self, idx, seg_start, host_written_in_seg);
        let _ = seg_start; // the final flush leaves the cursor at the end
        self.compiled[idx].valid = true;
        Ok(idx)
    }

    // -- execution ----------------------------------------------------------

    /// Executes the recorded graph: compiles it (or replays the memoized
    /// compilation when the graph and its residency preconditions are
    /// unchanged) and runs every step in program order. After `run`,
    /// op-output handles are fetchable until the next `run`.
    ///
    /// Device failures are recovered in place (up to
    /// 8 attempts per run):
    /// transient storms re-execute from the failed step, a permanently
    /// failed device is either dropped from the shard plan (the graph is
    /// re-planned across the surviving devices, degrading to host-only) or
    /// — when the graph needs the UPMEM grid itself — replaced by a spare
    /// carrying the rescued memory image. Recovered runs stay bit-identical
    /// to a fault-free run; [`fault_stats`](Self::fault_stats) counts the
    /// retries, re-plans and degradations taken.
    ///
    /// # Errors
    ///
    /// Propagates shard-planning errors (infeasible forced policies) and
    /// device failures that outlive the recovery budget; the recorded graph
    /// is discarded and the session stays usable.
    pub fn run(&mut self) -> Result<(), ShardError> {
        if self.ops.is_empty() {
            self.discarded.clear();
            return Ok(());
        }
        if self.planner_feedback_dirty {
            // Calibration moved the planner's estimates past the
            // significance threshold: compiled plans embed splits of the
            // stale model, so they all go.
            self.planner_feedback_dirty = false;
            self.compiled.clear();
        }
        self.run_token += 1;
        self.remat_evicted_inputs();
        if !self.in_remat {
            // A rematerialization run must not recycle temps that only the
            // caller's saved (pending) graph references.
            self.recycle_unreferenced_temps();
        }
        self.canonicalize();
        self.protect_bound_slots();
        let (mut idx, mut replay) = match self.find_compiled() {
            Some(idx) => {
                self.replays += 1;
                self.cache_hits += 1;
                self.ops.clear();
                self.discarded.clear();
                self.stamp_counter += 1;
                let Session {
                    compiled,
                    binding_scratch,
                    stamp_counter,
                    ..
                } = self;
                let entry = &mut compiled[idx];
                entry.stamp = *stamp_counter;
                entry.binding.clear();
                entry.binding.extend_from_slice(binding_scratch);
                // An eviction during the rebind invalidates bindings, never
                // the signature: buffer ids are always re-derived on the
                // next replay, so the entry stays cached.
                self.rebind(idx)?;
                (idx, true)
            }
            None => {
                self.cache_misses += 1;
                match self.compile() {
                    Ok(idx) => (idx, false),
                    Err(e) => {
                        self.ops.clear();
                        self.discarded.clear();
                        return Err(e);
                    }
                }
            }
        };
        self.runs += 1;
        let mut from = 0usize;
        let mut attempts = 0u32;
        let mut feedback_dirty = false;
        let outcome = loop {
            match self.execute(idx, replay, from, &mut feedback_dirty) {
                Ok(()) => break Ok(()),
                Err((step, error)) => {
                    // Panics and validation errors are bugs, not faults: no
                    // amount of re-planning makes them succeed.
                    let recoverable = matches!(error, ShardError::DeviceFault { .. })
                        && attempts < Self::MAX_RECOVERY_ATTEMPTS;
                    if !recoverable {
                        break Err(error);
                    }
                    attempts += 1;
                    let device = error
                        .failed_device()
                        .expect("device faults name their device");
                    match self.recover(device, idx) {
                        Ok(Recovery::Resume) => {
                            // The device set is whole again (the transient
                            // storm passed, or a spare was swapped in):
                            // re-execute from the failed step — every step
                            // before it committed, and failed steps commit
                            // nothing.
                            from = step;
                            replay = true;
                        }
                        Ok(Recovery::Replanned(new_idx)) => {
                            idx = new_idx;
                            from = 0;
                            replay = false;
                        }
                        Err(e) => break Err(e),
                    }
                }
            }
        };
        if feedback_dirty {
            // Invalidation is deferred to the next run(): the plan that just
            // executed stays replayable for this graph shape, and the next
            // compile sees the recalibrated estimates.
            self.planner_feedback_dirty = true;
        }
        // Track this graph's surviving outputs as live temporaries (unless a
        // failed re-plan already discarded the graph and recycled them).
        // Discarded survivors and optimizer-eliminated outputs are recycled
        // immediately — their handles go stale by contract.
        if idx < self.compiled.len() {
            for oi in 0..self.compiled[idx].ops.len() {
                let c = &self.compiled[idx];
                let out_c = c.ops[oi].output;
                let phys = c.binding[out_c as usize];
                let discarded = c
                    .canon_src
                    .iter()
                    .zip(&c.discards)
                    .any(|(o, &d)| d && o.output == out_c);
                let mut recipe = c.ops[oi];
                for i in 0..recipe.n_inputs as usize {
                    recipe.inputs[i] = c.binding[recipe.inputs[i] as usize];
                }
                recipe.output = phys;
                if discarded && !self.slots[phys as usize].pinned {
                    let slot = &mut self.slots[phys as usize];
                    slot.gen = slot.gen.wrapping_add(1);
                    slot.host_valid = false;
                    slot.device_valid = false;
                    slot.resident = None;
                    self.free.push_back(phys);
                } else {
                    if !self.live_temps.contains(&phys) {
                        self.live_temps.push(phys);
                    }
                    // Record the DTR recompute recipe — the producing op
                    // with physical input slots, their generations pinned —
                    // so a drop under MRAM pressure can re-derive the value.
                    let mut gens = [0u32; 3];
                    for (i, &inp) in recipe.inputs().iter().enumerate() {
                        gens[i] = self.slots[inp as usize].gen;
                    }
                    let slot = &mut self.slots[phys as usize];
                    slot.recipe = Some(recipe);
                    slot.recipe_gens = gens;
                    slot.last_use = self.run_token;
                }
            }
            for k in 0..self.compiled[idx].eliminated.len() {
                let c = self.compiled[idx].eliminated[k];
                let phys = self.compiled[idx].binding[c as usize];
                if self.slots[phys as usize].pinned {
                    continue;
                }
                let slot = &mut self.slots[phys as usize];
                slot.gen = slot.gen.wrapping_add(1);
                slot.host_valid = false;
                slot.device_valid = false;
                slot.resident = None;
                self.free.push_back(phys);
            }
        }
        self.publish_telemetry();
        outcome
    }

    /// Publishes the session's gauges to the attached registry (no-op
    /// without one). Pure atomic stores on pre-registered series — no
    /// allocations, no locks.
    fn publish_telemetry(&self) {
        let Some(t) = &self.tele else { return };
        t.runs.set(self.runs as f64);
        t.replays.set(self.replays as f64);
        t.plan_cache_hits.set(self.cache_hits as f64);
        t.plan_cache_misses.set(self.cache_misses as f64);
        t.plan_cache_evictions.set(self.cache_evictions as f64);
        t.plan_cache_entries
            .set(self.compiled.iter().filter(|c| c.valid).count() as f64);
        let lookups = self.cache_hits + self.cache_misses;
        t.plan_cache_hit_rate.set(if lookups > 0 {
            self.cache_hits as f64 / lookups as f64
        } else {
            0.0
        });
        t.res_evictions.set(self.res_counters.evictions as f64);
        t.res_spills.set(self.res_counters.spills as f64);
        t.res_spilled_bytes
            .set(self.res_counters.spilled_bytes as f64);
        t.res_remat_ops.set(self.res_counters.remat_ops as f64);
        t.fault_retries
            .set(self.fault_stats().transient_retries as f64);
    }

    /// Executes the compiled plan `idx` from step `from`; a failure reports
    /// the step it happened in so recovery can resume there. Planned steps
    /// feed their measured per-device times back into the shard
    /// calibrator; `dirty` is set when calibration moved an estimate enough
    /// that the compiled plans should be rebuilt.
    fn execute(
        &mut self,
        idx: usize,
        replay: bool,
        from: usize,
        dirty: &mut bool,
    ) -> Result<(), (usize, ShardError)> {
        let residency = self.residency;
        let dpus = self.backend.num_dpus();
        let Session {
            backend,
            slots,
            compiled,
            planner,
            ..
        } = self;
        let compiled = &compiled[idx];
        for (si, step) in compiled.steps.iter().enumerate().skip(from) {
            let step_result = match step {
                Step::Materialize { slot, .. } => {
                    materialize_slot(backend, &mut slots[*slot as usize], dpus)
                }
                Step::Segment { cmds } => {
                    let cmds = &compiled.cmds[cmds.clone()];
                    if replay {
                        run_segment_direct(backend, slots, cmds, residency, dpus)
                    } else {
                        run_segment_stream(backend, slots, cmds, residency, dpus)
                    }
                }
                Step::Planned { op, split } => {
                    let node = &compiled.ops[*op];
                    let before = backend.stats().sim_seconds;
                    let result = run_planned(backend, slots, &compiled.binding, node, split);
                    if result.is_ok() {
                        if let (Some(name), Some(shape)) =
                            (node.kind.plannable_name(), node.kind.shard_shape())
                        {
                            let after = backend.stats().sim_seconds;
                            let measured = [
                                after[0] - before[0],
                                after[1] - before[1],
                                after[2] - before[2],
                            ];
                            *dirty |= planner.feedback(name, shape, measured);
                        }
                    }
                    result
                }
            };
            if let Err(e) = step_result {
                return Err((si, e));
            }
        }
        Ok(())
    }

    /// Recovers from one device failure. The failed step committed nothing
    /// (streams validate every command before executing any, single
    /// commands are transactional, and shard dispatch discards partial
    /// merges), so the slots hold the state of the last completed step and
    /// re-execution is safe — external inputs keep their host copies, and
    /// every transfer/launch rewrites its own buffers with the same data.
    fn recover(&mut self, device: ShardDevice, idx: usize) -> Result<Recovery, ShardError> {
        self.fault_stats.replans += 1;
        if self.backend.device(device).is_healthy() {
            // A transient fault outlived the per-command retry budget but
            // the device is still below its failure limit: re-execute.
            return Ok(Recovery::Resume);
        }
        // The device is out of service (permanent fault, or a transient
        // storm past the consecutive-failure limit).
        self.fault_stats.degradations += 1;
        if device == ShardDevice::Cnm && self.graph_needs_cnm(idx) {
            // The graph cannot leave the grid (non-plannable ops, or a
            // CNM-forced policy): swap in a spare. The replacement carries
            // the failed grid's memory image — resident tensors survive
            // (the fault model kills compute, not MRAM) — so the compiled
            // plan resumes unchanged.
            let spare = self.backend.upmem().system().fault_free_clone();
            *self.backend.upmem_mut().system_mut() = spare;
            self.backend.device_mut(ShardDevice::Cnm).reset_health();
            return Ok(Recovery::Resume);
        }
        // Re-plan the graph across the surviving devices (degrading to
        // host-only when the host is the last one standing). Compiled plans
        // embed shard splits of the old device set, so all of them go. The
        // surviving (post-optimization) ops are decanonicalized back to
        // physical slots and re-recorded; the doomed entry's eliminated
        // slots are recycled here — the re-plan never produces them.
        self.rebuild_planner();
        let entry = &self.compiled[idx];
        let mut ops: Vec<OpNode> = Vec::with_capacity(entry.ops.len());
        for op in &entry.ops {
            let mut node = *op;
            for i in 0..node.n_inputs as usize {
                node.inputs[i] = entry.binding[node.inputs[i] as usize];
            }
            node.output = entry.binding[node.output as usize];
            ops.push(node);
        }
        let stale: Vec<u32> = entry
            .eliminated
            .iter()
            .map(|&c| entry.binding[c as usize])
            .collect();
        for phys in stale {
            if self.slots[phys as usize].pinned {
                continue;
            }
            let slot = &mut self.slots[phys as usize];
            slot.gen = slot.gen.wrapping_add(1);
            slot.host_valid = false;
            slot.device_valid = false;
            slot.resident = None;
            self.free.push_back(phys);
        }
        self.compiled.clear();
        self.ops = ops;
        self.discarded.clear();
        match self.compile() {
            Ok(new_idx) => Ok(Recovery::Replanned(new_idx)),
            Err(e) => {
                self.ops.clear();
                Err(e)
            }
        }
    }

    /// Whether plan `idx` must execute on the UPMEM grid: it contains ops
    /// outside the plannable subset (their only lowering is the resident
    /// UPMEM segment path), or the placement policy forces CNM work.
    fn graph_needs_cnm(&self, idx: usize) -> bool {
        let forced = match self.planner.planner().policy {
            ShardPolicy::Single(Target::Cnm) => true,
            ShardPolicy::Fractions(f) => f[0] > 0.0,
            _ => false,
        };
        forced
            || self.compiled[idx]
                .ops
                .iter()
                .any(|op| op.kind.plannable_name().is_none())
    }

    /// Rebuilds the shard planner over the devices that are still healthy,
    /// keeping the policy, granularity and accumulated calibration.
    /// Unhealthy devices simply stop being registered, so `Auto` plans
    /// route their work to the survivors.
    fn rebuild_planner(&mut self) {
        let old = self.planner.planner();
        let mut planner = ShardPlanner::new().with_policy(old.policy);
        planner.granularity = old.granularity;
        planner.calibrator = old.calibrator.clone();
        for device in ShardDevice::ALL {
            let d = self.backend.device(device);
            if d.is_healthy() {
                planner.register_device(d);
            }
        }
        self.planner.set_planner(planner);
    }

    // -- results ------------------------------------------------------------

    /// Fetches a tensor to the host, materialising it from its device copy
    /// if needed — **the only point data returns to the host**. For select
    /// outputs the returned vector has the data-dependent actual length.
    pub fn fetch(&mut self, h: TensorHandle) -> Vec<i32> {
        let mut out = Vec::new();
        self.fetch_into(h, &mut out);
        out
    }

    /// The allocation-reusing form of [`Session::fetch`]: the result
    /// replaces the contents of `out` (a vector reused across fetches of the
    /// same shape never re-allocates).
    pub fn fetch_into(&mut self, h: TensorHandle, out: &mut Vec<i32>) {
        self.check(h);
        let dpus = self.backend.num_dpus();
        {
            let slot = &self.slots[h.id as usize];
            if !slot.host_valid && !slot.device_valid && slot.recipe.is_some() {
                // Dropped under MRAM pressure: recompute it from its recipe.
                self.remat_slot(h.id);
            }
        }
        let slot = &mut self.slots[h.id as usize];
        if !slot.host_valid {
            assert!(
                slot.device_valid,
                "tensor has no valid copy; run() the graph that produces it first"
            );
            // Rescue gathers are pure transfers: the fault model never fails
            // them permanently, and transients are retried by the backend.
            materialize_slot(&mut self.backend, slot, dpus)
                .expect("rescue gather outlived the transient retry budget");
        }
        out.clear();
        out.extend_from_slice(&slot.host);
    }

    /// Fetches a scalar tensor (reduction results).
    pub fn fetch_scalar(&mut self, h: TensorHandle) -> i32 {
        assert_eq!(h.shape(), TensorShape::Scalar, "not a scalar tensor");
        self.check(h);
        let dpus = self.backend.num_dpus();
        {
            let slot = &self.slots[h.id as usize];
            if !slot.host_valid && !slot.device_valid && slot.recipe.is_some() {
                self.remat_slot(h.id);
            }
        }
        let slot = &mut self.slots[h.id as usize];
        if !slot.host_valid {
            assert!(slot.device_valid, "tensor has no valid copy");
            materialize_slot(&mut self.backend, slot, dpus)
                .expect("rescue gather outlived the transient retry budget");
        }
        slot.host[0]
    }

    // -- introspection ------------------------------------------------------

    /// Accumulated UPMEM simulator statistics (transfers, kernel time) of
    /// everything this session executed on the grid.
    pub fn upmem_stats(&self) -> &SystemStats {
        self.backend.upmem().stats()
    }

    /// Statistics of the shard-dispatched (multi-device) steps.
    pub fn shard_stats(&self) -> &cinm_lowering::ShardStats {
        self.backend.stats()
    }

    /// Accumulated memory-pressure counters of the residency manager
    /// (evictions, spills and their billed bytes, DTR drops and
    /// rematerialized ops) together with the simulator's per-DPU MRAM
    /// occupancy: current, peak, and the configured limit.
    pub fn residency_stats(&self) -> ResidencyStats {
        let sys = self.backend.upmem().system();
        ResidencyStats {
            evictions: self.res_counters.evictions,
            spills: self.res_counters.spills,
            spilled_bytes: self.res_counters.spilled_bytes,
            remat_drops: self.res_counters.remat_drops,
            remat_ops: self.res_counters.remat_ops,
            peak_mram_bytes: sys.mram_peak_bytes(),
            used_mram_bytes: sys.mram_used_bytes(),
            limit_bytes: sys.config().mram_bytes,
        }
    }

    /// The wrapped device set.
    pub fn backend(&self) -> &ShardedBackend {
        &self.backend
    }

    /// Number of DPUs in the UPMEM grid.
    pub fn num_dpus(&self) -> usize {
        self.backend.num_dpus()
    }

    /// Resets all device statistics (the compiled plan stays valid).
    pub fn reset_stats(&mut self) {
        self.backend.reset_stats();
    }

    /// Replaces the placement policy (invalidates the compiled plan and the
    /// planner's memoized plans).
    pub fn set_policy(&mut self, policy: ShardPolicy) {
        self.planner.set_policy(policy);
        self.compiled.clear();
    }

    /// How many times `run()` executed a graph / replayed a memoized
    /// compilation. In a steady serving loop `replays` trails `runs` by the
    /// (at most two) warm-up compilations.
    pub fn run_counts(&self) -> (u64, u64) {
        (self.runs, self.replays)
    }

    /// Accumulated graph-optimizer counters: graphs run through the pass
    /// pipeline, ops removed by CSE/DCE, fused groups emitted and the
    /// kernel launches they saved.
    pub fn optimizer_stats(&self) -> OptimizerStats {
        self.opt_stats
    }

    /// Compiled-plan cache counters: canonical-signature hits and misses,
    /// LRU evictions, and the currently valid entries.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
            evictions: self.cache_evictions,
            entries: self.compiled.iter().filter(|c| c.valid).count(),
        }
    }

    /// The memoizing shard planner the session plans on — exposes the
    /// shard-plan cache counters and, through
    /// [`CachedShardPlanner::planner`], the measurement-fed
    /// [`crate::shard::ShardCalibrator`].
    pub fn shard_planner(&self) -> &CachedShardPlanner {
        &self.planner
    }

    /// Cumulative fault-tolerance counters of everything this session
    /// executed: the backends' per-command retries and simulated backoff,
    /// permanent faults observed, and the session's own re-plans and
    /// degradations. All zero on a fault-free run.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.fault_stats;
        stats.merge(&self.backend.upmem().fault_stats());
        stats.merge(&self.backend.cim_backend().fault_stats());
        stats
    }
}

/// The resident buffer satisfying a role key, if layouts are compatible.
fn resident_buf(resident: &Option<Resident>, key: BufKey) -> Option<u32> {
    match (resident, key) {
        (Some(r), BufKey::Chunk(c))
            if r.layout == ResidentLayout::Chunked && r.gather_chunk == c =>
        {
            Some(r.buf)
        }
        (Some(r), BufKey::Broadcast(l))
            if r.layout == ResidentLayout::Replicated && r.gather_chunk == l =>
        {
            Some(r.buf)
        }
        _ => None,
    }
}

/// Whether an effective residency shape `(gather_chunk, layout)` satisfies a
/// buffer-role key (the id-free form of [`resident_buf`], used by the
/// optimizer's placement simulation).
fn virt_key_match(resident: Option<(usize, ResidentLayout)>, key: BufKey) -> bool {
    match (resident, key) {
        (Some((c, ResidentLayout::Chunked)), BufKey::Chunk(k)) => c == k,
        (Some((l, ResidentLayout::Replicated)), BufKey::Broadcast(k)) => l == k,
        _ => false,
    }
}

/// The device buffer backing `slot` under role `key`, allocating it on first
/// use. Buffers stay attached to the slot across recycling, so a replayed
/// plan's lookups are allocation-free. Under MRAM pressure the allocation
/// evicts cold resident tensors (spill-to-host or drop-and-rematerialize)
/// one at a time until the request fits; the typed
/// [`ShardError::MramExhausted`] surfaces only when every remaining
/// resident is part of the in-flight run's working set.
#[allow(clippy::too_many_arguments)]
fn ensure_buf_in(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    live_temps: &[u32],
    slot: u32,
    key: BufKey,
    protect: u64,
    counters: &mut ResidencyCounters,
    dpus: usize,
) -> Result<u32, ShardError> {
    if let Some(&(_, buf)) = slots[slot as usize].bufs.iter().find(|(k, _)| *k == key) {
        return Ok(buf);
    }
    loop {
        match backend
            .upmem_mut()
            .system_mut()
            .alloc_buffer(key.elems_per_dpu())
        {
            Ok(buf) => {
                slots[slot as usize].bufs.push((key, buf));
                return Ok(buf);
            }
            Err(e) if e.is_mram_exhausted() => {
                let (needed_bytes, available_bytes) =
                    e.mram_shortfall().unwrap_or((key.elems_per_dpu() * 4, 0));
                if !evict_one(backend, slots, live_temps, slot, protect, counters, dpus)? {
                    return Err(ShardError::MramExhausted {
                        needed_bytes,
                        available_bytes,
                    });
                }
            }
            // Non-capacity allocation failures are compiler bugs, exactly
            // as before the capacity layer.
            Err(e) => panic!("MRAM alloc: {e}"),
        }
    }
}

/// Evicts the coldest unprotected tensor's device buffers to relieve MRAM
/// pressure. The eviction action is chosen per victim by cost: a value that
/// only lives on the device is either **spilled** to the host (one billed
/// rescue gather) or **dropped** outright when recomputing it from its
/// recorded recipe would move fewer bytes than the gather (DTR-style; only
/// eligible when every recipe input is a stable host-valid source, so the
/// later replay is bit-identical). Tensors with a current host copy are
/// dropped for free. Returns whether a victim was evicted.
fn evict_one(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    live_temps: &[u32],
    requester: u32,
    protect: u64,
    counters: &mut ResidencyCounters,
    dpus: usize,
) -> Result<bool, ShardError> {
    // Pinning is a lifetime promise, not a residency one: pinned tensors
    // are evictable (their value survives via spill or recipe), only the
    // in-flight run's bound slots are untouchable.
    let mut victim: Option<usize> = None;
    for (i, s) in slots.iter().enumerate() {
        if i as u32 == requester || s.bufs.is_empty() || s.protected == protect {
            continue;
        }
        match victim {
            Some(v) if slots[v].last_use <= s.last_use => {}
            _ => victim = Some(i),
        }
    }
    let Some(v) = victim else {
        return Ok(false);
    };
    let live_device_only = slots[v].device_valid && !slots[v].host_valid;
    let gather_bytes = slots[v].resident.map_or(0, |r| r.gather_chunk * dpus * 4);
    let remat = live_device_only
        && slots[v].recipe.is_some_and(|r| {
            let s = &slots[v];
            let stable = r.inputs().iter().enumerate().all(|(i, &inp)| {
                let rs = &slots[inp as usize];
                rs.gen == s.recipe_gens[i]
                    && rs.host_valid
                    && (rs.pinned || !live_temps.contains(&inp))
            });
            // Recompute traffic: inputs still resident re-scatter for
            // free, the rest move their logical bytes back. Spill traffic
            // is the rescue gather. Cheaper recompute ⇒ drop (DTR).
            let rescatter_bytes: usize = r
                .inputs()
                .iter()
                .map(|&inp| {
                    let rs = &slots[inp as usize];
                    if rs.device_valid && rs.resident.is_some() {
                        0
                    } else {
                        rs.shape.map_or(0, |sh| sh.len()) * 4
                    }
                })
                .sum();
            stable && gather_bytes > rescatter_bytes
        });
    if live_device_only && !remat {
        // Spill: bill the rescue gather and keep the decoded host value.
        materialize_slot(backend, &mut slots[v], dpus)?;
        counters.spills += 1;
        counters.spilled_bytes += gather_bytes as u64;
    }
    let s = &mut slots[v];
    for &(_, buf) in &s.bufs {
        backend
            .upmem_mut()
            .system_mut()
            .free_buffer(buf)
            .expect("free evicted buffer");
    }
    s.bufs.clear();
    s.resident = None;
    s.device_valid = false;
    s.trips += 1;
    counters.evictions += 1;
    if live_device_only && remat {
        counters.remat_drops += 1;
    }
    Ok(true)
}

/// Converts a simulator error of the session's direct UPMEM path into the
/// typed shard error, recording the failure on the CNM device's health (the
/// session bypasses `Device::submit`, which would otherwise record it).
/// Non-fault errors are session/compiler invariant violations and stay
/// loud panics, exactly as before the fault layer.
fn cnm_failure(backend: &mut ShardedBackend, context: &str, e: SimError) -> ShardError {
    if e.fault_kind().is_none() {
        panic!("{context}: {e}");
    }
    let permanent = e.is_permanent_fault();
    backend.device_mut(ShardDevice::Cnm).note_failure(permanent);
    ShardError::DeviceFault {
        device: ShardDevice::Cnm,
        permanent,
        message: e.to_string(),
    }
}

/// Gathers a resident tensor and decodes it into the slot's host copy.
fn materialize_slot(
    backend: &mut ShardedBackend,
    slot: &mut Slot,
    dpus: usize,
) -> Result<(), ShardError> {
    let resident = slot.resident.expect("materialize needs a resident copy");
    let mut scratch = std::mem::take(&mut slot.scratch);
    let gathered = backend
        .upmem_mut()
        .try_op(|sys| sys.gather_i32_into(resident.buf, resident.gather_chunk, &mut scratch));
    slot.scratch = scratch;
    if let Err(e) = gathered {
        return Err(cnm_failure(backend, "resident gather", e));
    }
    decode_slot(slot, dpus);
    Ok(())
}

/// Decodes `slot.scratch` (a raw gather of the resident buffer) into the
/// logical host value, using the single decode implementations shared with
/// the eager backend.
fn decode_slot(slot: &mut Slot, dpus: usize) {
    let resident = slot.resident.expect("decode needs a resident descriptor");
    let logical = slot.shape.expect("live slot has a shape").len();
    let host = &mut slot.host;
    host.clear();
    match resident.layout {
        ResidentLayout::Chunked | ResidentLayout::Replicated => {
            host.extend_from_slice(&slot.scratch[..logical]);
        }
        ResidentLayout::SelectRaw {
            threshold,
            len,
            chunk,
        } => decode_select_into(&slot.scratch, chunk, len, threshold, host),
        ResidentLayout::ReducePartials { op, used } => {
            host.push(fold_reduce_partials(op, &slot.scratch, used));
        }
        ResidentLayout::HistPartials { bins, len, chunk } => {
            merge_histogram_partials_into(&slot.scratch, bins, len, chunk, dpus, host);
        }
        ResidentLayout::Profiles { used, positions } => {
            host.extend_from_slice(&slot.scratch[..used * positions]);
        }
    }
    slot.host_valid = true;
}

/// Applies the state effect of one command to its slot (shared by both
/// execution modes; runs in command order).
fn apply_effect(slots: &mut [Slot], cmd: &CnmCmd, residency: bool) {
    match cmd {
        CnmCmd::Scatter {
            slot, buf, chunk, ..
        } => {
            let s = &mut slots[*slot as usize];
            s.resident = Some(Resident {
                buf: *buf,
                gather_chunk: *chunk,
                layout: ResidentLayout::Chunked,
            });
            s.device_valid = residency;
        }
        CnmCmd::Broadcast { slot, buf, .. } => {
            let s = &mut slots[*slot as usize];
            let len = s.host.len();
            s.resident = Some(Resident {
                buf: *buf,
                gather_chunk: len,
                layout: ResidentLayout::Replicated,
            });
            s.device_valid = residency;
        }
        CnmCmd::SetOutput { slot, resident, .. } => {
            let s = &mut slots[*slot as usize];
            s.resident = Some(*resident);
            s.device_valid = residency;
            s.host_valid = false;
        }
        CnmCmd::Zero { .. } | CnmCmd::Launch { .. } | CnmCmd::Gather { .. } => {}
        CnmCmd::Decode { .. } => {} // decode sets host_valid itself
    }
}

/// Executes one segment through the hazard-tracked command stream (the
/// compile-path mode): transfers of independent inputs overlap, dependent
/// launches are RAW-ordered, statistics fold in program order.
fn run_segment_stream(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    cmds: &[CnmCmd],
    residency: bool,
    dpus: usize,
) -> Result<(), ShardError> {
    // Zeroing is untimed fresh-allocation semantics and each zeroed buffer
    // is only written by its own op's launch afterwards, so it is applied
    // before the stream is recorded.
    for cmd in cmds {
        if let CnmCmd::Zero { buf, .. } = cmd {
            backend
                .upmem_mut()
                .system_mut()
                .zero_buffer(*buf)
                .expect("zero output buffer");
        }
    }
    let mut gathers: Vec<(usize, u32)> = Vec::new();
    let mut stream = CommandStream::new();
    {
        let slots_ref: &[Slot] = slots;
        for cmd in cmds {
            match cmd {
                CnmCmd::Scatter {
                    slot, buf, chunk, ..
                } => {
                    stream.enqueue(Command::Scatter {
                        buffer: *buf,
                        data: Cow::Borrowed(&slots_ref[*slot as usize].host[..]),
                        chunk: *chunk,
                    });
                }
                CnmCmd::Broadcast { slot, buf, .. } => {
                    stream.enqueue(Command::Broadcast {
                        buffer: *buf,
                        data: Cow::Borrowed(&slots_ref[*slot as usize].host[..]),
                    });
                }
                CnmCmd::Launch { spec, .. } => {
                    stream.enqueue(Command::Launch { spec: spec.clone() });
                }
                CnmCmd::Gather {
                    slot, buf, chunk, ..
                } => {
                    let idx = stream.enqueue(Command::Gather {
                        buffer: *buf,
                        chunk: *chunk,
                    });
                    gathers.push((idx, *slot));
                }
                CnmCmd::Zero { .. } | CnmCmd::SetOutput { .. } | CnmCmd::Decode { .. } => {}
            }
        }
        let mut outputs = match backend.upmem_mut().try_sync(&mut stream) {
            Ok(outputs) => outputs,
            Err(e) => return Err(cnm_failure(backend, "session stream", e)),
        };
        for (idx, slot) in &gathers {
            // Each gather index is consumed exactly once: take the buffer
            // out instead of deep-copying it.
            let taken = std::mem::replace(
                &mut outputs[*idx],
                CommandOutput::Transfer(TransferStats::default()),
            );
            slots[*slot as usize].scratch = taken.into_gathered().expect("gather output");
        }
    }
    for cmd in cmds {
        apply_effect(slots, cmd, residency);
    }
    for cmd in cmds {
        if let CnmCmd::Decode { slot, .. } = cmd {
            decode_slot(&mut slots[*slot as usize], dpus);
            if !residency {
                slots[*slot as usize].device_valid = false;
            }
        }
    }
    Ok(())
}

/// Executes one segment through the simulator's eager entry points in the
/// recorded (program) order — bit-identical to the stream schedule and
/// allocation-free in the steady state (the replay mode).
fn run_segment_direct(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    cmds: &[CnmCmd],
    residency: bool,
    dpus: usize,
) -> Result<(), ShardError> {
    for cmd in cmds {
        // Each command runs under the backend's transient-retry policy
        // (`try_op`); retries stay allocation-free on the warmed path. A
        // command that still fails commits nothing, so recovery can re-run
        // the segment from its start.
        let executed: Result<(), SimError> = match cmd {
            CnmCmd::Scatter {
                slot, buf, chunk, ..
            } => {
                let host = &slots[*slot as usize].host;
                backend
                    .upmem_mut()
                    .try_op(|sys| sys.scatter_i32(*buf, host, *chunk))
                    .map(|_| ())
            }
            CnmCmd::Broadcast { slot, buf, .. } => {
                let host = &slots[*slot as usize].host;
                backend
                    .upmem_mut()
                    .try_op(|sys| sys.broadcast_i32(*buf, host))
                    .map(|_| ())
            }
            CnmCmd::Zero { buf, .. } => {
                // Uninjectable (untimed fresh-allocation semantics): only
                // invariant violations can surface here.
                backend
                    .upmem_mut()
                    .system_mut()
                    .zero_buffer(*buf)
                    .expect("zero output buffer");
                Ok(())
            }
            CnmCmd::Launch { spec, .. } => backend
                .upmem_mut()
                .try_op(|sys| sys.launch(spec))
                .map(|_| ()),
            CnmCmd::Gather {
                slot, buf, chunk, ..
            } => {
                let s = &mut slots[*slot as usize];
                let mut scratch = std::mem::take(&mut s.scratch);
                let gathered = backend
                    .upmem_mut()
                    .try_op(|sys| sys.gather_i32_into(*buf, *chunk, &mut scratch));
                s.scratch = scratch;
                gathered.map(|_| ())
            }
            CnmCmd::Decode { slot, .. } => {
                decode_slot(&mut slots[*slot as usize], dpus);
                if !residency {
                    slots[*slot as usize].device_valid = false;
                }
                Ok(())
            }
            CnmCmd::SetOutput { .. } => Ok(()),
        };
        if let Err(e) = executed {
            return Err(cnm_failure(backend, "segment replay", e));
        }
        apply_effect(slots, cmd, residency);
    }
    Ok(())
}

/// Executes one shard-planned op across the device set via the sharded
/// backend (one `Device::submit` per non-empty shard, concurrently on the
/// shared pool).
fn run_planned(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    binding: &[u32],
    node: &OpNode,
    split: &ShardSplit,
) -> Result<(), ShardError> {
    let phys = |c: u32| binding[c as usize] as usize;
    let result = match node.kind {
        OpKindNode::Gemm { m, k, n } => {
            let a = &slots[phys(node.inputs[0])].host;
            let b = &slots[phys(node.inputs[1])].host;
            backend.gemm(a, b, m, k, n, split)?
        }
        OpKindNode::Gemv { rows, cols } => {
            let a = &slots[phys(node.inputs[0])].host;
            let x = &slots[phys(node.inputs[1])].host;
            backend.gemv(a, x, rows, cols, split)?
        }
        OpKindNode::Elementwise { op, .. } => {
            let a = &slots[phys(node.inputs[0])].host;
            let b = &slots[phys(node.inputs[1])].host;
            backend.elementwise(op, a, b, split)?
        }
        OpKindNode::Reduce { op, .. } => {
            let a = &slots[phys(node.inputs[0])].host;
            vec![backend.reduce(op, a, split)?]
        }
        OpKindNode::Histogram {
            bins, max_value, ..
        } => {
            let a = &slots[phys(node.inputs[0])].host;
            backend.histogram(a, bins, max_value, split)?
        }
        _ => unreachable!("non-plannable ops are never shard-dispatched"),
    };
    let out = &mut slots[phys(node.output)];
    out.host = result;
    out.host_valid = true;
    out.device_valid = false;
    out.resident = None;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinm_lowering::{UpmemBackend, UpmemRunOptions};
    use cpu_sim::kernels;

    fn small_cfg() -> UpmemConfig {
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 8;
        cfg
    }

    fn cnm_session(residency: bool) -> Session {
        Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                .with_policy(ShardPolicy::Single(Target::Cnm))
                .with_residency(residency),
        )
    }

    fn oracle() -> UpmemBackend {
        UpmemBackend::with_config(small_cfg(), UpmemRunOptions::optimized())
    }

    fn capped_cnm_session(limit: usize) -> Session {
        Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                .with_policy(ShardPolicy::Single(Target::Cnm))
                .with_residency(true)
                .with_mram_limit_bytes(limit),
        )
    }

    #[test]
    fn capped_sessions_evict_and_stay_bit_identical() {
        let len = 256usize;
        let sources: Vec<Vec<i32>> = (0..4)
            .map(|r| (0..len).map(|i| ((i * (r + 3)) % 17) as i32 - 8).collect())
            .collect();
        let run_all = |sess: &mut Session| -> Vec<Vec<i32>> {
            let mut outs = Vec::new();
            for src in &sources {
                let x = sess.vector(src);
                let z = sess.elementwise(BinOp::Add, x, x);
                sess.pin(z);
                sess.run().unwrap();
                outs.push(z);
            }
            outs.iter().map(|&z| sess.fetch(z)).collect()
        };
        let mut unlimited = cnm_session(true);
        let expected = run_all(&mut unlimited);
        assert_eq!(unlimited.residency_stats().evictions, 0);

        // Room for four chunk buffers (256/8 elems * 4 B = 128 B each): the
        // eight live buffers of the four rounds cannot all stay resident.
        let mut capped = capped_cnm_session(512);
        let got = run_all(&mut capped);
        assert_eq!(got, expected, "eviction must stay bit-transparent");
        let stats = capped.residency_stats();
        assert!(
            stats.evictions > 0,
            "the cap must force evictions: {stats:?}"
        );
        assert_eq!(stats.limit_bytes, 512);
        assert!(stats.peak_mram_bytes <= 512, "{stats:?}");
    }

    #[test]
    fn limits_below_the_working_set_are_typed_errors_and_the_session_survives() {
        let mut sess = capped_cnm_session(64);
        let (rows, cols) = (64, 32);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 7) as i32 - 3).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i % 5) as i32 - 2).collect();
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let _yt = sess.gemv(at, xt);
        let err = sess.run().unwrap_err();
        match err {
            ShardError::MramExhausted {
                needed_bytes,
                available_bytes,
            } => assert!(needed_bytes > available_bytes, "{err}"),
            other => panic!("expected MramExhausted, got {other}"),
        }

        // A graph whose working set fits the 64-byte budget still runs.
        let len = 64usize; // 8 elems/DPU = 32 B per buffer, two buffers
        let v: Vec<i32> = (0..len).map(|i| i as i32 % 9 - 4).collect();
        let vt = sess.vector(&v);
        let zt = sess.elementwise(BinOp::Add, vt, vt);
        sess.run().unwrap();
        let expect: Vec<i32> = v.iter().map(|&e| e + e).collect();
        assert_eq!(sess.fetch(zt), expect);
    }

    #[test]
    fn device_only_temps_with_resident_inputs_are_dropped_and_rematerialized() {
        let len = 256usize;
        let x_src: Vec<i32> = (0..len).map(|i| (i % 23) as i32 - 11).collect();
        // Two 128-byte chunk buffers fit next to the input's; the third
        // output allocation must evict.
        let mut sess = capped_cnm_session(320);
        let xt = sess.vector(&x_src);
        let z1 = sess.elementwise(BinOp::Add, xt, xt);
        sess.pin(z1);
        sess.run().unwrap();
        let z2 = sess.elementwise(BinOp::Mul, xt, xt);
        sess.pin(z2);
        sess.run().unwrap();
        let stats = sess.residency_stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(
            stats.remat_drops >= 1,
            "the add output must be dropped, not spilled — its input is resident: {stats:?}"
        );
        assert_eq!(stats.spilled_bytes, 0, "{stats:?}");
        let got1 = sess.fetch(z1);
        let got2 = sess.fetch(z2);
        let expect1: Vec<i32> = x_src.iter().map(|&e| e + e).collect();
        let expect2: Vec<i32> = x_src.iter().map(|&e| e.wrapping_mul(e)).collect();
        assert_eq!(got1, expect1, "rematerialized fetch must be bit-identical");
        assert_eq!(got2, expect2);
        assert!(sess.residency_stats().remat_ops >= 1);
    }

    #[test]
    fn residency_off_is_bit_identical_to_the_eager_backend_including_stats() {
        let (rows, cols) = (50, 24);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 11) as i32 - 5).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i % 5) as i32 - 2).collect();

        let mut sess = cnm_session(false);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let yt = sess.gemv(at, xt);
        let st = sess.select(yt, 0);
        sess.run().unwrap();
        let y = sess.fetch(yt);
        let s = sess.fetch(st);

        let mut eager = oracle();
        let y_ref = eager.gemv(&a, &x, rows, cols);
        let s_ref = eager.select(&y_ref, 0);
        assert_eq!(y, y_ref);
        assert_eq!(s, s_ref);
        assert_eq!(
            sess.upmem_stats(),
            eager.stats(),
            "stats must fold identically"
        );
    }

    #[test]
    fn residency_keeps_results_identical_and_moves_strictly_fewer_bytes() {
        let (rows, cols) = (64, 32);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 13) as i32 - 6).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i % 7) as i32 - 3).collect();

        let mut sess = cnm_session(true);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let yt = sess.gemv(at, xt);
        let st = sess.select(yt, 0);
        sess.run().unwrap();
        let s = sess.fetch(st);

        let mut eager = oracle();
        let y_ref = eager.gemv(&a, &x, rows, cols);
        let s_ref = eager.select(&y_ref, 0);
        assert_eq!(s, s_ref);
        let sess_stats = sess.upmem_stats();
        let eager_stats = eager.stats();
        let sess_bytes = sess_stats.host_to_dpu_bytes + sess_stats.dpu_to_host_bytes;
        let eager_bytes = eager_stats.host_to_dpu_bytes + eager_stats.dpu_to_host_bytes;
        assert!(
            sess_bytes < eager_bytes,
            "resident chain must move fewer simulated bytes ({sess_bytes} vs {eager_bytes})"
        );
        assert_eq!(sess_stats.kernel_seconds, eager_stats.kernel_seconds);
    }

    #[test]
    fn warmed_loops_replay_the_compiled_plan_and_skip_unchanged_inputs() {
        let (rows, cols) = (48, 16);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 9) as i32 - 4).collect();
        let mut sess = cnm_session(true);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&vec![0i32; cols]);
        let mut bytes_per_iter = Vec::new();
        for round in 0..5 {
            let x: Vec<i32> = (0..cols)
                .map(|i| (i as i32 * (round + 1)) % 5 - 2)
                .collect();
            sess.write(xt, &x);
            let before = sess.upmem_stats().host_to_dpu_bytes;
            let yt = sess.gemv(at, xt);
            let st = sess.select(yt, 1);
            sess.run().unwrap();
            let got = sess.fetch(st);
            let mut eager = oracle();
            let y_ref = eager.gemv(&a, &x, rows, cols);
            assert_eq!(got, eager.select(&y_ref, 1), "round {round}");
            bytes_per_iter.push(sess.upmem_stats().host_to_dpu_bytes - before);
        }
        let (runs, replays) = sess.run_counts();
        assert_eq!(runs, 5);
        // Iterations 1-2 compile (cold, then once more with A observed
        // resident); iterations 3+ replay memoized plans — canonical
        // signatures make the rotating temporary ids irrelevant.
        assert_eq!(replays, 3, "{bytes_per_iter:?}");
        // Warm iterations skip the matrix transfer entirely.
        assert!(
            bytes_per_iter[2] < bytes_per_iter[0] / 4,
            "{bytes_per_iter:?}"
        );
        assert_eq!(bytes_per_iter[2], bytes_per_iter[4]);
    }

    #[test]
    fn elementwise_chains_fuse_into_one_launch() {
        let len = 96;
        let a: Vec<i32> = (0..len).map(|i| (i % 17) - 8).collect();
        let b: Vec<i32> = (0..len).map(|i| (i % 13) - 6).collect();
        let c: Vec<i32> = (0..len).map(|i| (i % 7) - 3).collect();
        let d: Vec<i32> = (0..len).map(|i| (i % 5) - 2).collect();
        let mut sess = cnm_session(true);
        let at = sess.vector(&a);
        let bt = sess.vector(&b);
        let ct = sess.vector(&c);
        let dt = sess.vector(&d);
        // The BFS-epilogue shape: a three-op element-wise chain.
        let t0 = sess.elementwise(BinOp::Xor, at, bt);
        let t1 = sess.elementwise(BinOp::And, t0, ct);
        let t2 = sess.elementwise(BinOp::Or, t1, dt);
        sess.run().unwrap();

        let mut eager = oracle();
        let r0 = eager.elementwise(BinOp::Xor, &a, &b);
        let r1 = eager.elementwise(BinOp::And, &r0, &c);
        let r2 = eager.elementwise(BinOp::Or, &r1, &d);
        assert_eq!(sess.fetch(t2), r2);
        // Every fused stage's output stays observable.
        assert_eq!(sess.fetch(t0), r0);
        assert_eq!(sess.fetch(t1), r1);
        // Three ops, one launch (the eager oracle takes three).
        assert_eq!(sess.upmem_stats().launches, 1);
        assert_eq!(eager.stats().launches, 3);
        let stats = sess.optimizer_stats();
        assert_eq!(stats.graphs_optimized, 1);
        assert_eq!(stats.fused_groups, 1);
        assert_eq!(stats.ops_fused, 3);
        assert_eq!(stats.launches_saved, 2);
    }

    #[test]
    fn duplicate_and_dead_ops_are_eliminated() {
        let len = 64;
        let a: Vec<i32> = (0..len).map(|i| (i % 11) - 5).collect();
        let b: Vec<i32> = (0..len).map(|i| (i % 9) - 4).collect();
        let mut sess = cnm_session(true);
        let at = sess.vector(&a);
        let bt = sess.vector(&b);
        let s1 = sess.elementwise(BinOp::Add, at, bt);
        // A structural twin of s1 whose output the caller gives up on: CSE
        // folds it into s1.
        let s2 = sess.elementwise(BinOp::Add, at, bt);
        sess.discard(s2);
        // Dead: discarded and unconsumed, DCE erases it.
        let dead = sess.elementwise(BinOp::Mul, at, bt);
        sess.discard(dead);
        let keep = sess.elementwise(BinOp::Sub, s1, bt);
        sess.run().unwrap();

        let mut eager = oracle();
        let r1 = eager.elementwise(BinOp::Add, &a, &b);
        let rk = eager.elementwise(BinOp::Sub, &r1, &b);
        assert_eq!(sess.fetch(keep), rk);
        assert_eq!(sess.fetch(s1), r1);
        let stats = sess.optimizer_stats();
        assert_eq!(stats.ops_eliminated, 2, "the CSE'd twin and the dead op");
    }

    #[test]
    #[should_panic(expected = "stale tensor handle")]
    fn fetching_a_discarded_tensor_panics() {
        let len = 32;
        let a: Vec<i32> = (0..len).collect();
        let mut sess = cnm_session(true);
        let at = sess.vector(&a);
        let bt = sess.vector(&a);
        let kept = sess.elementwise(BinOp::Add, at, bt);
        let gone = sess.elementwise(BinOp::Mul, at, bt);
        sess.discard(gone);
        sess.run().unwrap();
        let _ = sess.fetch(kept);
        let _ = sess.fetch(gone); // stale: the discarded output was recycled
    }

    #[test]
    fn rotating_temporaries_replay_via_canonical_signatures() {
        let (rows, cols) = (40, 16);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 9) as i32 - 4).collect();
        let mut sess = cnm_session(true);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&vec![0i32; cols]);
        for round in 0..10 {
            let x: Vec<i32> = (0..cols).map(|i| (i as i32 + round) % 5 - 2).collect();
            sess.write(xt, &x);
            // Fresh temporary handles every iteration: structurally the
            // same graph, so canonical signatures hit the cache anyway.
            let yt = sess.gemv(at, xt);
            let st = sess.select(yt, 0);
            sess.run().unwrap();
            let got = sess.fetch(st);
            let mut eager = oracle();
            let y_ref = eager.gemv(&a, &x, rows, cols);
            assert_eq!(got, eager.select(&y_ref, 0), "round {round}");
        }
        let (runs, replays) = sess.run_counts();
        assert_eq!(runs, 10);
        assert_eq!(replays, 8, "everything after the two warm-up compiles");
        let pc = sess.plan_cache_stats();
        assert_eq!((pc.hits, pc.misses, pc.evictions), (8, 2, 0));
        assert_eq!(pc.entries, 2);
    }

    #[test]
    fn the_plan_cache_is_a_bounded_lru() {
        let mut sess = cnm_session(true);
        for i in 0..10usize {
            // Ten structurally distinct graphs (the length differs), each
            // compiled once: the ninth and tenth evict the two oldest.
            let len = 16 + 8 * i;
            let v: Vec<i32> = (0..len).map(|j| (j % 7) as i32 - 3).collect();
            let at = sess.vector(&v);
            let bt = sess.vector(&v);
            let h = sess.elementwise(BinOp::Add, at, bt);
            sess.run().unwrap();
            let want: Vec<i32> = v.iter().map(|&e| e + e).collect();
            assert_eq!(sess.fetch(h), want, "graph {i}");
        }
        let pc = sess.plan_cache_stats();
        assert_eq!(pc.misses, 10);
        assert_eq!(pc.hits, 0);
        assert_eq!(pc.evictions, 2);
        assert_eq!(pc.entries, Session::COMPILED_CACHE);
    }

    #[test]
    fn planner_feedback_recalibrates_and_converges() {
        // Forced fractions guarantee shard-planned (multi-device) steps, so
        // every run feeds measured per-device times into the calibrator.
        let (rows, cols) = (60, 24);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 13) as i32 - 6).collect();
        let mut sess = Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                .with_policy(ShardPolicy::Fractions([0.5, 0.3, 0.2]))
                .with_residency(true),
        );
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&vec![0i32; cols]);
        for round in 0..12 {
            let x: Vec<i32> = (0..cols)
                .map(|i| (i as i32 * (round + 1)) % 7 - 3)
                .collect();
            sess.write(xt, &x);
            let yt = sess.gemv(at, xt);
            sess.run().unwrap();
            let got = sess.fetch(yt);
            let want = kernels::matvec(&a, &x, rows, cols);
            assert_eq!(got, want, "round {round}");
        }
        // Calibration converges (the measured/estimated ratio is a fixed
        // point of the EMA), after which plans replay again.
        let (runs, replays) = sess.run_counts();
        assert_eq!(runs, 12);
        assert!(
            replays >= 1,
            "feedback must converge and let warmed plans replay"
        );
        assert!(!sess.planner.planner().calibrator.is_empty());
    }

    #[test]
    fn chained_gemms_and_streaming_ops_match_the_goldens() {
        let (m, k, n, p) = (24, 16, 12, 8);
        let a: Vec<i32> = (0..m * k).map(|i| (i % 7) as i32 - 3).collect();
        let b: Vec<i32> = (0..k * n).map(|i| (i % 5) as i32 - 2).collect();
        let c: Vec<i32> = (0..n * p).map(|i| (i % 3) as i32 - 1).collect();
        let mut sess = cnm_session(true);
        let at = sess.matrix(&a, m, k);
        let bt = sess.matrix(&b, k, n);
        let ct = sess.matrix(&c, n, p);
        let d = sess.gemm(at, bt);
        let e = sess.gemm(d, ct);
        sess.run().unwrap();
        let d_ref = kernels::matmul(&a, &b, m, k, n);
        assert_eq!(sess.fetch(e), kernels::matmul(&d_ref, &c, m, n, p));
        assert_eq!(sess.fetch(d), d_ref);

        let v: Vec<i32> = (0..500).map(|i| i * 37 % 256).collect();
        let w: Vec<i32> = (0..500).map(|i| 100 - i).collect();
        let vt = sess.vector(&v);
        let wt = sess.vector(&w);
        let sum = sess.elementwise(BinOp::Add, vt, wt);
        let red = sess.reduce(BinOp::Add, sum);
        let hist = sess.histogram(vt, 16, 256);
        sess.run().unwrap();
        assert_eq!(sess.fetch(sum), kernels::vector_add(&v, &w));
        assert_eq!(
            sess.fetch_scalar(red),
            kernels::reduce_add(&kernels::vector_add(&v, &w))
        );
        assert_eq!(sess.fetch(hist), kernels::histogram(&v, 16, 256));
    }

    #[test]
    fn auto_policy_plans_across_devices_and_matches_goldens() {
        let (rows, cols) = (640, 96);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 11) as i32 - 5).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i % 5) as i32 - 2).collect();
        let mut sess = Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                .with_policy(ShardPolicy::Auto),
        );
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let yt = sess.gemv(at, xt);
        sess.run().unwrap();
        assert_eq!(sess.fetch(yt), kernels::matvec(&a, &x, rows, cols));

        let v: Vec<i32> = (0..4096).map(|i| i * 31 % 97 - 40).collect();
        let vt = sess.vector(&v);
        let wt = sess.vector(&v);
        let sum = sess.elementwise(BinOp::Add, vt, wt);
        sess.run().unwrap();
        assert_eq!(sess.fetch(sum), kernels::vector_add(&v, &v));
    }

    #[test]
    #[should_panic(expected = "stale tensor handle")]
    fn unreferenced_temporaries_go_stale_after_the_next_run() {
        let mut sess = cnm_session(true);
        let v = sess.vector(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let w = sess.vector(&[1; 8]);
        let first = sess.elementwise(BinOp::Add, v, w);
        sess.run().unwrap();
        // A second run that does not reference `first` recycles it.
        let second = sess.elementwise(BinOp::Mul, v, w);
        sess.run().unwrap();
        let _ = sess.fetch(second);
        let _ = sess.fetch(first); // panics: stale
    }

    #[test]
    fn failed_plans_recycle_their_outputs_and_leave_the_session_usable() {
        let mut sess = Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                // Infeasible: fractions do not sum to 1.
                .with_policy(ShardPolicy::Fractions([0.5, 0.2, 0.2])),
        );
        let v = sess.vector(&[1i32; 64]);
        let w = sess.vector(&[2i32; 64]);
        let mut failed = Vec::new();
        for _ in 0..3 {
            let out = sess.elementwise(BinOp::Add, v, w);
            assert!(matches!(sess.run(), Err(ShardError::FractionSum { .. })));
            failed.push(out);
        }
        // The failed graphs' output slots were recycled: a fixed policy
        // reuses them and the session works normally.
        sess.set_policy(ShardPolicy::Single(Target::Cnm));
        let ok = sess.elementwise(BinOp::Add, v, w);
        sess.run().unwrap();
        assert_eq!(sess.fetch(ok), vec![3i32; 64]);
        // Handles of the failed graphs are stale.
        let stale = failed[0];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sess.fetch(stale);
        }));
        assert!(caught.is_err(), "failed-run outputs must be stale");
    }

    #[test]
    fn pinned_outputs_survive_unrelated_runs() {
        let mut sess = cnm_session(true);
        let v = sess.vector(&[5; 16]);
        let w = sess.vector(&[3; 16]);
        let kept = sess.elementwise(BinOp::Sub, v, w);
        sess.pin(kept);
        sess.run().unwrap();
        let _other = sess.elementwise(BinOp::Add, v, w);
        sess.run().unwrap();
        assert_eq!(sess.fetch(kept), vec![2; 16]);
    }

    /// The serving layer's batching keys must be *exactly* the canonical
    /// replay signatures a session computes for the same request graphs —
    /// this is the contract that lets the server reuse the plan-cache
    /// compatibility predicate as its batch-compatibility predicate.
    #[test]
    fn serve_request_signatures_match_the_session_canonical_form() {
        let mut sess = cnm_session(true);
        let a = sess.matrix(&[2; 12], 3, 4);
        let x = sess.vector(&[1; 4]);
        let _y = sess.gemv(a, x);
        sess.canonicalize();
        assert_eq!(sess.sig_scratch, gemv_request_signature(3, 4));
        assert_ne!(sess.sig_scratch, gemv_request_signature(4, 3));

        let mut sess = cnm_session(true);
        let a = sess.matrix(&[2; 12], 3, 4);
        let b = sess.matrix(&[1; 8], 4, 2);
        let _c = sess.gemm(a, b);
        sess.canonicalize();
        assert_eq!(sess.sig_scratch, gemm_request_signature(3, 4, 2));
        assert_ne!(sess.sig_scratch, gemv_request_signature(3, 4));
    }
}
