//! The lazy `Session` graph API with device-resident tensors — the one
//! public execution entry point of the reproduction.
//!
//! The eager per-backend methods force every operation through a full
//! host round-trip: scatter the inputs, launch, gather the output — even
//! when the very next op consumes that output in place. A [`Session`]
//! instead records a **lazy op graph** against typed [`TensorHandle`]s and
//! compiles the whole graph at [`Session::run`]:
//!
//! 1. **Placement.** Each plannable op (`gemm`/`gemv`/element-wise/
//!    `reduce`/`histogram`) is shard-planned by the existing (cached)
//!    [`CachedShardPlanner`] built from the devices' own cost hookups
//!    ([`cinm_lowering::Device::cost`]); the PrIM device kernels without a
//!    planner model (`select`, `time_series`, `bfs_step`) go to the UPMEM
//!    grid. An op consuming a tensor that is already **device-resident** in
//!    a compatible layout is placed on that device directly — no plan, no
//!    round-trip.
//! 2. **Compilation.** Consecutive UPMEM-placed ops become one **segment**:
//!    a single hazard-tracked [`CommandStream`] per device per segment
//!    (transfers of independent inputs overlap, dependent launches are
//!    RAW-ordered on their MRAM buffers by `UpmemSystem::sync`). Sharded
//!    ops dispatch one `submit` per device concurrently on the shared
//!    worker pool via [`ShardedBackend`].
//! 3. **Residency.** Intermediate tensors stay in DPU MRAM between ops:
//!    a `gemv → select` chain launches both kernels against the same
//!    resident buffer, skipping the gather + re-scatter the eager API pays.
//!    Unchanged *input* tensors also stay resident across runs — a serving
//!    loop re-broadcasts only the vectors it [`Session::write`]s.
//!    [`Session::fetch`] is the only point data returns to the host.
//!
//! # Replay (the allocation-free hot path)
//!
//! `run()` memoizes the compiled plan. When the next graph is structurally
//! identical (same ops, same tensors, same residency preconditions — the
//! steady state of any serving loop), the session **replays** the compiled
//! plan through the simulator's eager entry points in the recorded hazard
//! order, which is bit-identical to the stream schedule (`cinm-runtime`
//! streams are property-tested equal to in-order eager execution) and
//! performs **zero heap allocations per op** — pinned by
//! `tests/alloc_regression.rs`. The first iterations of a loop compile
//! (cold transfers, then once per temporary id-set with the inputs observed
//! resident — at most three compilations); every later iteration replays.
//!
//! # Equivalence
//!
//! With residency disabled ([`SessionOptions::with_residency`]`(false)`)
//! the compiled program is command-for-command the eager per-op program:
//! results **and** simulated statistics are bit-identical to calling the
//! backend methods in graph order (property-tested in
//! `tests/properties.rs`). With residency enabled, results stay
//! bit-identical while strictly fewer simulated bytes cross the host
//! interface on multi-op chains.
//!
//! ```
//! use cinm_core::session::{Session, SessionOptions};
//! use cinm_core::{ShardPolicy, Target};
//! use upmem_sim::UpmemConfig;
//!
//! let mut cfg = UpmemConfig::with_ranks(1);
//! cfg.dpus_per_rank = 4;
//! let mut sess = Session::new(
//!     SessionOptions::default()
//!         .with_upmem_config(cfg)
//!         .with_policy(ShardPolicy::Single(Target::Cnm)),
//! );
//! let a = sess.matrix(&vec![1; 8 * 6], 8, 6);
//! let x = sess.vector(&vec![1; 6]);
//! let y = sess.gemv(a, x); // lazy: nothing executed yet
//! let s = sess.select(y, 3); // chained: y stays resident in MRAM
//! sess.run().unwrap();
//! assert_eq!(sess.fetch(y), vec![6; 8]);
//! assert_eq!(sess.fetch(s), vec![6; 8]);
//! ```

use std::borrow::Cow;
use std::collections::VecDeque;
use std::ops::Range;

use cinm_lowering::backend::{
    decode_select_into, fold_reduce_partials, merge_histogram_partials_into,
};
use cinm_lowering::{
    elementwise_op_name, ShardDevice, ShardError, ShardSplit, ShardedBackend, ShardedRunOptions,
};
use cinm_runtime::{CommandStream, FaultConfig, FaultStats};
use upmem_sim::{
    BinOp, Command, CommandOutput, DpuKernelKind, KernelSpec, SimError, SystemStats, TransferStats,
    UpmemConfig,
};

use cinm_dialects::cinm;

use crate::shard::{CachedShardPlanner, ShardPlanner, ShardPolicy, ShardShape};
use crate::target::Target;

/// Options of a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Device set configuration (ranks, UPMEM/CIM code-generation options,
    /// host roofline, shared pool) — the same options the sharded backend
    /// takes.
    pub sharded: ShardedRunOptions,
    /// The placement policy handed to the shard planner.
    pub policy: ShardPolicy,
    /// Whether intermediate (and unchanged input) tensors stay
    /// device-resident between ops and runs. Disabling reproduces the eager
    /// per-op program exactly — the equivalence-oracle mode.
    pub residency: bool,
    /// Explicit UPMEM machine configuration (test harnesses use small
    /// grids); `None` uses `sharded.ranks` DIMMs of the default geometry.
    pub upmem_config: Option<UpmemConfig>,
    /// Deterministic fault schedule injected into **both** simulators (the
    /// UPMEM grid and the crossbar). `None` runs fault-free. Under any
    /// schedule that leaves at least one healthy device, session results
    /// stay bit-identical to the fault-free run — the session retries
    /// transients, re-plans around dead devices and falls back to the host.
    pub fault: Option<FaultConfig>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            sharded: ShardedRunOptions::default(),
            policy: ShardPolicy::Auto,
            residency: true,
            upmem_config: None,
            fault: None,
        }
    }
}

impl SessionOptions {
    /// Overrides the placement policy.
    pub fn with_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables device residency (see the field documentation).
    pub fn with_residency(mut self, residency: bool) -> Self {
        self.residency = residency;
        self
    }

    /// Overrides the UPMEM machine configuration.
    pub fn with_upmem_config(mut self, config: UpmemConfig) -> Self {
        self.upmem_config = Some(config);
        self
    }

    /// Overrides the full device-set options.
    pub fn with_sharded(mut self, sharded: ShardedRunOptions) -> Self {
        self.sharded = sharded;
        self
    }

    /// Attaches a deterministic fault schedule to both simulators (see the
    /// field documentation).
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Logical shape of a session tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorShape {
    /// A flat vector of `len` elements.
    Vector {
        /// Element count.
        len: usize,
    },
    /// A row-major matrix.
    Matrix {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// A single scalar (reduction results).
    Scalar,
}

impl TensorShape {
    /// Total element count of the shape. For `select` outputs this is the
    /// *upper bound* (the input length) — the fetched vector carries the
    /// data-dependent actual length.
    pub fn len(&self) -> usize {
        match self {
            TensorShape::Vector { len } => *len,
            TensorShape::Matrix { rows, cols } => rows * cols,
            TensorShape::Scalar => 1,
        }
    }

    /// Whether the shape holds zero elements (sessions reject empty
    /// tensors, so this is always `false` for live handles).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A typed handle to a session tensor — a `Copy` token naming a tensor plus
/// its logical shape.
///
/// Handles of **op outputs** stay fetchable until the *next* [`Session::run`]
/// (at which point unreferenced temporaries are recycled and their handles
/// go stale — using one afterwards panics with a clear message); handles of
/// [`Session::vector`]/[`Session::matrix`] source tensors stay valid for the
/// session's lifetime.
///
/// ```
/// use cinm_core::session::{Session, SessionOptions, TensorShape};
///
/// let mut sess = Session::new(SessionOptions::default());
/// let v = sess.vector(&[1, 2, 3, 4]);
/// assert_eq!(v.shape(), TensorShape::Vector { len: 4 });
/// assert_eq!(v.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorHandle {
    id: u32,
    gen: u32,
    shape: TensorShape,
}

impl TensorHandle {
    /// The logical shape of the tensor.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Total element count (see [`TensorShape::len`]).
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the tensor is empty (never true for live handles).
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }
}

/// Where a resident tensor's device copy lives and how to decode it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Resident {
    /// The MRAM buffer holding the copy.
    buf: u32,
    /// Per-DPU elements of that buffer (the gather chunk).
    gather_chunk: usize,
    /// How the buffer contents map back to the logical tensor.
    layout: ResidentLayout,
}

/// Decoding rule of a resident buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ResidentLayout {
    /// Per-DPU chunks of the logical vector, zero-padded tail — directly
    /// consumable by any same-chunk scatter input.
    Chunked,
    /// The same logical value replicated to every DPU (broadcast inputs).
    Replicated,
    /// Raw select output: `(count, values…)` records per DPU.
    SelectRaw {
        threshold: i32,
        len: usize,
        chunk: usize,
    },
    /// Per-DPU reduction partials (fold the first `used` in DPU order).
    ReducePartials { op: BinOp, used: usize },
    /// Per-DPU privatised histograms.
    HistPartials {
        bins: usize,
        len: usize,
        chunk: usize,
    },
    /// Per-DPU time-series profiles.
    Profiles { used: usize, positions: usize },
}

/// Device-buffer key of one tensor role: a scatter target of `chunk`
/// elements per DPU, or a broadcast target of the full (replicated) length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufKey {
    Chunk(usize),
    Broadcast(usize),
}

impl BufKey {
    fn elems_per_dpu(&self) -> usize {
        match self {
            BufKey::Chunk(c) => *c,
            BufKey::Broadcast(l) => *l,
        }
    }
}

/// One tensor slot of the session.
#[derive(Debug, Default)]
struct Slot {
    gen: u32,
    shape: Option<TensorShape>,
    /// Host copy (valid when `host_valid`). Storage is retained across
    /// recycling so steady-state loops never re-allocate.
    host: Vec<i32>,
    host_valid: bool,
    /// Whether the resident device copy is current.
    device_valid: bool,
    resident: Option<Resident>,
    /// Whether the tensor may be consumed by further ops (select outputs
    /// have data-dependent length and are fetch-only).
    composable: bool,
    pinned: bool,
    /// Device buffers of this slot, keyed by role layout. Kept across
    /// recycling (same-shaped successors reuse the MRAM).
    bufs: Vec<(BufKey, u32)>,
    /// Raw gather scratch for decoding (reused across fetches).
    scratch: Vec<i32>,
}

/// One recorded graph op. `PartialEq` + `Copy` so the replay signature
/// check is a plain slice comparison with no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OpNode {
    kind: OpKindNode,
    inputs: [u32; 3],
    n_inputs: u8,
    output: u32,
}

impl OpNode {
    fn inputs(&self) -> &[u32] {
        &self.inputs[..self.n_inputs as usize]
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OpKindNode {
    Gemm {
        m: usize,
        k: usize,
        n: usize,
    },
    Gemv {
        rows: usize,
        cols: usize,
    },
    Elementwise {
        op: BinOp,
        len: usize,
    },
    Reduce {
        op: BinOp,
        len: usize,
    },
    Histogram {
        bins: usize,
        max_value: i32,
        len: usize,
    },
    Select {
        threshold: i32,
        len: usize,
    },
    TimeSeries {
        window: usize,
        len: usize,
    },
    BfsStep {
        vertices_per_dpu: usize,
        avg_degree: usize,
        used_dpus: usize,
    },
}

impl OpKindNode {
    /// The `cinm` dialect name of the op when the shard planner can plan it.
    fn plannable_name(&self) -> Option<&'static str> {
        match self {
            OpKindNode::Gemm { .. } => Some(cinm::GEMM),
            OpKindNode::Gemv { .. } => Some(cinm::GEMV),
            OpKindNode::Elementwise { op, .. } => Some(elementwise_op_name(*op)),
            OpKindNode::Reduce { .. } => Some(cinm::REDUCE),
            OpKindNode::Histogram { .. } => Some(cinm::HISTOGRAM),
            _ => None,
        }
    }

    fn shard_shape(&self) -> Option<ShardShape> {
        match *self {
            OpKindNode::Gemm { m, k, n } => Some(ShardShape::matmul(m, k, n)),
            OpKindNode::Gemv { rows, cols } => Some(ShardShape::matmul(rows, cols, 1)),
            OpKindNode::Elementwise { len, .. }
            | OpKindNode::Reduce { len, .. }
            | OpKindNode::Histogram { len, .. } => Some(ShardShape::streaming(len)),
            _ => None,
        }
    }
}

/// Per-op UPMEM geometry: expected input buffer keys, output buffer and its
/// resident layout, and the per-DPU kernel.
struct CnmGeometry {
    inputs: [BufKey; 3],
    out_chunk: usize,
    out_layout: ResidentLayout,
    kernel: DpuKernelKind,
}

fn cnm_geometry(node: &OpNode, dpus: usize) -> CnmGeometry {
    match node.kind {
        OpKindNode::Gemm { m, k, n } => {
            let rpd = m.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [
                    BufKey::Chunk(rpd * k),
                    BufKey::Broadcast(k * n),
                    BufKey::Chunk(0),
                ],
                out_chunk: rpd * n,
                out_layout: ResidentLayout::Chunked,
                kernel: DpuKernelKind::Gemm { m: rpd, k, n },
            }
        }
        OpKindNode::Gemv { rows, cols } => {
            let rpd = rows.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [
                    BufKey::Chunk(rpd * cols),
                    BufKey::Broadcast(cols),
                    BufKey::Chunk(0),
                ],
                out_chunk: rpd,
                out_layout: ResidentLayout::Chunked,
                kernel: DpuKernelKind::Gemv { rows: rpd, cols },
            }
        }
        OpKindNode::Elementwise { op, len } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(c), BufKey::Chunk(0)],
                out_chunk: c,
                out_layout: ResidentLayout::Chunked,
                kernel: DpuKernelKind::Elementwise { op, len: c },
            }
        }
        OpKindNode::Reduce { op, len } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: 1,
                out_layout: ResidentLayout::ReducePartials {
                    op,
                    used: len.div_ceil(c),
                },
                kernel: DpuKernelKind::Reduce { op, len: c },
            }
        }
        OpKindNode::Histogram {
            bins,
            max_value,
            len,
        } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: bins,
                out_layout: ResidentLayout::HistPartials {
                    bins,
                    len,
                    chunk: c,
                },
                kernel: DpuKernelKind::Histogram {
                    bins,
                    len: c,
                    max_value,
                },
            }
        }
        OpKindNode::Select { threshold, len } => {
            let c = len.div_ceil(dpus).max(1);
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: c + 1,
                out_layout: ResidentLayout::SelectRaw {
                    threshold,
                    len,
                    chunk: c,
                },
                kernel: DpuKernelKind::Select { len: c, threshold },
            }
        }
        OpKindNode::TimeSeries { window, len } => {
            let c = len.div_ceil(dpus).max(window);
            let positions = c - window + 1;
            CnmGeometry {
                inputs: [BufKey::Chunk(c), BufKey::Chunk(0), BufKey::Chunk(0)],
                out_chunk: positions,
                out_layout: ResidentLayout::Profiles {
                    used: len.div_ceil(c),
                    positions,
                },
                kernel: DpuKernelKind::TimeSeries { len: c, window },
            }
        }
        OpKindNode::BfsStep {
            vertices_per_dpu: vp,
            avg_degree,
            ..
        } => CnmGeometry {
            inputs: [
                BufKey::Chunk(vp + 1),
                BufKey::Chunk(vp * avg_degree),
                BufKey::Chunk(vp),
            ],
            out_chunk: vp,
            out_layout: ResidentLayout::Chunked,
            kernel: DpuKernelKind::BfsStep {
                vertices: vp,
                avg_degree,
            },
        },
    }
}

/// One compiled UPMEM command of a segment.
#[derive(Debug)]
enum CnmCmd {
    Scatter {
        slot: u32,
        buf: u32,
        chunk: usize,
    },
    Broadcast {
        slot: u32,
        buf: u32,
    },
    Zero {
        buf: u32,
    },
    Launch {
        spec: KernelSpec,
    },
    /// Sets the output slot's resident descriptor after its launch.
    SetOutput {
        slot: u32,
        resident: Resident,
    },
    /// Gathers the slot's resident buffer into its scratch (residency-off
    /// mode gathers every op output, mirroring the eager program).
    Gather {
        slot: u32,
        buf: u32,
        chunk: usize,
    },
    /// Decodes the slot's scratch into its host copy.
    Decode {
        slot: u32,
    },
}

/// One compiled execution step.
#[derive(Debug)]
enum Step {
    /// Gather + decode a resident tensor to the host (stream boundary).
    Materialize { slot: u32 },
    /// One hazard-tracked UPMEM command stream.
    Segment { cmds: Range<usize> },
    /// One shard-planned op dispatched across the device set.
    Planned { op: usize, split: ShardSplit },
}

/// Replay precondition of one external input slot.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Precond {
    slot: u32,
    gen: u32,
    host_valid: bool,
    device_valid: bool,
    resident: Option<Resident>,
}

#[derive(Debug, Default)]
struct Compiled {
    valid: bool,
    residency: bool,
    ops: Vec<OpNode>,
    preconds: Vec<Precond>,
    steps: Vec<Step>,
    cmds: Vec<CnmCmd>,
}

/// How one recovery attempt resumes execution.
#[derive(Debug, Clone, Copy)]
enum Recovery {
    /// The compiled plan is still valid: re-execute from the failed step.
    Resume,
    /// The graph was re-planned across the surviving devices into a new
    /// compiled plan: execute it from the start.
    Replanned(usize),
}

/// The lazy graph execution session (see the [module documentation](self)).
#[derive(Debug)]
pub struct Session {
    backend: ShardedBackend,
    planner: CachedShardPlanner,
    residency: bool,
    slots: Vec<Slot>,
    free: VecDeque<u32>,
    ops: Vec<OpNode>,
    live_temps: Vec<u32>,
    /// Small ring of memoized compiled plans (see `COMPILED_CACHE`).
    compiled: Vec<Compiled>,
    compile_cursor: usize,
    runs: u64,
    replays: u64,
    /// Session-level recovery counters (re-plans, degradations); the
    /// backends' own retry counters are merged in by
    /// [`fault_stats`](Session::fault_stats).
    fault_stats: FaultStats,
}

impl Session {
    /// Device failures the session tries to recover from before giving up on
    /// a run. Each attempt either re-executes (transient storms, a swapped-in
    /// spare) or re-plans around a freshly unhealthy device; a graph that
    /// keeps failing past this is surfaced as an error.
    const MAX_RECOVERY_ATTEMPTS: u32 = 8;

    /// Creates a session over the three devices described by `options`; the
    /// shard planner is assembled from the devices' own cost hookups.
    pub fn new(options: SessionOptions) -> Self {
        let SessionOptions {
            mut sharded,
            policy,
            residency,
            mut upmem_config,
            fault,
        } = options;
        if let Some(fault) = fault {
            // One schedule drives both simulators (independent event streams:
            // the injectors key draws on their own event counters).
            let cfg = upmem_config
                .take()
                .unwrap_or_else(|| UpmemConfig::with_ranks(sharded.ranks));
            upmem_config = Some(cfg.with_fault(fault.clone()));
            let cim_cfg = sharded.cim_config.take().unwrap_or_default();
            sharded.cim_config = Some(cim_cfg.with_fault(fault));
        }
        let backend = match upmem_config {
            Some(cfg) => ShardedBackend::with_upmem_config(cfg, sharded),
            None => ShardedBackend::new(sharded),
        };
        let mut planner = ShardPlanner::new().with_policy(policy);
        for device in ShardDevice::ALL {
            planner.register_device(backend.device(device));
        }
        Session {
            backend,
            planner: CachedShardPlanner::new(planner),
            residency,
            slots: Vec::new(),
            free: VecDeque::new(),
            ops: Vec::new(),
            live_temps: Vec::new(),
            compiled: Vec::new(),
            compile_cursor: 0,
            runs: 0,
            replays: 0,
            fault_stats: FaultStats::default(),
        }
    }

    // -- tensors ------------------------------------------------------------

    fn alloc_slot(&mut self, shape: TensorShape, composable: bool) -> TensorHandle {
        assert!(!shape.is_empty(), "session tensors must be non-empty");
        let id = match self.free.pop_front() {
            Some(id) => {
                let slot = &mut self.slots[id as usize];
                slot.shape = Some(shape);
                slot.host.clear();
                slot.host_valid = false;
                slot.device_valid = false;
                slot.resident = None;
                slot.composable = composable;
                slot.pinned = false;
                id
            }
            None => {
                let id = self.slots.len() as u32;
                self.slots.push(Slot {
                    shape: Some(shape),
                    composable,
                    ..Slot::default()
                });
                id
            }
        };
        TensorHandle {
            id,
            gen: self.slots[id as usize].gen,
            shape,
        }
    }

    fn check(&self, h: TensorHandle) -> &Slot {
        let slot = &self.slots[h.id as usize];
        assert_eq!(
            slot.gen, h.gen,
            "stale tensor handle: op outputs are recycled at the next run() \
             unless pinned or used as inputs"
        );
        slot
    }

    fn check_input(&self, h: TensorHandle) {
        let slot = self.check(h);
        assert!(
            slot.composable,
            "select outputs have data-dependent length and can only be fetched"
        );
    }

    /// Creates a vector tensor from host data.
    pub fn vector(&mut self, data: &[i32]) -> TensorHandle {
        let h = self.alloc_slot(TensorShape::Vector { len: data.len() }, true);
        self.write(h, data);
        h
    }

    /// Creates a row-major matrix tensor from host data.
    pub fn matrix(&mut self, data: &[i32], rows: usize, cols: usize) -> TensorHandle {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        let h = self.alloc_slot(TensorShape::Matrix { rows, cols }, true);
        self.write(h, data);
        h
    }

    /// Overwrites a tensor's host contents (device copies are invalidated;
    /// the next run re-transfers it). The data length must match the shape.
    pub fn write(&mut self, h: TensorHandle, data: &[i32]) {
        self.check(h);
        assert_eq!(data.len(), h.shape.len(), "write length mismatch");
        let slot = &mut self.slots[h.id as usize];
        slot.host.clear();
        slot.host.extend_from_slice(data);
        slot.host_valid = true;
        slot.device_valid = false;
    }

    /// Pins an op output so it survives future runs even when unreferenced.
    pub fn pin(&mut self, h: TensorHandle) {
        self.check(h);
        self.slots[h.id as usize].pinned = true;
    }

    /// Reinterprets a tensor under a different shape of the same element
    /// count (e.g. an element-wise result viewed as the next layer's matrix).
    /// The returned handle aliases the same tensor — residency is preserved.
    pub fn reshape(&mut self, h: TensorHandle, shape: TensorShape) -> TensorHandle {
        self.check_input(h);
        assert_eq!(h.shape.len(), shape.len(), "reshape must preserve length");
        TensorHandle {
            id: h.id,
            gen: h.gen,
            shape,
        }
    }

    // -- graph building -----------------------------------------------------

    fn push_op(
        &mut self,
        kind: OpKindNode,
        inputs: &[TensorHandle],
        out_shape: TensorShape,
        composable: bool,
    ) -> TensorHandle {
        for &h in inputs {
            self.check_input(h);
        }
        let out = self.alloc_slot(out_shape, composable);
        let mut ids = [0u32; 3];
        for (slot, h) in ids.iter_mut().zip(inputs) {
            *slot = h.id;
        }
        self.ops.push(OpNode {
            kind,
            inputs: ids,
            n_inputs: inputs.len() as u8,
            output: out.id,
        });
        out
    }

    fn vec_len(h: TensorHandle) -> usize {
        match h.shape() {
            TensorShape::Vector { len } => len,
            other => panic!("expected a vector tensor, got {other:?}"),
        }
    }

    /// Records `C[m×n] = A[m×k] × B[k×n]`.
    pub fn gemm(&mut self, a: TensorHandle, b: TensorHandle) -> TensorHandle {
        let (TensorShape::Matrix { rows: m, cols: k }, TensorShape::Matrix { rows: kb, cols: n }) =
            (a.shape(), b.shape())
        else {
            panic!("gemm expects two matrix tensors");
        };
        assert_eq!(k, kb, "gemm inner dimensions must match");
        self.push_op(
            OpKindNode::Gemm { m, k, n },
            &[a, b],
            TensorShape::Matrix { rows: m, cols: n },
            true,
        )
    }

    /// Records `y[rows] = A[rows×cols] × x[cols]`.
    pub fn gemv(&mut self, a: TensorHandle, x: TensorHandle) -> TensorHandle {
        let TensorShape::Matrix { rows, cols } = a.shape() else {
            panic!("gemv expects a matrix tensor");
        };
        assert_eq!(Self::vec_len(x), cols, "gemv vector length mismatch");
        self.push_op(
            OpKindNode::Gemv { rows, cols },
            &[a, x],
            TensorShape::Vector { len: rows },
            true,
        )
    }

    /// Records an element-wise binary op over two equal-length tensors.
    pub fn elementwise(&mut self, op: BinOp, a: TensorHandle, b: TensorHandle) -> TensorHandle {
        let len = a.len();
        assert_eq!(len, b.len(), "element-wise operands must match");
        self.push_op(
            OpKindNode::Elementwise { op, len },
            &[a, b],
            TensorShape::Vector { len },
            true,
        )
    }

    /// Records a reduction to a scalar tensor.
    pub fn reduce(&mut self, op: BinOp, a: TensorHandle) -> TensorHandle {
        let len = a.len();
        self.push_op(
            OpKindNode::Reduce { op, len },
            &[a],
            TensorShape::Scalar,
            true,
        )
    }

    /// Records a histogram over `bins` bins of values in `[0, max_value)`.
    pub fn histogram(&mut self, a: TensorHandle, bins: usize, max_value: i32) -> TensorHandle {
        assert!(bins > 0, "histogram needs at least one bin");
        let len = a.len();
        self.push_op(
            OpKindNode::Histogram {
                bins,
                max_value,
                len,
            },
            &[a],
            TensorShape::Vector { len: bins },
            true,
        )
    }

    /// Records a database select (`> threshold`). The output's shape carries
    /// the input length as an *upper bound*; the fetched vector has the
    /// data-dependent actual length, and the handle cannot feed further ops.
    pub fn select(&mut self, a: TensorHandle, threshold: i32) -> TensorHandle {
        let len = a.len();
        self.push_op(
            OpKindNode::Select { threshold, len },
            &[a],
            TensorShape::Vector { len },
            false,
        )
    }

    /// Records a partitioned time-series distance profile (each DPU profiles
    /// its chunk against the chunk's leading window).
    pub fn time_series(&mut self, a: TensorHandle, window: usize) -> TensorHandle {
        let len = a.len();
        assert!(window > 0 && window <= len, "invalid time-series window");
        let dpus = self.backend.num_dpus();
        let chunk = len.div_ceil(dpus).max(window);
        let positions = chunk - window + 1;
        let used = len.div_ceil(chunk);
        self.push_op(
            OpKindNode::TimeSeries { window, len },
            &[a],
            TensorShape::Vector {
                len: used * positions,
            },
            true,
        )
    }

    /// Records one BFS frontier expansion over partitioned CSR fragments
    /// (`rows`/`cols`/`frontier` laid out per partition, as
    /// [`crate::runner::bfs_fragments`] builds them). The output frontier
    /// has the same per-partition layout as the input frontier, so iterated
    /// BFS keeps the frontier device-resident across [`Session::run`] calls.
    pub fn bfs_step(
        &mut self,
        rows: TensorHandle,
        cols: TensorHandle,
        frontier: TensorHandle,
        vertices_per_dpu: usize,
        avg_degree: usize,
        used_dpus: usize,
    ) -> TensorHandle {
        assert_eq!(
            Self::vec_len(rows),
            used_dpus * (vertices_per_dpu + 1),
            "row-offset fragment length mismatch"
        );
        assert_eq!(
            Self::vec_len(cols),
            used_dpus * vertices_per_dpu * avg_degree,
            "column fragment length mismatch"
        );
        assert_eq!(
            Self::vec_len(frontier),
            used_dpus * vertices_per_dpu,
            "frontier length mismatch"
        );
        self.push_op(
            OpKindNode::BfsStep {
                vertices_per_dpu,
                avg_degree,
                used_dpus,
            },
            &[rows, cols, frontier],
            TensorShape::Vector {
                len: used_dpus * vertices_per_dpu,
            },
            true,
        )
    }

    // -- compilation --------------------------------------------------------

    /// Finds a memoized compiled plan matching the recorded graph and the
    /// current residency preconditions of its external inputs.
    ///
    /// Two plans are cached because temporaries of consecutive runs cannot
    /// share slot ids (the previous run's outputs stay fetchable while the
    /// next graph is built), so a steady loop alternates between two id-sets
    /// — each gets its own memoized plan.
    fn find_compiled(&self) -> Option<usize> {
        self.compiled.iter().position(|c| {
            c.valid
                && c.residency == self.residency
                && c.ops == self.ops
                && c.preconds.iter().all(|p| {
                    let slot = &self.slots[p.slot as usize];
                    slot.gen == p.gen
                        && slot.host_valid == p.host_valid
                        && slot.device_valid == p.device_valid
                        && slot.resident == p.resident
                })
        })
    }

    /// Recycles temporaries of the previous run that the current graph does
    /// not reference (and that are not pinned). Their handles go stale;
    /// slot storage (host vector, device buffers) is retained for reuse.
    fn recycle_unreferenced_temps(&mut self) {
        let mut live = std::mem::take(&mut self.live_temps);
        let slots = &mut self.slots;
        let free = &mut self.free;
        let ops = &self.ops;
        live.retain(|&t| {
            let referenced = ops.iter().any(|o| o.inputs().contains(&t));
            let slot = &mut slots[t as usize];
            if slot.pinned || referenced {
                true
            } else {
                slot.gen = slot.gen.wrapping_add(1);
                slot.host_valid = false;
                slot.device_valid = false;
                slot.resident = None;
                free.push_back(t);
                false
            }
        });
        self.live_temps = live;
    }

    fn ensure_buf(&mut self, slot: u32, key: BufKey) -> u32 {
        let s = &self.slots[slot as usize];
        if let Some(&(_, buf)) = s.bufs.iter().find(|(k, _)| *k == key) {
            return buf;
        }
        let buf = self
            .backend
            .upmem_mut()
            .system_mut()
            .alloc_buffer(key.elems_per_dpu())
            .expect("MRAM alloc");
        self.slots[slot as usize].bufs.push((key, buf));
        buf
    }

    /// Compiles `self.ops` into `self.compiled` (placement, buffers,
    /// per-segment command lists). No command is executed here; buffer
    /// allocation is the only device side effect (untimed, like the eager
    /// backends' context allocation).
    /// Discards a failed compilation: the graph's output slots are recycled
    /// (their handles go stale — the outputs never materialised) and the
    /// cache entry is cleared, so retrying under a fixed policy neither
    /// leaks slots nor replays a half-built plan. Device buffers already
    /// allocated stay attached to the recycled slots and are reused by
    /// their next tenants, exactly like normal recycling.
    fn abort_compile(&mut self, idx: usize) {
        let failed = std::mem::take(&mut self.compiled[idx]);
        for op in &failed.ops {
            let slot = &mut self.slots[op.output as usize];
            slot.gen = slot.gen.wrapping_add(1);
            slot.host_valid = false;
            slot.device_valid = false;
            slot.resident = None;
            self.free.push_back(op.output);
        }
    }

    fn compile(&mut self) -> Result<usize, ShardError> {
        let dpus = self.backend.num_dpus();
        let residency = self.residency;
        let ops = std::mem::take(&mut self.ops);
        // Pick the cache entry to (re)compile into: an entry holding a stale
        // plan of this exact op sequence is replaced in place (its residency
        // preconditions went stale), otherwise round-robin.
        const COMPILED_CACHE: usize = 2;
        let idx = match self.compiled.iter().position(|c| c.ops == ops) {
            Some(i) => i,
            None if self.compiled.len() < COMPILED_CACHE => {
                self.compiled.push(Compiled::default());
                self.compiled.len() - 1
            }
            None => {
                self.compile_cursor = (self.compile_cursor + 1) % COMPILED_CACHE;
                self.compile_cursor
            }
        };
        self.compiled[idx] = Compiled {
            valid: false,
            residency,
            ops,
            preconds: Vec::new(),
            steps: Vec::new(),
            cmds: Vec::new(),
        };
        // Virtual per-slot state evolved during compilation (the actual
        // slots are only updated at execution time).
        let mut virt: Vec<(bool, Option<Resident>)> = self
            .slots
            .iter()
            .map(|s| (s.host_valid, s.device_valid.then_some(s.resident).flatten()))
            .collect();
        let mut seen_inputs: Vec<u32> = Vec::new();
        let mut seg_start = 0usize;
        let mut host_written_in_seg: Vec<u32> = Vec::new();

        macro_rules! flush_segment {
            ($self:ident, $idx:ident, $seg_start:ident, $hw:ident) => {
                let end = $self.compiled[$idx].cmds.len();
                if end > $seg_start {
                    $self.compiled[$idx].steps.push(Step::Segment {
                        cmds: $seg_start..end,
                    });
                }
                $seg_start = end;
                $hw.clear();
            };
        }

        for oi in 0..self.compiled[idx].ops.len() {
            let node = self.compiled[idx].ops[oi];
            // Record replay preconditions for external inputs (slots not
            // produced earlier in this graph).
            for &inp in node.inputs() {
                let produced_here = self.compiled[idx].ops[..oi].iter().any(|o| o.output == inp);
                if !produced_here && !seen_inputs.contains(&inp) {
                    seen_inputs.push(inp);
                    let slot = &self.slots[inp as usize];
                    self.compiled[idx].preconds.push(Precond {
                        slot: inp,
                        gen: slot.gen,
                        host_valid: slot.host_valid,
                        device_valid: slot.device_valid,
                        resident: slot.resident,
                    });
                }
            }

            let geometry = cnm_geometry(&node, dpus);
            // Placement: residency-first for chains, otherwise the planner.
            let resident_chain = residency
                && matches!(
                    self.planner.planner().policy,
                    ShardPolicy::Auto | ShardPolicy::Single(Target::Cnm)
                )
                // Plans built after a grid failure must not route chains
                // back onto the unhealthy device.
                && self.backend.device(ShardDevice::Cnm).is_healthy()
                && node.inputs().iter().enumerate().any(|(pos, &t)| {
                    resident_buf(&virt[t as usize].1, geometry.inputs[pos]).is_some()
                });
            let placement = if node.kind.plannable_name().is_none() || resident_chain {
                None // UPMEM segment
            } else {
                let name = node.kind.plannable_name().unwrap();
                let shape = node.kind.shard_shape().unwrap();
                let split = match self.planner.split_for(name, shape) {
                    Ok(split) => split,
                    Err(e) => {
                        self.abort_compile(idx);
                        return Err(e);
                    }
                };
                if split.cnm == split.total() {
                    None // single-device CNM: the resident segment path
                } else {
                    Some(split)
                }
            };

            match placement {
                Some(split) => {
                    flush_segment!(self, idx, seg_start, host_written_in_seg);
                    for &inp in node.inputs() {
                        if !virt[inp as usize].0 {
                            self.compiled[idx]
                                .steps
                                .push(Step::Materialize { slot: inp });
                            virt[inp as usize].0 = true;
                        }
                    }
                    self.compiled[idx]
                        .steps
                        .push(Step::Planned { op: oi, split });
                    virt[node.output as usize] = (true, None);
                }
                None => {
                    // UPMEM segment op.
                    let mut input_bufs: Vec<u32> = Vec::with_capacity(node.inputs().len());
                    for (pos, &inp) in node.inputs().iter().enumerate() {
                        let key = geometry.inputs[pos];
                        if let Some(buf) = resident_buf(&virt[inp as usize].1, key) {
                            input_bufs.push(buf);
                            continue;
                        }
                        if !virt[inp as usize].0 {
                            // Host copy needed but the tensor is resident in
                            // an incompatible layout: materialize first.
                            flush_segment!(self, idx, seg_start, host_written_in_seg);
                            self.compiled[idx]
                                .steps
                                .push(Step::Materialize { slot: inp });
                            virt[inp as usize].0 = true;
                        }
                        if host_written_in_seg.contains(&inp) {
                            // The payload is produced by a decode earlier in
                            // this segment: a stream would record a stale
                            // borrow, so cut the segment here.
                            flush_segment!(self, idx, seg_start, host_written_in_seg);
                        }
                        let buf = self.ensure_buf(inp, key);
                        match key {
                            BufKey::Chunk(c) => {
                                self.compiled[idx].cmds.push(CnmCmd::Scatter {
                                    slot: inp,
                                    buf,
                                    chunk: c,
                                });
                                virt[inp as usize].1 = residency.then_some(Resident {
                                    buf,
                                    gather_chunk: c,
                                    layout: ResidentLayout::Chunked,
                                });
                            }
                            BufKey::Broadcast(l) => {
                                self.compiled[idx]
                                    .cmds
                                    .push(CnmCmd::Broadcast { slot: inp, buf });
                                virt[inp as usize].1 = residency.then_some(Resident {
                                    buf,
                                    gather_chunk: l,
                                    layout: ResidentLayout::Replicated,
                                });
                            }
                        }
                        input_bufs.push(buf);
                    }
                    let out = node.output;
                    let out_buf = self.ensure_buf(out, BufKey::Chunk(geometry.out_chunk));
                    self.compiled[idx].cmds.push(CnmCmd::Zero { buf: out_buf });
                    let spec = self.backend.upmem().kernel_spec(
                        geometry.kernel.clone(),
                        input_bufs,
                        out_buf,
                    );
                    self.compiled[idx].cmds.push(CnmCmd::Launch { spec });
                    let resident = Resident {
                        buf: out_buf,
                        gather_chunk: geometry.out_chunk,
                        layout: geometry.out_layout,
                    };
                    self.compiled[idx].cmds.push(CnmCmd::SetOutput {
                        slot: out,
                        resident,
                    });
                    virt[out as usize] = (false, residency.then_some(resident));
                    if !residency {
                        // Mirror the eager program: gather and decode every
                        // op output immediately.
                        self.compiled[idx].cmds.push(CnmCmd::Gather {
                            slot: out,
                            buf: out_buf,
                            chunk: geometry.out_chunk,
                        });
                        self.compiled[idx].cmds.push(CnmCmd::Decode { slot: out });
                        virt[out as usize].0 = true;
                        host_written_in_seg.push(out);
                    }
                }
            }
        }
        flush_segment!(self, idx, seg_start, host_written_in_seg);
        let _ = seg_start; // the final flush leaves the cursor at the end
        self.compiled[idx].valid = true;
        Ok(idx)
    }

    // -- execution ----------------------------------------------------------

    /// Executes the recorded graph: compiles it (or replays the memoized
    /// compilation when the graph and its residency preconditions are
    /// unchanged) and runs every step in program order. After `run`,
    /// op-output handles are fetchable until the next `run`.
    ///
    /// Device failures are recovered in place (up to
    /// 8 attempts per run):
    /// transient storms re-execute from the failed step, a permanently
    /// failed device is either dropped from the shard plan (the graph is
    /// re-planned across the surviving devices, degrading to host-only) or
    /// — when the graph needs the UPMEM grid itself — replaced by a spare
    /// carrying the rescued memory image. Recovered runs stay bit-identical
    /// to a fault-free run; [`fault_stats`](Self::fault_stats) counts the
    /// retries, re-plans and degradations taken.
    ///
    /// # Errors
    ///
    /// Propagates shard-planning errors (infeasible forced policies) and
    /// device failures that outlive the recovery budget; the recorded graph
    /// is discarded and the session stays usable.
    pub fn run(&mut self) -> Result<(), ShardError> {
        if self.ops.is_empty() {
            return Ok(());
        }
        self.recycle_unreferenced_temps();
        let (mut idx, mut replay) = match self.find_compiled() {
            Some(idx) => {
                self.replays += 1;
                self.ops.clear();
                (idx, true)
            }
            None => match self.compile() {
                Ok(idx) => (idx, false),
                Err(e) => {
                    self.ops.clear();
                    return Err(e);
                }
            },
        };
        self.runs += 1;
        let mut from = 0usize;
        let mut attempts = 0u32;
        let outcome = loop {
            match self.execute(idx, replay, from) {
                Ok(()) => break Ok(()),
                Err((step, error)) => {
                    // Panics and validation errors are bugs, not faults: no
                    // amount of re-planning makes them succeed.
                    let recoverable = matches!(error, ShardError::DeviceFault { .. })
                        && attempts < Self::MAX_RECOVERY_ATTEMPTS;
                    if !recoverable {
                        break Err(error);
                    }
                    attempts += 1;
                    let device = error
                        .failed_device()
                        .expect("device faults name their device");
                    match self.recover(device, idx) {
                        Ok(Recovery::Resume) => {
                            // The device set is whole again (the transient
                            // storm passed, or a spare was swapped in):
                            // re-execute from the failed step — every step
                            // before it committed, and failed steps commit
                            // nothing.
                            from = step;
                            replay = true;
                        }
                        Ok(Recovery::Replanned(new_idx)) => {
                            idx = new_idx;
                            from = 0;
                            replay = false;
                        }
                        Err(e) => break Err(e),
                    }
                }
            }
        };
        // Track this graph's outputs as live temporaries (unless a failed
        // re-plan already discarded the graph and recycled them).
        if let Some(compiled) = self.compiled.get(idx) {
            for oi in 0..compiled.ops.len() {
                let out = compiled.ops[oi].output;
                if !self.live_temps.contains(&out) {
                    self.live_temps.push(out);
                }
            }
        }
        outcome
    }

    /// Executes the compiled plan `idx` from step `from`; a failure reports
    /// the step it happened in so recovery can resume there.
    fn execute(
        &mut self,
        idx: usize,
        replay: bool,
        from: usize,
    ) -> Result<(), (usize, ShardError)> {
        let residency = self.residency;
        let dpus = self.backend.num_dpus();
        let Session {
            backend,
            slots,
            compiled,
            ..
        } = self;
        let compiled = &compiled[idx];
        for (si, step) in compiled.steps.iter().enumerate().skip(from) {
            let step_result = match step {
                Step::Materialize { slot } => {
                    materialize_slot(backend, &mut slots[*slot as usize], dpus)
                }
                Step::Segment { cmds } => {
                    let cmds = &compiled.cmds[cmds.clone()];
                    if replay {
                        run_segment_direct(backend, slots, cmds, residency, dpus)
                    } else {
                        run_segment_stream(backend, slots, cmds, residency, dpus)
                    }
                }
                Step::Planned { op, split } => {
                    run_planned(backend, slots, &compiled.ops[*op], split)
                }
            };
            if let Err(e) = step_result {
                return Err((si, e));
            }
        }
        Ok(())
    }

    /// Recovers from one device failure. The failed step committed nothing
    /// (streams validate every command before executing any, single
    /// commands are transactional, and shard dispatch discards partial
    /// merges), so the slots hold the state of the last completed step and
    /// re-execution is safe — external inputs keep their host copies, and
    /// every transfer/launch rewrites its own buffers with the same data.
    fn recover(&mut self, device: ShardDevice, idx: usize) -> Result<Recovery, ShardError> {
        self.fault_stats.replans += 1;
        if self.backend.device(device).is_healthy() {
            // A transient fault outlived the per-command retry budget but
            // the device is still below its failure limit: re-execute.
            return Ok(Recovery::Resume);
        }
        // The device is out of service (permanent fault, or a transient
        // storm past the consecutive-failure limit).
        self.fault_stats.degradations += 1;
        if device == ShardDevice::Cnm && self.graph_needs_cnm(idx) {
            // The graph cannot leave the grid (non-plannable ops, or a
            // CNM-forced policy): swap in a spare. The replacement carries
            // the failed grid's memory image — resident tensors survive
            // (the fault model kills compute, not MRAM) — so the compiled
            // plan resumes unchanged.
            let spare = self.backend.upmem().system().fault_free_clone();
            *self.backend.upmem_mut().system_mut() = spare;
            self.backend.device_mut(ShardDevice::Cnm).reset_health();
            return Ok(Recovery::Resume);
        }
        // Re-plan the graph across the surviving devices (degrading to
        // host-only when the host is the last one standing). Compiled plans
        // embed shard splits of the old device set, so all of them go.
        self.rebuild_planner();
        let ops = self.compiled[idx].ops.clone();
        self.compiled.clear();
        self.compile_cursor = 0;
        self.ops = ops;
        match self.compile() {
            Ok(new_idx) => Ok(Recovery::Replanned(new_idx)),
            Err(e) => {
                self.ops.clear();
                Err(e)
            }
        }
    }

    /// Whether plan `idx` must execute on the UPMEM grid: it contains ops
    /// outside the plannable subset (their only lowering is the resident
    /// UPMEM segment path), or the placement policy forces CNM work.
    fn graph_needs_cnm(&self, idx: usize) -> bool {
        let forced = match self.planner.planner().policy {
            ShardPolicy::Single(Target::Cnm) => true,
            ShardPolicy::Fractions(f) => f[0] > 0.0,
            _ => false,
        };
        forced
            || self.compiled[idx]
                .ops
                .iter()
                .any(|op| op.kind.plannable_name().is_none())
    }

    /// Rebuilds the shard planner over the devices that are still healthy,
    /// keeping the policy and granularity. Unhealthy devices simply stop
    /// being registered, so `Auto` plans route their work to the survivors.
    fn rebuild_planner(&mut self) {
        let old = self.planner.planner();
        let mut planner = ShardPlanner::new().with_policy(old.policy);
        planner.granularity = old.granularity;
        for device in ShardDevice::ALL {
            let d = self.backend.device(device);
            if d.is_healthy() {
                planner.register_device(d);
            }
        }
        self.planner.set_planner(planner);
    }

    // -- results ------------------------------------------------------------

    /// Fetches a tensor to the host, materialising it from its device copy
    /// if needed — **the only point data returns to the host**. For select
    /// outputs the returned vector has the data-dependent actual length.
    pub fn fetch(&mut self, h: TensorHandle) -> Vec<i32> {
        let mut out = Vec::new();
        self.fetch_into(h, &mut out);
        out
    }

    /// The allocation-reusing form of [`Session::fetch`]: the result
    /// replaces the contents of `out` (a vector reused across fetches of the
    /// same shape never re-allocates).
    pub fn fetch_into(&mut self, h: TensorHandle, out: &mut Vec<i32>) {
        self.check(h);
        let dpus = self.backend.num_dpus();
        let slot = &mut self.slots[h.id as usize];
        if !slot.host_valid {
            assert!(
                slot.device_valid,
                "tensor has no valid copy; run() the graph that produces it first"
            );
            // Rescue gathers are pure transfers: the fault model never fails
            // them permanently, and transients are retried by the backend.
            materialize_slot(&mut self.backend, slot, dpus)
                .expect("rescue gather outlived the transient retry budget");
        }
        out.clear();
        out.extend_from_slice(&slot.host);
    }

    /// Fetches a scalar tensor (reduction results).
    pub fn fetch_scalar(&mut self, h: TensorHandle) -> i32 {
        assert_eq!(h.shape(), TensorShape::Scalar, "not a scalar tensor");
        self.check(h);
        let dpus = self.backend.num_dpus();
        let slot = &mut self.slots[h.id as usize];
        if !slot.host_valid {
            assert!(slot.device_valid, "tensor has no valid copy");
            materialize_slot(&mut self.backend, slot, dpus)
                .expect("rescue gather outlived the transient retry budget");
        }
        slot.host[0]
    }

    // -- introspection ------------------------------------------------------

    /// Accumulated UPMEM simulator statistics (transfers, kernel time) of
    /// everything this session executed on the grid.
    pub fn upmem_stats(&self) -> &SystemStats {
        self.backend.upmem().stats()
    }

    /// Statistics of the shard-dispatched (multi-device) steps.
    pub fn shard_stats(&self) -> &cinm_lowering::ShardStats {
        self.backend.stats()
    }

    /// The wrapped device set.
    pub fn backend(&self) -> &ShardedBackend {
        &self.backend
    }

    /// Number of DPUs in the UPMEM grid.
    pub fn num_dpus(&self) -> usize {
        self.backend.num_dpus()
    }

    /// Resets all device statistics (the compiled plan stays valid).
    pub fn reset_stats(&mut self) {
        self.backend.reset_stats();
    }

    /// Replaces the placement policy (invalidates the compiled plan and the
    /// planner's memoized plans).
    pub fn set_policy(&mut self, policy: ShardPolicy) {
        self.planner.set_policy(policy);
        self.compiled.clear();
    }

    /// How many times `run()` executed a graph / replayed a memoized
    /// compilation. In a steady serving loop `replays` trails `runs` by the
    /// (at most three) warm-up compilations.
    pub fn run_counts(&self) -> (u64, u64) {
        (self.runs, self.replays)
    }

    /// Cumulative fault-tolerance counters of everything this session
    /// executed: the backends' per-command retries and simulated backoff,
    /// permanent faults observed, and the session's own re-plans and
    /// degradations. All zero on a fault-free run.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.fault_stats;
        stats.merge(&self.backend.upmem().fault_stats());
        stats.merge(&self.backend.cim_backend().fault_stats());
        stats
    }
}

/// The resident buffer satisfying a role key, if layouts are compatible.
fn resident_buf(resident: &Option<Resident>, key: BufKey) -> Option<u32> {
    match (resident, key) {
        (Some(r), BufKey::Chunk(c))
            if r.layout == ResidentLayout::Chunked && r.gather_chunk == c =>
        {
            Some(r.buf)
        }
        (Some(r), BufKey::Broadcast(l))
            if r.layout == ResidentLayout::Replicated && r.gather_chunk == l =>
        {
            Some(r.buf)
        }
        _ => None,
    }
}

/// Converts a simulator error of the session's direct UPMEM path into the
/// typed shard error, recording the failure on the CNM device's health (the
/// session bypasses `Device::submit`, which would otherwise record it).
/// Non-fault errors are session/compiler invariant violations and stay
/// loud panics, exactly as before the fault layer.
fn cnm_failure(backend: &mut ShardedBackend, context: &str, e: SimError) -> ShardError {
    if e.fault_kind().is_none() {
        panic!("{context}: {e}");
    }
    let permanent = e.is_permanent_fault();
    backend.device_mut(ShardDevice::Cnm).note_failure(permanent);
    ShardError::DeviceFault {
        device: ShardDevice::Cnm,
        permanent,
        message: e.to_string(),
    }
}

/// Gathers a resident tensor and decodes it into the slot's host copy.
fn materialize_slot(
    backend: &mut ShardedBackend,
    slot: &mut Slot,
    dpus: usize,
) -> Result<(), ShardError> {
    let resident = slot.resident.expect("materialize needs a resident copy");
    let mut scratch = std::mem::take(&mut slot.scratch);
    let gathered = backend
        .upmem_mut()
        .try_op(|sys| sys.gather_i32_into(resident.buf, resident.gather_chunk, &mut scratch));
    slot.scratch = scratch;
    if let Err(e) = gathered {
        return Err(cnm_failure(backend, "resident gather", e));
    }
    decode_slot(slot, dpus);
    Ok(())
}

/// Decodes `slot.scratch` (a raw gather of the resident buffer) into the
/// logical host value, using the single decode implementations shared with
/// the eager backend.
fn decode_slot(slot: &mut Slot, dpus: usize) {
    let resident = slot.resident.expect("decode needs a resident descriptor");
    let logical = slot.shape.expect("live slot has a shape").len();
    let host = &mut slot.host;
    host.clear();
    match resident.layout {
        ResidentLayout::Chunked | ResidentLayout::Replicated => {
            host.extend_from_slice(&slot.scratch[..logical]);
        }
        ResidentLayout::SelectRaw {
            threshold,
            len,
            chunk,
        } => decode_select_into(&slot.scratch, chunk, len, threshold, host),
        ResidentLayout::ReducePartials { op, used } => {
            host.push(fold_reduce_partials(op, &slot.scratch, used));
        }
        ResidentLayout::HistPartials { bins, len, chunk } => {
            merge_histogram_partials_into(&slot.scratch, bins, len, chunk, dpus, host);
        }
        ResidentLayout::Profiles { used, positions } => {
            host.extend_from_slice(&slot.scratch[..used * positions]);
        }
    }
    slot.host_valid = true;
}

/// Applies the state effect of one command to its slot (shared by both
/// execution modes; runs in command order).
fn apply_effect(slots: &mut [Slot], cmd: &CnmCmd, residency: bool) {
    match cmd {
        CnmCmd::Scatter { slot, buf, chunk } => {
            let s = &mut slots[*slot as usize];
            s.resident = Some(Resident {
                buf: *buf,
                gather_chunk: *chunk,
                layout: ResidentLayout::Chunked,
            });
            s.device_valid = residency;
        }
        CnmCmd::Broadcast { slot, buf } => {
            let s = &mut slots[*slot as usize];
            let len = s.host.len();
            s.resident = Some(Resident {
                buf: *buf,
                gather_chunk: len,
                layout: ResidentLayout::Replicated,
            });
            s.device_valid = residency;
        }
        CnmCmd::SetOutput { slot, resident } => {
            let s = &mut slots[*slot as usize];
            s.resident = Some(*resident);
            s.device_valid = residency;
            s.host_valid = false;
        }
        CnmCmd::Zero { .. } | CnmCmd::Launch { .. } | CnmCmd::Gather { .. } => {}
        CnmCmd::Decode { .. } => {} // decode sets host_valid itself
    }
}

/// Executes one segment through the hazard-tracked command stream (the
/// compile-path mode): transfers of independent inputs overlap, dependent
/// launches are RAW-ordered, statistics fold in program order.
fn run_segment_stream(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    cmds: &[CnmCmd],
    residency: bool,
    dpus: usize,
) -> Result<(), ShardError> {
    // Zeroing is untimed fresh-allocation semantics and each zeroed buffer
    // is only written by its own op's launch afterwards, so it is applied
    // before the stream is recorded.
    for cmd in cmds {
        if let CnmCmd::Zero { buf } = cmd {
            backend
                .upmem_mut()
                .system_mut()
                .zero_buffer(*buf)
                .expect("zero output buffer");
        }
    }
    let mut gathers: Vec<(usize, u32)> = Vec::new();
    let mut stream = CommandStream::new();
    {
        let slots_ref: &[Slot] = slots;
        for cmd in cmds {
            match cmd {
                CnmCmd::Scatter { slot, buf, chunk } => {
                    stream.enqueue(Command::Scatter {
                        buffer: *buf,
                        data: Cow::Borrowed(&slots_ref[*slot as usize].host[..]),
                        chunk: *chunk,
                    });
                }
                CnmCmd::Broadcast { slot, buf } => {
                    stream.enqueue(Command::Broadcast {
                        buffer: *buf,
                        data: Cow::Borrowed(&slots_ref[*slot as usize].host[..]),
                    });
                }
                CnmCmd::Launch { spec } => {
                    stream.enqueue(Command::Launch { spec: spec.clone() });
                }
                CnmCmd::Gather { slot, buf, chunk } => {
                    let idx = stream.enqueue(Command::Gather {
                        buffer: *buf,
                        chunk: *chunk,
                    });
                    gathers.push((idx, *slot));
                }
                CnmCmd::Zero { .. } | CnmCmd::SetOutput { .. } | CnmCmd::Decode { .. } => {}
            }
        }
        let mut outputs = match backend.upmem_mut().try_sync(&mut stream) {
            Ok(outputs) => outputs,
            Err(e) => return Err(cnm_failure(backend, "session stream", e)),
        };
        for (idx, slot) in &gathers {
            // Each gather index is consumed exactly once: take the buffer
            // out instead of deep-copying it.
            let taken = std::mem::replace(
                &mut outputs[*idx],
                CommandOutput::Transfer(TransferStats::default()),
            );
            slots[*slot as usize].scratch = taken.into_gathered().expect("gather output");
        }
    }
    for cmd in cmds {
        apply_effect(slots, cmd, residency);
    }
    for cmd in cmds {
        if let CnmCmd::Decode { slot } = cmd {
            decode_slot(&mut slots[*slot as usize], dpus);
            if !residency {
                slots[*slot as usize].device_valid = false;
            }
        }
    }
    Ok(())
}

/// Executes one segment through the simulator's eager entry points in the
/// recorded (program) order — bit-identical to the stream schedule and
/// allocation-free in the steady state (the replay mode).
fn run_segment_direct(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    cmds: &[CnmCmd],
    residency: bool,
    dpus: usize,
) -> Result<(), ShardError> {
    for cmd in cmds {
        // Each command runs under the backend's transient-retry policy
        // (`try_op`); retries stay allocation-free on the warmed path. A
        // command that still fails commits nothing, so recovery can re-run
        // the segment from its start.
        let executed: Result<(), SimError> = match cmd {
            CnmCmd::Scatter { slot, buf, chunk } => {
                let host = &slots[*slot as usize].host;
                backend
                    .upmem_mut()
                    .try_op(|sys| sys.scatter_i32(*buf, host, *chunk))
                    .map(|_| ())
            }
            CnmCmd::Broadcast { slot, buf } => {
                let host = &slots[*slot as usize].host;
                backend
                    .upmem_mut()
                    .try_op(|sys| sys.broadcast_i32(*buf, host))
                    .map(|_| ())
            }
            CnmCmd::Zero { buf } => {
                // Uninjectable (untimed fresh-allocation semantics): only
                // invariant violations can surface here.
                backend
                    .upmem_mut()
                    .system_mut()
                    .zero_buffer(*buf)
                    .expect("zero output buffer");
                Ok(())
            }
            CnmCmd::Launch { spec } => backend
                .upmem_mut()
                .try_op(|sys| sys.launch(spec))
                .map(|_| ()),
            CnmCmd::Gather { slot, buf, chunk } => {
                let s = &mut slots[*slot as usize];
                let mut scratch = std::mem::take(&mut s.scratch);
                let gathered = backend
                    .upmem_mut()
                    .try_op(|sys| sys.gather_i32_into(*buf, *chunk, &mut scratch));
                s.scratch = scratch;
                gathered.map(|_| ())
            }
            CnmCmd::Decode { slot } => {
                decode_slot(&mut slots[*slot as usize], dpus);
                if !residency {
                    slots[*slot as usize].device_valid = false;
                }
                Ok(())
            }
            CnmCmd::SetOutput { .. } => Ok(()),
        };
        if let Err(e) = executed {
            return Err(cnm_failure(backend, "segment replay", e));
        }
        apply_effect(slots, cmd, residency);
    }
    Ok(())
}

/// Executes one shard-planned op across the device set via the sharded
/// backend (one `Device::submit` per non-empty shard, concurrently on the
/// shared pool).
fn run_planned(
    backend: &mut ShardedBackend,
    slots: &mut [Slot],
    node: &OpNode,
    split: &ShardSplit,
) -> Result<(), ShardError> {
    let result = match node.kind {
        OpKindNode::Gemm { m, k, n } => {
            let a = &slots[node.inputs[0] as usize].host;
            let b = &slots[node.inputs[1] as usize].host;
            backend.gemm(a, b, m, k, n, split)?
        }
        OpKindNode::Gemv { rows, cols } => {
            let a = &slots[node.inputs[0] as usize].host;
            let x = &slots[node.inputs[1] as usize].host;
            backend.gemv(a, x, rows, cols, split)?
        }
        OpKindNode::Elementwise { op, .. } => {
            let a = &slots[node.inputs[0] as usize].host;
            let b = &slots[node.inputs[1] as usize].host;
            backend.elementwise(op, a, b, split)?
        }
        OpKindNode::Reduce { op, .. } => {
            let a = &slots[node.inputs[0] as usize].host;
            vec![backend.reduce(op, a, split)?]
        }
        OpKindNode::Histogram {
            bins, max_value, ..
        } => {
            let a = &slots[node.inputs[0] as usize].host;
            backend.histogram(a, bins, max_value, split)?
        }
        _ => unreachable!("non-plannable ops are never shard-dispatched"),
    };
    let out = &mut slots[node.output as usize];
    out.host = result;
    out.host_valid = true;
    out.device_valid = false;
    out.resident = None;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinm_lowering::{UpmemBackend, UpmemRunOptions};
    use cpu_sim::kernels;

    fn small_cfg() -> UpmemConfig {
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 8;
        cfg
    }

    fn cnm_session(residency: bool) -> Session {
        Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                .with_policy(ShardPolicy::Single(Target::Cnm))
                .with_residency(residency),
        )
    }

    fn oracle() -> UpmemBackend {
        UpmemBackend::with_config(small_cfg(), UpmemRunOptions::optimized())
    }

    #[test]
    fn residency_off_is_bit_identical_to_the_eager_backend_including_stats() {
        let (rows, cols) = (50, 24);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 11) as i32 - 5).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i % 5) as i32 - 2).collect();

        let mut sess = cnm_session(false);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let yt = sess.gemv(at, xt);
        let st = sess.select(yt, 0);
        sess.run().unwrap();
        let y = sess.fetch(yt);
        let s = sess.fetch(st);

        let mut eager = oracle();
        let y_ref = eager.gemv(&a, &x, rows, cols);
        let s_ref = eager.select(&y_ref, 0);
        assert_eq!(y, y_ref);
        assert_eq!(s, s_ref);
        assert_eq!(
            sess.upmem_stats(),
            eager.stats(),
            "stats must fold identically"
        );
    }

    #[test]
    fn residency_keeps_results_identical_and_moves_strictly_fewer_bytes() {
        let (rows, cols) = (64, 32);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 13) as i32 - 6).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i % 7) as i32 - 3).collect();

        let mut sess = cnm_session(true);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let yt = sess.gemv(at, xt);
        let st = sess.select(yt, 0);
        sess.run().unwrap();
        let s = sess.fetch(st);

        let mut eager = oracle();
        let y_ref = eager.gemv(&a, &x, rows, cols);
        let s_ref = eager.select(&y_ref, 0);
        assert_eq!(s, s_ref);
        let sess_stats = sess.upmem_stats();
        let eager_stats = eager.stats();
        let sess_bytes = sess_stats.host_to_dpu_bytes + sess_stats.dpu_to_host_bytes;
        let eager_bytes = eager_stats.host_to_dpu_bytes + eager_stats.dpu_to_host_bytes;
        assert!(
            sess_bytes < eager_bytes,
            "resident chain must move fewer simulated bytes ({sess_bytes} vs {eager_bytes})"
        );
        assert_eq!(sess_stats.kernel_seconds, eager_stats.kernel_seconds);
    }

    #[test]
    fn warmed_loops_replay_the_compiled_plan_and_skip_unchanged_inputs() {
        let (rows, cols) = (48, 16);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 9) as i32 - 4).collect();
        let mut sess = cnm_session(true);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&vec![0i32; cols]);
        let mut bytes_per_iter = Vec::new();
        for round in 0..5 {
            let x: Vec<i32> = (0..cols)
                .map(|i| (i as i32 * (round + 1)) % 5 - 2)
                .collect();
            sess.write(xt, &x);
            let before = sess.upmem_stats().host_to_dpu_bytes;
            let yt = sess.gemv(at, xt);
            let st = sess.select(yt, 1);
            sess.run().unwrap();
            let got = sess.fetch(st);
            let mut eager = oracle();
            let y_ref = eager.gemv(&a, &x, rows, cols);
            assert_eq!(got, eager.select(&y_ref, 1), "round {round}");
            bytes_per_iter.push(sess.upmem_stats().host_to_dpu_bytes - before);
        }
        let (runs, replays) = sess.run_counts();
        assert_eq!(runs, 5);
        // Iterations 1-3 compile (cold, then once per temporary id-set with
        // A observed resident); iterations 4+ replay memoized plans.
        assert_eq!(replays, 2, "{bytes_per_iter:?}");
        // Warm iterations skip the matrix transfer entirely.
        assert!(
            bytes_per_iter[2] < bytes_per_iter[0] / 4,
            "{bytes_per_iter:?}"
        );
        assert_eq!(bytes_per_iter[2], bytes_per_iter[4]);
    }

    #[test]
    fn chained_gemms_and_streaming_ops_match_the_goldens() {
        let (m, k, n, p) = (24, 16, 12, 8);
        let a: Vec<i32> = (0..m * k).map(|i| (i % 7) as i32 - 3).collect();
        let b: Vec<i32> = (0..k * n).map(|i| (i % 5) as i32 - 2).collect();
        let c: Vec<i32> = (0..n * p).map(|i| (i % 3) as i32 - 1).collect();
        let mut sess = cnm_session(true);
        let at = sess.matrix(&a, m, k);
        let bt = sess.matrix(&b, k, n);
        let ct = sess.matrix(&c, n, p);
        let d = sess.gemm(at, bt);
        let e = sess.gemm(d, ct);
        sess.run().unwrap();
        let d_ref = kernels::matmul(&a, &b, m, k, n);
        assert_eq!(sess.fetch(e), kernels::matmul(&d_ref, &c, m, n, p));
        assert_eq!(sess.fetch(d), d_ref);

        let v: Vec<i32> = (0..500).map(|i| i * 37 % 256).collect();
        let w: Vec<i32> = (0..500).map(|i| 100 - i).collect();
        let vt = sess.vector(&v);
        let wt = sess.vector(&w);
        let sum = sess.elementwise(BinOp::Add, vt, wt);
        let red = sess.reduce(BinOp::Add, sum);
        let hist = sess.histogram(vt, 16, 256);
        sess.run().unwrap();
        assert_eq!(sess.fetch(sum), kernels::vector_add(&v, &w));
        assert_eq!(
            sess.fetch_scalar(red),
            kernels::reduce_add(&kernels::vector_add(&v, &w))
        );
        assert_eq!(sess.fetch(hist), kernels::histogram(&v, 16, 256));
    }

    #[test]
    fn auto_policy_plans_across_devices_and_matches_goldens() {
        let (rows, cols) = (640, 96);
        let a: Vec<i32> = (0..rows * cols).map(|i| (i % 11) as i32 - 5).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i % 5) as i32 - 2).collect();
        let mut sess = Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                .with_policy(ShardPolicy::Auto),
        );
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let yt = sess.gemv(at, xt);
        sess.run().unwrap();
        assert_eq!(sess.fetch(yt), kernels::matvec(&a, &x, rows, cols));

        let v: Vec<i32> = (0..4096).map(|i| i * 31 % 97 - 40).collect();
        let vt = sess.vector(&v);
        let wt = sess.vector(&v);
        let sum = sess.elementwise(BinOp::Add, vt, wt);
        sess.run().unwrap();
        assert_eq!(sess.fetch(sum), kernels::vector_add(&v, &v));
    }

    #[test]
    #[should_panic(expected = "stale tensor handle")]
    fn unreferenced_temporaries_go_stale_after_the_next_run() {
        let mut sess = cnm_session(true);
        let v = sess.vector(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let w = sess.vector(&[1; 8]);
        let first = sess.elementwise(BinOp::Add, v, w);
        sess.run().unwrap();
        // A second run that does not reference `first` recycles it.
        let second = sess.elementwise(BinOp::Mul, v, w);
        sess.run().unwrap();
        let _ = sess.fetch(second);
        let _ = sess.fetch(first); // panics: stale
    }

    #[test]
    fn failed_plans_recycle_their_outputs_and_leave_the_session_usable() {
        let mut sess = Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                // Infeasible: fractions do not sum to 1.
                .with_policy(ShardPolicy::Fractions([0.5, 0.2, 0.2])),
        );
        let v = sess.vector(&[1i32; 64]);
        let w = sess.vector(&[2i32; 64]);
        let mut failed = Vec::new();
        for _ in 0..3 {
            let out = sess.elementwise(BinOp::Add, v, w);
            assert!(matches!(sess.run(), Err(ShardError::FractionSum { .. })));
            failed.push(out);
        }
        // The failed graphs' output slots were recycled: a fixed policy
        // reuses them and the session works normally.
        sess.set_policy(ShardPolicy::Single(Target::Cnm));
        let ok = sess.elementwise(BinOp::Add, v, w);
        sess.run().unwrap();
        assert_eq!(sess.fetch(ok), vec![3i32; 64]);
        // Handles of the failed graphs are stale.
        let stale = failed[0];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sess.fetch(stale);
        }));
        assert!(caught.is_err(), "failed-run outputs must be stale");
    }

    #[test]
    fn pinned_outputs_survive_unrelated_runs() {
        let mut sess = cnm_session(true);
        let v = sess.vector(&[5; 16]);
        let w = sess.vector(&[3; 16]);
        let kept = sess.elementwise(BinOp::Sub, v, w);
        sess.pin(kept);
        sess.run().unwrap();
        let _other = sess.elementwise(BinOp::Add, v, w);
        sess.run().unwrap();
        assert_eq!(sess.fetch(kept), vec![2; 16]);
    }
}
