//! # Multi-tenant session serving: the `SessionServer`
//!
//! The [`session::Session`](crate::session) API is single-owner: one graph,
//! one `run()`, exclusive devices. This module is the serving layer on top —
//! a [`SessionServer`] owns the device set and serves request streams from
//! many tenants at once:
//!
//! * **Admission control against device capacity.** Tenant weights become
//!   resident in DPU MRAM; every shape class accounts its per-DPU footprint
//!   and a load that would exceed the configured MRAM budget (or the grid's
//!   tenant slots) is rejected with a typed [`ServeError`] — never a hang.
//! * **Cross-tenant batching.** Same-shaped `gemv`/`gemm` requests from
//!   different tenants fuse into **one sharded launch** over the grid
//!   ([`cinm_lowering::BatchPlan`]): per-tenant weights stay resident in
//!   their slot's MRAM stripe, only activations move. The batching
//!   compatibility key is the request graph's **canonical replay signature**
//!   — the same hash the session plan cache uses — so "may share a launch"
//!   and "would replay the same compiled plan" are one predicate by
//!   construction.
//! * **Weighted fairness + priorities.** Requests queue per tenant in a
//!   [`FairQueue`] (weighted fair queueing over per-tenant FIFOs; priority
//!   is an exponential weight boost, so no tenant can starve). A scheduling
//!   round picks the fairest head request, then fills its batch with the
//!   fairest *compatible* heads from other tenants.
//! * **Futures over the existing machinery.** [`submit`](SessionServer::submit)
//!   returns a [`RequestTicket`]; execution happens in deterministic
//!   scheduling rounds ([`step`](SessionServer::step), driven on demand by
//!   [`wait_into`](SessionServer::wait_into)). A single-batch round runs the
//!   allocation-free eager path; a multi-shape round records every batch
//!   into one hazard-tracked `CommandStream` so disjoint shape classes
//!   overlap on the worker pool within one sync.
//! * **Fault isolation.** Batches run under the retrying backend; a
//!   transient fault that outlives the retry budget re-runs the batch (a
//!   faulted command commits nothing), and a permanent grid fault fails
//!   over to a spare built from the still-readable MRAM image
//!   (`fault_free_clone`), which carries every tenant's resident weights.
//!   One tenant's injected device fault therefore never corrupts or aborts
//!   another tenant's request — pinned by `tests/serving.rs` under seeded
//!   fault schedules.
//!
//! Determinism: scheduling depends only on queue state and configured
//! weights (never wall-clock), execution is the deterministic simulator, so
//! every outcome — batch composition, per-tenant service order, results —
//! is reproducible, and per-tenant results are bit-identical to the tenant
//! running alone in its own `Session`.

use std::fmt;
use std::time::Instant;

use cinm_lowering::{BatchPlan, UpmemBackend, UpmemRunOptions};
use cinm_runtime::{AdmissionError, CommandStream, FairQueue, FaultConfig, FaultStats};
use upmem_sim::{CommandOutput, SimError, SystemStats, UpmemConfig};

use crate::session::{gemm_request_signature, gemv_request_signature};

/// Recovery attempts per batch before a request is failed (mirrors the
/// session recovery loop's budget).
const MAX_RECOVERY_ATTEMPTS: u32 = 8;

/// Configuration of a [`SessionServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Number of PIM DIMMs when no explicit config is given.
    pub ranks: usize,
    /// Code-generation options of the owned UPMEM backend.
    pub upmem: UpmemRunOptions,
    /// Explicit machine configuration (overrides `ranks`).
    pub upmem_config: Option<UpmemConfig>,
    /// Deterministic fault-injection schedule for the owned devices.
    pub fault: Option<FaultConfig>,
    /// Tenant slots the grid is divided into per shape class: each resident
    /// model owns one slot (a contiguous DPU range), and a batch fuses up to
    /// this many tenants into one launch.
    pub tenant_slots: usize,
    /// Cap on requests fused into one batch (clamped to `tenant_slots` by
    /// construction; `usize::MAX` means "as many as fit").
    pub max_batch: usize,
    /// Per-tenant admission-control queue depth.
    pub queue_depth: usize,
    /// Per-DPU MRAM budget in bytes for resident state (`None`: the
    /// machine's MRAM size). Loads beyond it are rejected, typed.
    pub mram_limit_bytes: Option<usize>,
    /// Optional metrics registry. The server threads it into the owned
    /// simulator (per-op `upmem.*` counters) and registers its own series:
    /// server-wide request counters, batch-size and request-latency
    /// histograms (p50/p99 derive from the snapshot), queue depth, pool
    /// occupancy, and per-tenant counters/latency histograms named
    /// `serve.tenant.<name>.*` at registration time. Recording is
    /// atomics-only and allocation-free on the warmed serving path.
    pub telemetry: Option<cinm_telemetry::Telemetry>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            ranks: 16,
            upmem: UpmemRunOptions::optimized(),
            upmem_config: None,
            fault: None,
            tenant_slots: 8,
            max_batch: usize::MAX,
            queue_depth: 64,
            mram_limit_bytes: None,
            telemetry: None,
        }
    }
}

impl ServerOptions {
    /// Overrides the DIMM count of the default machine.
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Overrides the UPMEM code-generation options.
    pub fn with_upmem(mut self, upmem: UpmemRunOptions) -> Self {
        self.upmem = upmem;
        self
    }

    /// Uses an explicit machine configuration.
    pub fn with_upmem_config(mut self, config: UpmemConfig) -> Self {
        self.upmem_config = Some(config);
        self
    }

    /// Enables deterministic fault injection on the owned devices.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Overrides the number of tenant slots per shape class.
    pub fn with_tenant_slots(mut self, slots: usize) -> Self {
        self.tenant_slots = slots.max(1);
        self
    }

    /// Caps the batch size (1 disables cross-tenant batching — the serial
    /// baseline of `BENCH_serving.json`).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Overrides the per-tenant admission queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Overrides the per-DPU MRAM budget for resident tenant state.
    pub fn with_mram_limit_bytes(mut self, bytes: usize) -> Self {
        self.mram_limit_bytes = Some(bytes);
        self
    }

    /// Attaches a metrics registry (see the field documentation).
    pub fn with_telemetry(mut self, telemetry: cinm_telemetry::Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// Typed serving-layer error. Admission rejections (`CapacityExhausted`,
/// `SlotsExhausted`, `QueueFull`) are back-pressure the client acts on;
/// `Device` surfaces an unrecoverable device failure of one batch without
/// affecting other requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Loading these weights would exceed the per-DPU MRAM budget.
    CapacityExhausted {
        /// Bytes per DPU the load would add.
        needed_bytes: usize,
        /// Bytes per DPU still available under the budget.
        available_bytes: usize,
    },
    /// Every tenant slot of the shape class is occupied.
    SlotsExhausted {
        /// Slots of the shape class.
        slots: usize,
    },
    /// The tenant's queue is at its admission depth limit.
    QueueFull {
        /// The rejected tenant.
        tenant: TenantId,
        /// The configured depth limit.
        depth: usize,
    },
    /// An operand does not match the model's shape.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// The tenant id was never registered.
    UnknownTenant,
    /// The model id was never loaded.
    UnknownModel,
    /// The model (or tenant) still has queued requests and cannot be
    /// unloaded until they drain.
    ModelBusy,
    /// The ticket does not refer to a live request (already consumed, or
    /// from another server).
    StaleTicket,
    /// A device failure outlived every recovery attempt.
    Device {
        /// Human-readable failure description.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::CapacityExhausted {
                needed_bytes,
                available_bytes,
            } => write!(
                f,
                "admission rejected: load needs {needed_bytes} B/DPU, {available_bytes} B/DPU available"
            ),
            ServeError::SlotsExhausted { slots } => {
                write!(f, "admission rejected: all {slots} tenant slots are occupied")
            }
            ServeError::QueueFull { tenant, depth } => write!(
                f,
                "admission rejected: tenant {} is at its queue depth of {depth}",
                tenant.0
            ),
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "operand shape mismatch: expected {expected} elements, got {got}")
            }
            ServeError::UnknownTenant => write!(f, "unknown tenant id"),
            ServeError::UnknownModel => write!(f, "unknown model id"),
            ServeError::ModelBusy => {
                write!(f, "cannot unload: queued requests still reference the model")
            }
            ServeError::StaleTicket => write!(f, "stale request ticket"),
            ServeError::Device { message } => write!(f, "device failure: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Handle of a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(u32);

/// Handle of a resident weight matrix (bound to one tenant and one shape
/// class slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(u32);

/// Future of a submitted request: redeem with
/// [`SessionServer::wait`]/[`wait_into`](SessionServer::wait_into) (which
/// drive scheduling rounds as needed) or poll with
/// [`SessionServer::is_done`]. Consuming the result recycles the slot; a
/// consumed ticket turns stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a request ticket must be waited on to observe its result"]
pub struct RequestTicket {
    req: u32,
    gen: u32,
}

/// Registration-time tenant configuration.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    name: String,
    weight: u32,
    priority: u8,
}

impl TenantSpec {
    /// A tenant with weight 1 and priority 0.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            priority: 0,
        }
    }

    /// Sets the fair-share weight (minimum 1): long-run service is
    /// proportional to weights among backlogged tenants.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the priority: each level doubles the effective weight. A boost,
    /// not a strict tier — lower-priority tenants keep a proportional share
    /// and never starve.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// Completion report of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestReport {
    /// Wall-clock submit-to-completion latency in seconds.
    pub latency_seconds: f64,
    /// Requests fused into the launch that served this one.
    pub batch_size: u32,
}

/// Cumulative server-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests rejected at admission (typed errors, not queued).
    pub rejected: u64,
    /// Requests failed by an unrecoverable device error.
    pub failed: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Batched launches executed.
    pub batches: u64,
    /// Requests served through those launches.
    pub batched_requests: u64,
    /// Largest batch fused so far.
    pub largest_batch: u64,
    /// Rounds that fused multiple shape classes into one command stream.
    pub stream_rounds: u64,
    /// Batch re-executions after a fault escaped the retry budget.
    pub recoveries: u64,
    /// Spare-grid failovers after a permanent device fault.
    pub failovers: u64,
}

/// Cumulative per-tenant counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests failed by an unrecoverable device error.
    pub failed: u64,
    /// Logical multiply-accumulates served (the fairness work unit).
    pub served_work: u64,
    /// Sum of completed requests' latencies in seconds.
    pub total_latency_seconds: f64,
    /// Largest completed-request latency in seconds.
    pub max_latency_seconds: f64,
}

impl TenantStats {
    /// Mean completed-request latency in seconds (0 when none completed).
    pub fn mean_latency_seconds(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_latency_seconds / self.completed as f64
        }
    }
}

/// Memory-pressure snapshot of the serving runtime (see
/// [`SessionServer::residency_snapshot`]). Weights always keep a host
/// shadow, so a serving eviction never gathers — the billed traffic is the
/// re-upload when an evicted class is scheduled again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerResidency {
    /// Shape classes whose device buffers were evicted to admit another.
    pub evictions: u64,
    /// Weight re-uploads (rematerialization launches) of evicted classes
    /// that became active again.
    pub reloads: u64,
    /// Host-to-device bytes those re-uploads scattered.
    pub reload_bytes: u64,
    /// High-water mark of per-DPU MRAM bytes ever allocated on the grid.
    pub peak_mram_bytes: usize,
    /// Per-DPU MRAM bytes currently claimed by resident classes.
    pub used_mram_bytes: usize,
    /// The per-DPU admission budget.
    pub limit_bytes: usize,
}

/// Server-wide telemetry series (see [`ServerOptions::telemetry`]):
/// registered once at construction, recorded by atomic operations on the
/// serving hot path.
struct ServerTele {
    submitted: cinm_telemetry::Counter,
    completed: cinm_telemetry::Counter,
    failed: cinm_telemetry::Counter,
    rejected: cinm_telemetry::Counter,
    batch_size: cinm_telemetry::Histogram,
    latency: cinm_telemetry::Histogram,
    pool_workers: cinm_telemetry::Gauge,
    pool_busy: cinm_telemetry::Gauge,
    pool_tasks: cinm_telemetry::Gauge,
}

impl ServerTele {
    fn register(t: &cinm_telemetry::Telemetry) -> Self {
        ServerTele {
            submitted: t.counter("serve.requests.submitted"),
            completed: t.counter("serve.requests.completed"),
            failed: t.counter("serve.requests.failed"),
            rejected: t.counter("serve.admission.rejected"),
            batch_size: t.histogram("serve.batch.size", &cinm_telemetry::BATCH_SIZE_BOUNDS),
            latency: t.histogram(
                "serve.latency.seconds",
                &cinm_telemetry::LATENCY_SECONDS_BOUNDS,
            ),
            pool_workers: t.gauge("runtime.pool.workers"),
            pool_busy: t.gauge("runtime.pool.busy"),
            pool_tasks: t.gauge("runtime.pool.tasks_executed"),
        }
    }
}

/// Per-tenant telemetry series, registered under the tenant's name when the
/// tenant is (the only allocation telemetry ever does per tenant).
struct TenantTele {
    submitted: cinm_telemetry::Counter,
    completed: cinm_telemetry::Counter,
    rejected: cinm_telemetry::Counter,
    failed: cinm_telemetry::Counter,
    latency: cinm_telemetry::Histogram,
}

impl TenantTele {
    fn register(t: &cinm_telemetry::Telemetry, name: &str) -> Self {
        TenantTele {
            submitted: t.counter(&format!("serve.tenant.{name}.submitted")),
            completed: t.counter(&format!("serve.tenant.{name}.completed")),
            rejected: t.counter(&format!("serve.tenant.{name}.rejected")),
            failed: t.counter(&format!("serve.tenant.{name}.failed")),
            latency: t.histogram(
                &format!("serve.tenant.{name}.latency.seconds"),
                &cinm_telemetry::LATENCY_SECONDS_BOUNDS,
            ),
        }
    }
}

struct Tenant {
    name: String,
    stats: TenantStats,
    tele: Option<TenantTele>,
}

struct Model {
    tenant: TenantId,
    group: u32,
    slot: usize,
    /// Cleared by `unload_model`; the id is never reused.
    live: bool,
}

/// One batched shape class: the shared `BatchPlan` plus staging state and
/// the batch under construction of the current round.
struct Group {
    /// Canonical replay signature of the class's request graph — the
    /// batching compatibility key (shared with the session plan cache).
    sig: u64,
    plan: BatchPlan,
    /// Host shadow of the resident weights buffer (re-scattered on loads).
    w_stage: Vec<i32>,
    /// Activation staging for the current batch.
    x_stage: Vec<i32>,
    /// Gather destination of the current batch.
    y_scratch: Vec<i32>,
    /// Slot occupancy.
    occupied: Vec<Option<ModelId>>,
    /// Members (request indices) of the batch under construction.
    batch: Vec<u32>,
    /// Whether this group already has a batch in the current round.
    in_round: bool,
    /// Batched launches executed for this class.
    launches: u64,
    /// Whether the class's device buffers are allocated and its weights
    /// uploaded. An evicted class keeps its slots, signature and host
    /// shadow and is transparently re-admitted when scheduled again.
    resident: bool,
    /// Round counter of the class's last dispatch — eviction recency.
    last_round: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqState {
    Free,
    Queued,
    Done,
    Failed,
}

struct RequestSlot {
    gen: u32,
    state: ReqState,
    model: ModelId,
    x: Vec<i32>,
    result: Vec<i32>,
    submitted: Instant,
    report: RequestReport,
    error: Option<ServeError>,
}

/// The multi-tenant serving runtime. See the [module docs](self).
pub struct SessionServer {
    backend: UpmemBackend,
    queue: FairQueue,
    tenants: Vec<Tenant>,
    models: Vec<Model>,
    groups: Vec<Group>,
    requests: Vec<RequestSlot>,
    free_requests: Vec<u32>,
    /// Group indices participating in the current round (scratch).
    round_groups: Vec<u32>,
    tenant_slots: usize,
    max_batch: usize,
    queue_depth: usize,
    mram_limit_bytes: usize,
    mram_used_bytes: usize,
    stats: ServerStats,
    /// Eviction/reload counters of the serving residency manager.
    res_evictions: u64,
    res_reloads: u64,
    res_reload_bytes: u64,
    /// Pre-registered server-wide telemetry series (`None` disables export).
    tele: Option<ServerTele>,
    /// Registry handle for late registrations (per-tenant series).
    telemetry: Option<cinm_telemetry::Telemetry>,
}

impl SessionServer {
    /// Builds a server owning a fresh device set.
    pub fn new(options: ServerOptions) -> Self {
        let mut cfg = options
            .upmem_config
            .clone()
            .unwrap_or_else(|| UpmemConfig::with_ranks(options.ranks));
        if options.fault.is_some() {
            cfg.fault = options.fault.clone();
        }
        let mram_limit_bytes = options.mram_limit_bytes.unwrap_or(cfg.mram_bytes);
        // The allocator enforces the same budget the admission ledger does,
        // so an accounting bug surfaces as a loud typed capacity error
        // instead of silent over-allocation.
        cfg.mram_bytes = cfg.mram_bytes.min(mram_limit_bytes);
        if let Some(t) = &options.telemetry {
            cfg.telemetry = Some(t.clone());
        }
        let backend = UpmemBackend::with_config(cfg, options.upmem.clone());
        let tenant_slots = options.tenant_slots.max(1).min(backend.num_dpus());
        let tele = options.telemetry.as_ref().map(ServerTele::register);
        let mut queue = FairQueue::new();
        if let Some(t) = &options.telemetry {
            queue.attach_depth_gauge(t.gauge("serve.queue.depth"));
        }
        SessionServer {
            backend,
            queue,
            tenants: Vec::new(),
            models: Vec::new(),
            groups: Vec::new(),
            requests: Vec::new(),
            free_requests: Vec::new(),
            round_groups: Vec::new(),
            tenant_slots,
            max_batch: options.max_batch.max(1),
            queue_depth: options.queue_depth.max(1),
            mram_limit_bytes,
            mram_used_bytes: 0,
            stats: ServerStats::default(),
            res_evictions: 0,
            res_reloads: 0,
            res_reload_bytes: 0,
            tele,
            telemetry: options.telemetry.clone(),
        }
    }

    // -- registration & admission -------------------------------------------

    /// Registers a tenant and returns its handle.
    pub fn register_tenant(&mut self, spec: TenantSpec) -> TenantId {
        let lane = self
            .queue
            .add_lane(spec.weight, spec.priority, self.queue_depth);
        debug_assert_eq!(lane, self.tenants.len());
        let tele = self
            .telemetry
            .as_ref()
            .map(|t| TenantTele::register(t, &spec.name));
        self.tenants.push(Tenant {
            name: spec.name,
            stats: TenantStats::default(),
            tele,
        });
        TenantId(lane as u32)
    }

    /// Makes a tenant's `gemv` weight matrix (`rows × cols`) resident on the
    /// grid and returns the model handle requests are submitted against.
    ///
    /// # Errors
    ///
    /// Typed admission rejection when the load would exceed the MRAM budget
    /// or the shape class's tenant slots; `ShapeMismatch` when `a` is not
    /// `rows * cols` elements; `Device` when uploading outlives recovery.
    pub fn load_gemv_weights(
        &mut self,
        tenant: TenantId,
        a: &[i32],
        rows: usize,
        cols: usize,
    ) -> Result<ModelId, ServeError> {
        self.check_tenant(tenant)?;
        if a.len() != rows * cols {
            return Err(ServeError::ShapeMismatch {
                expected: rows * cols,
                got: a.len(),
            });
        }
        let sig = gemv_request_signature(rows, cols);
        let gi = self.ensure_group(sig, GroupShape::Gemv { rows, cols })?;
        self.bind_model(tenant, gi, a)
    }

    /// Makes a tenant's `gemm` left operand (`m × k`) resident; requests
    /// then move only the right operand (`k × n`).
    ///
    /// # Errors
    ///
    /// Same admission/shape/device errors as
    /// [`load_gemv_weights`](Self::load_gemv_weights).
    pub fn load_gemm_weights(
        &mut self,
        tenant: TenantId,
        a: &[i32],
        m: usize,
        k: usize,
        n: usize,
    ) -> Result<ModelId, ServeError> {
        self.check_tenant(tenant)?;
        if a.len() != m * k {
            return Err(ServeError::ShapeMismatch {
                expected: m * k,
                got: a.len(),
            });
        }
        let sig = gemm_request_signature(m, k, n);
        let gi = self.ensure_group(sig, GroupShape::Gemm { m, k, n })?;
        self.bind_model(tenant, gi, a)
    }

    /// Unloads a model: its shape-class slot frees for another tenant and,
    /// when the class empties, its per-DPU MRAM bytes return to the budget.
    /// The handle turns permanently stale (ids are never reused).
    ///
    /// # Errors
    ///
    /// `UnknownModel` for stale/unknown handles; `ModelBusy` while queued
    /// requests still reference the model (drain with
    /// [`run_until_idle`](Self::run_until_idle) first).
    pub fn unload_model(&mut self, model: ModelId) -> Result<(), ServeError> {
        let Some(m) = self.models.get(model.0 as usize) else {
            return Err(ServeError::UnknownModel);
        };
        if !m.live {
            return Err(ServeError::UnknownModel);
        }
        if self
            .requests
            .iter()
            .any(|s| s.state == ReqState::Queued && s.model == model)
        {
            return Err(ServeError::ModelBusy);
        }
        let gi = m.group as usize;
        let slot = m.slot;
        self.models[model.0 as usize].live = false;
        let g = &mut self.groups[gi];
        g.occupied[slot] = None;
        // Zero the vacated stripe of the host shadow so a later reload of
        // the class scatters deterministic contents.
        let zeros = vec![0; g.plan.weights_len()];
        g.plan.stage_weights(slot, &zeros, &mut g.w_stage);
        if g.resident && g.occupied.iter().all(Option::is_none) {
            // Last tenant out: the class's device buffers return to the
            // budget (kept registered — a future load of the same shape
            // re-admits it through the ordinary residency path).
            let bytes = 4 * g.plan.elems_per_dpu();
            g.plan
                .release(&mut self.backend)
                .map_err(|e| ServeError::Device {
                    message: e.to_string(),
                })?;
            self.groups[gi].resident = false;
            self.mram_used_bytes -= bytes;
        }
        Ok(())
    }

    /// Unloads every live model of a tenant (atomically: nothing is
    /// unloaded when any of them is busy). The tenant stays registered and
    /// can load models again.
    ///
    /// # Errors
    ///
    /// `UnknownTenant`; `ModelBusy` when queued requests still reference
    /// any of the tenant's models.
    pub fn unload_tenant(&mut self, tenant: TenantId) -> Result<(), ServeError> {
        self.check_tenant(tenant)?;
        let busy = self.requests.iter().any(|s| {
            s.state == ReqState::Queued
                && self
                    .models
                    .get(s.model.0 as usize)
                    .is_some_and(|m| m.live && m.tenant == tenant)
        });
        if busy {
            return Err(ServeError::ModelBusy);
        }
        for id in 0..self.models.len() {
            if self.models[id].live && self.models[id].tenant == tenant {
                self.unload_model(ModelId(id as u32))?;
            }
        }
        Ok(())
    }

    fn check_tenant(&self, tenant: TenantId) -> Result<(), ServeError> {
        if (tenant.0 as usize) < self.tenants.len() {
            Ok(())
        } else {
            Err(ServeError::UnknownTenant)
        }
    }

    /// Evicts idle resident shape classes (coldest last dispatch first)
    /// until `needed_bytes` fit under the budget. Classes with a batch in
    /// the current round are part of the true working set and never
    /// victims; when nothing evictable remains the typed capacity error
    /// surfaces.
    fn make_room(&mut self, needed_bytes: usize) -> Result<(), ServeError> {
        loop {
            let available = self.mram_limit_bytes.saturating_sub(self.mram_used_bytes);
            if needed_bytes <= available {
                return Ok(());
            }
            let victim = self
                .groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.resident && !g.in_round && g.batch.is_empty())
                .min_by_key(|(_, g)| g.last_round)
                .map(|(i, _)| i);
            let Some(v) = victim else {
                return Err(ServeError::CapacityExhausted {
                    needed_bytes,
                    available_bytes: available,
                });
            };
            let bytes = 4 * self.groups[v].plan.elems_per_dpu();
            self.groups[v]
                .plan
                .release(&mut self.backend)
                .map_err(|e| ServeError::Device {
                    message: e.to_string(),
                })?;
            self.groups[v].resident = false;
            self.mram_used_bytes -= bytes;
            self.res_evictions += 1;
        }
    }

    /// Re-admits an evicted shape class: re-allocates its device buffers
    /// (evicting colder classes as needed) and re-uploads the weight
    /// shadow — the billed rematerialization of reloadable weights.
    fn ensure_resident(&mut self, gi: usize) -> Result<(), ServeError> {
        if self.groups[gi].resident {
            return Ok(());
        }
        let needed_bytes = 4 * self.groups[gi].plan.elems_per_dpu();
        self.make_room(needed_bytes)?;
        self.groups[gi]
            .plan
            .reacquire(&mut self.backend)
            .map_err(|e| ServeError::Device {
                message: e.to_string(),
            })?;
        self.mram_used_bytes += needed_bytes;
        self.groups[gi].resident = true;
        // Upload under the recovery loop, like the initial bind.
        let mut attempts = 0;
        loop {
            let g = &self.groups[gi];
            match g.plan.upload_weights(&mut self.backend, &g.w_stage) {
                Ok(()) => break,
                Err(e) if attempts < MAX_RECOVERY_ATTEMPTS => {
                    attempts += 1;
                    self.recover(&e);
                }
                Err(e) => {
                    return Err(ServeError::Device {
                        message: e.to_string(),
                    })
                }
            }
        }
        self.res_reloads += 1;
        self.res_reload_bytes += (self.groups[gi].w_stage.len() * 4) as u64;
        Ok(())
    }

    /// Finds or creates the batched shape class for a signature. Admission
    /// is soft: a new class that does not fit first evicts idle colder
    /// classes' reloadable weights; the typed capacity error surfaces only
    /// when the active working set truly fills the budget.
    fn ensure_group(&mut self, sig: u64, shape: GroupShape) -> Result<usize, ServeError> {
        if let Some(gi) = self.groups.iter().position(|g| g.sig == sig) {
            return Ok(gi);
        }
        let slot_dpus = (self.backend.num_dpus() / self.tenant_slots).max(1);
        let needed_bytes = 4 * shape.elems_per_dpu(slot_dpus);
        self.make_room(needed_bytes)?;
        let plan = match shape {
            GroupShape::Gemv { rows, cols } => {
                BatchPlan::gemv(&mut self.backend, self.tenant_slots, rows, cols)
            }
            GroupShape::Gemm { m, k, n } => {
                BatchPlan::gemm(&mut self.backend, self.tenant_slots, m, k, n)
            }
        }
        .map_err(|e| ServeError::Device {
            message: e.to_string(),
        })?;
        debug_assert_eq!(4 * plan.elems_per_dpu(), needed_bytes);
        self.mram_used_bytes += needed_bytes;
        let slots = plan.slots();
        self.groups.push(Group {
            sig,
            plan,
            w_stage: Vec::new(),
            x_stage: Vec::new(),
            y_scratch: Vec::new(),
            occupied: vec![None; slots],
            batch: Vec::new(),
            in_round: false,
            launches: 0,
            resident: true,
            last_round: self.stats.rounds,
        });
        Ok(self.groups.len() - 1)
    }

    /// Claims a slot of the group for the tenant's weights and uploads them.
    fn bind_model(
        &mut self,
        tenant: TenantId,
        gi: usize,
        weights: &[i32],
    ) -> Result<ModelId, ServeError> {
        let id = ModelId(self.models.len() as u32);
        let g = &mut self.groups[gi];
        let Some(slot) = g.occupied.iter().position(Option::is_none) else {
            return Err(ServeError::SlotsExhausted {
                slots: g.occupied.len(),
            });
        };
        g.plan.stage_weights(slot, weights, &mut g.w_stage);
        if !self.groups[gi].resident {
            // Binding into an evicted class: re-admission re-uploads the
            // whole shadow, staged slot included.
            if let Err(e) = self.ensure_resident(gi) {
                let g = &mut self.groups[gi];
                let zeros = vec![0; g.plan.weights_len()];
                g.plan.stage_weights(slot, &zeros, &mut g.w_stage);
                return Err(e);
            }
        } else {
            // Upload under the recovery loop: the scatter is idempotent and a
            // faulted transfer commits nothing.
            let mut attempts = 0;
            loop {
                let g = &self.groups[gi];
                match g.plan.upload_weights(&mut self.backend, &g.w_stage) {
                    Ok(()) => break,
                    Err(e) if attempts < MAX_RECOVERY_ATTEMPTS => {
                        attempts += 1;
                        self.recover(&e);
                    }
                    Err(e) => {
                        // Roll the staged slot back so the class stays coherent.
                        let g = &mut self.groups[gi];
                        let zeros = vec![0; g.plan.weights_len()];
                        g.plan.stage_weights(slot, &zeros, &mut g.w_stage);
                        return Err(ServeError::Device {
                            message: e.to_string(),
                        });
                    }
                }
            }
        }
        self.groups[gi].occupied[slot] = Some(id);
        self.models.push(Model {
            tenant,
            group: gi as u32,
            slot,
            live: true,
        });
        Ok(id)
    }

    // -- request lifecycle --------------------------------------------------

    /// Submits one request: the model's resident weights applied to the
    /// moving `activation` operand (the `x` vector of a gemv model, the `B`
    /// matrix of a gemm model, in row-major order). Returns a ticket future;
    /// execution happens in scheduling rounds driven by
    /// [`wait_into`](Self::wait_into)/[`step`](Self::step).
    ///
    /// # Errors
    ///
    /// `QueueFull` when the tenant is at its admission depth (typed
    /// back-pressure — the request is not queued), `ShapeMismatch`,
    /// `UnknownModel`.
    pub fn submit(
        &mut self,
        model: ModelId,
        activation: &[i32],
    ) -> Result<RequestTicket, ServeError> {
        let Some(m) = self.models.get(model.0 as usize) else {
            return Err(ServeError::UnknownModel);
        };
        if !m.live {
            // Unloaded ids are never reused, so stale handles stay typed.
            return Err(ServeError::UnknownModel);
        }
        let tenant = m.tenant;
        let g = &self.groups[m.group as usize];
        let expected = g.plan.activation_len();
        if activation.len() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                got: activation.len(),
            });
        }
        let work = g.plan.work();
        let req = match self.free_requests.pop() {
            Some(r) => r,
            None => {
                self.requests.push(RequestSlot {
                    gen: 0,
                    state: ReqState::Free,
                    model,
                    x: Vec::new(),
                    result: Vec::new(),
                    submitted: Instant::now(),
                    report: RequestReport::default(),
                    error: None,
                });
                (self.requests.len() - 1) as u32
            }
        };
        match self.queue.enqueue(tenant.0 as usize, req, work) {
            Ok(()) => {}
            Err(AdmissionError::QueueFull { depth, .. }) => {
                self.free_requests.push(req);
                self.stats.rejected += 1;
                self.tenants[tenant.0 as usize].stats.rejected += 1;
                if let Some(t) = &self.tele {
                    t.rejected.inc();
                }
                if let Some(tt) = &self.tenants[tenant.0 as usize].tele {
                    tt.rejected.inc();
                }
                return Err(ServeError::QueueFull { tenant, depth });
            }
            Err(AdmissionError::UnknownLane { .. }) => {
                self.free_requests.push(req);
                return Err(ServeError::UnknownTenant);
            }
        }
        let slot = &mut self.requests[req as usize];
        slot.state = ReqState::Queued;
        slot.model = model;
        slot.x.clear();
        slot.x.extend_from_slice(activation);
        slot.submitted = Instant::now();
        slot.error = None;
        self.stats.submitted += 1;
        self.tenants[tenant.0 as usize].stats.submitted += 1;
        if let Some(t) = &self.tele {
            t.submitted.inc();
        }
        if let Some(tt) = &self.tenants[tenant.0 as usize].tele {
            tt.submitted.inc();
        }
        Ok(RequestTicket { req, gen: slot.gen })
    }

    /// Whether a ticket's request has finished (completed or failed) —
    /// non-driving poll.
    pub fn is_done(&self, ticket: RequestTicket) -> bool {
        self.requests.get(ticket.req as usize).is_some_and(|s| {
            s.gen == ticket.gen && matches!(s.state, ReqState::Done | ReqState::Failed)
        })
    }

    /// Redeems a ticket, driving scheduling rounds until its request
    /// finishes. The result replaces the contents of `out` (cleared;
    /// capacity reused — allocation-free once warmed) and the slot is
    /// recycled, turning the ticket stale.
    ///
    /// # Errors
    ///
    /// `StaleTicket` for consumed/foreign tickets; the batch's `Device`
    /// error when the request failed every recovery attempt.
    pub fn wait_into(
        &mut self,
        ticket: RequestTicket,
        out: &mut Vec<i32>,
    ) -> Result<RequestReport, ServeError> {
        loop {
            let Some(slot) = self.requests.get(ticket.req as usize) else {
                return Err(ServeError::StaleTicket);
            };
            if slot.gen != ticket.gen {
                return Err(ServeError::StaleTicket);
            }
            match slot.state {
                ReqState::Done => {
                    let slot = &mut self.requests[ticket.req as usize];
                    out.clear();
                    out.extend_from_slice(&slot.result);
                    let report = slot.report;
                    self.release(ticket.req);
                    return Ok(report);
                }
                ReqState::Failed => {
                    let slot = &mut self.requests[ticket.req as usize];
                    let err = slot.error.take().unwrap_or(ServeError::Device {
                        message: "request failed".into(),
                    });
                    self.release(ticket.req);
                    return Err(err);
                }
                ReqState::Free => return Err(ServeError::StaleTicket),
                ReqState::Queued => {
                    if self.step() == 0 {
                        return Err(ServeError::Device {
                            message: "queued request unreachable by the scheduler".into(),
                        });
                    }
                }
            }
        }
    }

    /// Allocating convenience form of [`wait_into`](Self::wait_into).
    ///
    /// # Errors
    ///
    /// See [`wait_into`](Self::wait_into).
    pub fn wait(&mut self, ticket: RequestTicket) -> Result<Vec<i32>, ServeError> {
        let mut out = Vec::new();
        self.wait_into(ticket, &mut out)?;
        Ok(out)
    }

    /// Drives scheduling rounds until every queued request has finished.
    pub fn run_until_idle(&mut self) {
        while self.step() != 0 {}
    }

    fn release(&mut self, req: u32) {
        let slot = &mut self.requests[req as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = ReqState::Free;
        self.free_requests.push(req);
    }

    // -- scheduling ---------------------------------------------------------

    /// Executes one scheduling round: picks the fairest head request, fills
    /// its batch with the fairest compatible heads of other tenants (one
    /// batch per shape class per round, one request per tenant per batch),
    /// and dispatches — eagerly for a single batch (the allocation-free
    /// steady-state path), through one hazard-tracked command stream when
    /// multiple shape classes fused in the same round. Returns the number of
    /// requests that finished (0 when idle). Device failures fail the
    /// affected batch's requests, never the server.
    pub fn step(&mut self) -> usize {
        let picked = self.form_round();
        if picked == 0 {
            return 0;
        }
        self.stats.rounds += 1;
        // Re-admit evicted classes scheduled this round (their batches are
        // in_round, so make_room cannot victimize a round participant).
        let mut i = 0;
        while i < self.round_groups.len() {
            let gi = self.round_groups[i] as usize;
            match self.ensure_resident(gi) {
                Ok(()) => {
                    self.groups[gi].last_round = self.stats.rounds;
                    i += 1;
                }
                Err(e) => {
                    self.finish_batch(gi, Err(e));
                    self.round_groups.remove(i);
                }
            }
        }
        if self.round_groups.is_empty() {
            return picked;
        }
        self.stage_round();
        if self.round_groups.len() == 1 {
            let gi = self.round_groups[0] as usize;
            let result = self.run_batch_direct(gi);
            self.finish_batch(gi, result);
        } else {
            self.stats.stream_rounds += 1;
            self.run_round_stream();
        }
        self.round_groups.clear();
        if let Some(t) = &self.tele {
            let pool = self.backend.system().config().pool.get();
            t.pool_workers.set(pool.workers() as f64);
            t.pool_busy.set(pool.busy_workers() as f64);
            t.pool_tasks.set(pool.tasks_executed() as f64);
        }
        picked
    }

    /// Fills each group's batch from the queue in weighted-fair order.
    fn form_round(&mut self) -> usize {
        let max_batch = self.max_batch;
        let SessionServer {
            queue,
            models,
            groups,
            requests,
            round_groups,
            ..
        } = self;
        let mut picked = 0;
        while let Some((lane, req)) = queue.next_matching(|lane, req| {
            let model = &models[requests[req as usize].model.0 as usize];
            let g = &groups[model.group as usize];
            if !g.in_round {
                return true;
            }
            g.batch.len() < max_batch
                && !g.batch.iter().any(|&r| {
                    models[requests[r as usize].model.0 as usize].tenant.0 as usize == lane
                })
        }) {
            let _ = lane;
            let gi = models[requests[req as usize].model.0 as usize].group as usize;
            let g = &mut groups[gi];
            if !g.in_round {
                g.in_round = true;
                round_groups.push(gi as u32);
            }
            g.batch.push(req);
            picked += 1;
        }
        picked
    }

    /// Stages every batched request's activation into its slot's stripe.
    fn stage_round(&mut self) {
        let SessionServer {
            groups,
            requests,
            models,
            round_groups,
            ..
        } = self;
        for &gi in round_groups.iter() {
            let Group {
                plan,
                x_stage,
                batch,
                ..
            } = &mut groups[gi as usize];
            for &req in batch.iter() {
                let slot = &requests[req as usize];
                let model = &models[slot.model.0 as usize];
                plan.stage_activation(model.slot, &slot.x, x_stage);
            }
        }
    }

    /// Direct eager dispatch of one batch under the recovery loop.
    fn run_batch_direct(&mut self, gi: usize) -> Result<(), ServeError> {
        let mut attempts = 0;
        loop {
            let SessionServer {
                backend, groups, ..
            } = self;
            let Group {
                plan,
                x_stage,
                y_scratch,
                ..
            } = &mut groups[gi];
            match plan.execute(backend, x_stage, y_scratch) {
                Ok(()) => return Ok(()),
                Err(e) if attempts < MAX_RECOVERY_ATTEMPTS => {
                    attempts += 1;
                    self.recover(&e);
                }
                Err(e) => {
                    return Err(ServeError::Device {
                        message: e.to_string(),
                    })
                }
            }
        }
    }

    /// Stream dispatch of a multi-shape round: every batch's commands in one
    /// hazard-tracked sync (disjoint buffers — the shape classes overlap on
    /// the worker pool), under the recovery loop. A faulted sync applies
    /// nothing, so re-syncing after recovery is safe.
    fn run_round_stream(&mut self) {
        let round = std::mem::take(&mut self.round_groups);
        let mut attempts = 0;
        let result = 'attempt: loop {
            // Fresh-output semantics per attempt, matching the direct path.
            for &gi in round.iter() {
                if let Err(e) = self.groups[gi as usize].plan.zero_output(&mut self.backend) {
                    if attempts < MAX_RECOVERY_ATTEMPTS {
                        attempts += 1;
                        self.recover(&e);
                        continue 'attempt;
                    }
                    break 'attempt Err(ServeError::Device {
                        message: e.to_string(),
                    });
                }
            }
            let mut stream = CommandStream::new();
            for &gi in round.iter() {
                let g = &self.groups[gi as usize];
                g.plan.push_commands(&g.x_stage, &mut stream);
            }
            match self.backend.try_sync(&mut stream) {
                Ok(outputs) => break Ok(outputs),
                Err(e) if attempts < MAX_RECOVERY_ATTEMPTS => {
                    attempts += 1;
                    self.recover(&e);
                }
                Err(e) => {
                    break Err(ServeError::Device {
                        message: e.to_string(),
                    })
                }
            }
        };
        match result {
            Ok(outputs) => {
                // Three outputs per batch, in enqueue order; the third
                // carries the batch's gathered grid-wide output.
                let mut outputs = outputs.into_iter();
                for &gi in round.iter() {
                    let _scatter = outputs.next();
                    let _launch = outputs.next();
                    let y = outputs
                        .next()
                        .and_then(CommandOutput::into_gathered)
                        .expect("stream round yields one gather per batch");
                    self.groups[gi as usize].y_scratch = y;
                    self.finish_batch(gi as usize, Ok(()));
                }
            }
            Err(e) => {
                for &gi in round.iter() {
                    self.finish_batch(gi as usize, Err(e.clone()));
                }
            }
        }
        self.round_groups = round;
    }

    /// Distributes one executed (or failed) batch to its member requests.
    fn finish_batch(&mut self, gi: usize, result: Result<(), ServeError>) {
        let SessionServer {
            groups,
            requests,
            models,
            tenants,
            stats,
            tele,
            ..
        } = self;
        let g = &mut groups[gi];
        let size = g.batch.len() as u32;
        match result {
            Ok(()) => {
                for &req in g.batch.iter() {
                    let slot = &mut requests[req as usize];
                    let model = &models[slot.model.0 as usize];
                    g.plan
                        .decode_into(model.slot, &g.y_scratch, &mut slot.result);
                    slot.state = ReqState::Done;
                    let latency = slot.submitted.elapsed().as_secs_f64();
                    slot.report = RequestReport {
                        latency_seconds: latency,
                        batch_size: size,
                    };
                    let tenant = &mut tenants[model.tenant.0 as usize];
                    let ts = &mut tenant.stats;
                    ts.completed += 1;
                    ts.served_work += g.plan.work();
                    ts.total_latency_seconds += latency;
                    ts.max_latency_seconds = ts.max_latency_seconds.max(latency);
                    stats.completed += 1;
                    if let Some(t) = tele {
                        t.completed.inc();
                        t.latency.record(latency);
                    }
                    if let Some(tt) = &tenant.tele {
                        tt.completed.inc();
                        tt.latency.record(latency);
                    }
                }
                g.launches += 1;
                stats.batches += 1;
                stats.batched_requests += u64::from(size);
                stats.largest_batch = stats.largest_batch.max(u64::from(size));
                if let Some(t) = tele {
                    t.batch_size.record(f64::from(size));
                }
            }
            Err(e) => {
                for &req in g.batch.iter() {
                    let slot = &mut requests[req as usize];
                    let model = &models[slot.model.0 as usize];
                    slot.state = ReqState::Failed;
                    slot.error = Some(e.clone());
                    let tenant = &mut tenants[model.tenant.0 as usize];
                    tenant.stats.failed += 1;
                    stats.failed += 1;
                    if let Some(t) = tele {
                        t.failed.inc();
                    }
                    if let Some(tt) = &tenant.tele {
                        tt.failed.inc();
                    }
                }
            }
        }
        g.batch.clear();
        g.in_round = false;
    }

    /// Device recovery: re-execution handles a transient that outlived the
    /// retry budget (faulted commands commit nothing); a permanent grid
    /// fault fails over to a spare built from the still-readable MRAM image
    /// — which carries every tenant's resident weights — exactly the
    /// session recovery loop's spare-grid path.
    fn recover(&mut self, error: &SimError) {
        self.stats.recoveries += 1;
        if error.is_permanent_fault() {
            let spare = self.backend.system().fault_free_clone();
            *self.backend.system_mut() = spare;
            self.stats.failovers += 1;
        }
    }

    // -- introspection ------------------------------------------------------

    /// Cumulative server-wide counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Cumulative counters of one tenant.
    ///
    /// # Panics
    ///
    /// If the tenant was never registered.
    pub fn tenant_stats(&self, tenant: TenantId) -> TenantStats {
        self.tenants[tenant.0 as usize].stats
    }

    /// The registration name of a tenant.
    ///
    /// # Panics
    ///
    /// If the tenant was never registered.
    pub fn tenant_name(&self, tenant: TenantId) -> &str {
        &self.tenants[tenant.0 as usize].name
    }

    /// Number of batched shape classes currently resident.
    pub fn shape_groups(&self) -> usize {
        self.groups.len()
    }

    /// Batched launches executed per shape class, in class creation order —
    /// the serving analogue of the session's plan-cache replay counters
    /// (every launch after a class's first is a signature-keyed replay of
    /// its batch plan).
    pub fn group_launches(&self) -> impl Iterator<Item = u64> + '_ {
        self.groups.iter().map(|g| g.launches)
    }

    /// Requests queued but not yet scheduled.
    pub fn queue_backlog(&self) -> usize {
        self.queue.backlog()
    }

    /// Memory-pressure counters of the serving residency manager: class
    /// evictions, weight reloads and their scattered bytes, plus the
    /// allocator's high-water mark against the admission budget.
    pub fn residency_snapshot(&self) -> ServerResidency {
        ServerResidency {
            evictions: self.res_evictions,
            reloads: self.res_reloads,
            reload_bytes: self.res_reload_bytes,
            peak_mram_bytes: self.backend.system().mram_peak_bytes(),
            used_mram_bytes: self.mram_used_bytes,
            limit_bytes: self.mram_limit_bytes,
        }
    }

    /// Per-DPU MRAM bytes claimed by resident shape classes.
    pub fn mram_used_bytes(&self) -> usize {
        self.mram_used_bytes
    }

    /// Per-DPU MRAM budget for resident state.
    pub fn mram_limit_bytes(&self) -> usize {
        self.mram_limit_bytes
    }

    /// Accumulated simulated statistics of the owned grid.
    pub fn upmem_stats(&self) -> &SystemStats {
        self.backend.stats()
    }

    /// Fault-tolerance counters of the owned backend (retries, backoff,
    /// permanent faults) plus the server's own recovery counters in
    /// [`stats`](Self::stats).
    pub fn fault_stats(&self) -> FaultStats {
        self.backend.fault_stats()
    }

    /// Number of DPUs in the owned grid.
    pub fn num_dpus(&self) -> usize {
        self.backend.num_dpus()
    }
}

/// Shape of a batched class before its plan exists (admission accounting).
#[derive(Debug, Clone, Copy)]
enum GroupShape {
    Gemv { rows: usize, cols: usize },
    Gemm { m: usize, k: usize, n: usize },
}

impl GroupShape {
    /// Per-DPU element footprint — must match
    /// [`BatchPlan::elems_per_dpu`] (debug-asserted after plan creation).
    fn elems_per_dpu(self, slot_dpus: usize) -> usize {
        match self {
            GroupShape::Gemv { rows, cols } => {
                let rpd = rows.div_ceil(slot_dpus);
                rpd * cols + cols + rpd
            }
            GroupShape::Gemm { m, k, n } => {
                let rpd = m.div_ceil(slot_dpus);
                rpd * k + k * n + rpd * n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ServerOptions {
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 8;
        cfg.host_threads = 1;
        ServerOptions::default()
            .with_upmem_config(cfg)
            .with_tenant_slots(4)
    }

    fn host_gemv(a: &[i32], x: &[i32], rows: usize, cols: usize) -> Vec<i32> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| a[r * cols + c].wrapping_mul(x[c]))
                    .fold(0, i32::wrapping_add)
            })
            .collect()
    }

    fn host_gemm(a: &[i32], b: &[i32], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut y = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc = acc.wrapping_add(a[i * k + p].wrapping_mul(b[p * n + j]));
                }
                y[i * n + j] = acc;
            }
        }
        y
    }

    fn ramp(len: usize, scale: i32, bias: i32) -> Vec<i32> {
        (0..len)
            .map(|i| (i as i32).wrapping_mul(scale) + bias)
            .collect()
    }

    #[test]
    fn a_single_tenant_request_matches_the_host_oracle() {
        let mut server = SessionServer::new(tiny_options());
        let t = server.register_tenant(TenantSpec::new("solo"));
        let (rows, cols) = (11, 7);
        let a = ramp(rows * cols, 3, -5);
        let x = ramp(cols, 2, 1);
        let model = server.load_gemv_weights(t, &a, rows, cols).unwrap();
        let ticket = server.submit(model, &x).unwrap();
        let y = server.wait(ticket).unwrap();
        assert_eq!(y, host_gemv(&a, &x, rows, cols));
        assert_eq!(server.stats().completed, 1);
        assert_eq!(server.stats().batches, 1);
    }

    #[test]
    fn same_shaped_requests_from_four_tenants_fuse_into_one_launch() {
        let mut server = SessionServer::new(tiny_options());
        let (rows, cols) = (9, 6);
        let mut tickets = Vec::new();
        let mut expected = Vec::new();
        for i in 0..4 {
            let t = server.register_tenant(TenantSpec::new(format!("tenant-{i}")));
            let a = ramp(rows * cols, i + 1, i);
            let x = ramp(cols, 2 * i + 1, -i);
            let model = server.load_gemv_weights(t, &a, rows, cols).unwrap();
            tickets.push(server.submit(model, &x).unwrap());
            expected.push(host_gemv(&a, &x, rows, cols));
        }
        let launches_before = server.upmem_stats().launches;
        server.run_until_idle();
        let launches_after = server.upmem_stats().launches;
        // One fused launch served all four tenants.
        assert_eq!(launches_after - launches_before, 1);
        assert_eq!(server.stats().batches, 1);
        assert_eq!(server.stats().largest_batch, 4);
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let mut got = Vec::new();
            let report = server.wait_into(ticket, &mut got).unwrap();
            assert_eq!(got, want);
            assert_eq!(report.batch_size, 4);
        }
    }

    #[test]
    fn a_mixed_shape_round_fuses_into_one_stream_sync() {
        let mut server = SessionServer::new(tiny_options());
        let ta = server.register_tenant(TenantSpec::new("gemv-tenant"));
        let tb = server.register_tenant(TenantSpec::new("gemm-tenant"));
        let a = ramp(8 * 5, 2, 3);
        let x = ramp(5, 3, -1);
        let b_w = ramp(6 * 4, 1, -2);
        let b_x = ramp(4 * 3, 2, 5);
        let ma = server.load_gemv_weights(ta, &a, 8, 5).unwrap();
        let mb = server.load_gemm_weights(tb, &b_w, 6, 4, 3).unwrap();
        let qa = server.submit(ma, &x).unwrap();
        let qb = server.submit(mb, &b_x).unwrap();
        assert_eq!(server.step(), 2);
        assert_eq!(server.stats().stream_rounds, 1);
        assert_eq!(server.shape_groups(), 2);
        assert_eq!(server.wait(qa).unwrap(), host_gemv(&a, &x, 8, 5));
        assert_eq!(server.wait(qb).unwrap(), host_gemm(&b_w, &b_x, 6, 4, 3));
    }

    #[test]
    fn admission_errors_are_typed_not_hangs() {
        // Queue depth.
        let mut server = SessionServer::new(tiny_options().with_queue_depth(2));
        let t = server.register_tenant(TenantSpec::new("bursty"));
        let a = ramp(4 * 4, 1, 0);
        let model = server.load_gemv_weights(t, &a, 4, 4).unwrap();
        let x = ramp(4, 1, 0);
        let q1 = server.submit(model, &x).unwrap();
        let q2 = server.submit(model, &x).unwrap();
        match server.submit(model, &x) {
            Err(ServeError::QueueFull { tenant, depth }) => {
                assert_eq!(tenant, t);
                assert_eq!(depth, 2);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(server.stats().rejected, 1);
        server.run_until_idle();
        assert!(server.wait(q1).is_ok());
        assert!(server.wait(q2).is_ok());

        // MRAM budget.
        let mut server = SessionServer::new(tiny_options().with_mram_limit_bytes(64));
        let t = server.register_tenant(TenantSpec::new("hungry"));
        match server.load_gemv_weights(t, &ramp(32 * 32, 1, 0), 32, 32) {
            Err(ServeError::CapacityExhausted {
                needed_bytes,
                available_bytes,
            }) => {
                assert!(needed_bytes > available_bytes);
                assert_eq!(available_bytes, 64);
            }
            other => panic!("expected CapacityExhausted, got {other:?}"),
        }

        // Tenant slots.
        let mut server = SessionServer::new(tiny_options().with_tenant_slots(2));
        let t = server.register_tenant(TenantSpec::new("wide"));
        let a = ramp(4 * 4, 1, 0);
        server.load_gemv_weights(t, &a, 4, 4).unwrap();
        server.load_gemv_weights(t, &a, 4, 4).unwrap();
        match server.load_gemv_weights(t, &a, 4, 4) {
            Err(ServeError::SlotsExhausted { slots }) => assert_eq!(slots, 2),
            other => panic!("expected SlotsExhausted, got {other:?}"),
        }

        // Shape mismatch.
        let mut server = SessionServer::new(tiny_options());
        let t = server.register_tenant(TenantSpec::new("sloppy"));
        let model = server
            .load_gemv_weights(t, &ramp(4 * 4, 1, 0), 4, 4)
            .unwrap();
        assert!(matches!(
            server.submit(model, &ramp(3, 1, 0)),
            Err(ServeError::ShapeMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn telemetry_exports_server_and_tenant_series() {
        let tele = cinm_telemetry::Telemetry::new();
        let mut server = SessionServer::new(
            tiny_options()
                .with_queue_depth(1)
                .with_telemetry(tele.clone()),
        );
        let t = server.register_tenant(TenantSpec::new("alpha"));
        let (rows, cols) = (6, 4);
        let a = ramp(rows * cols, 1, 0);
        let x = ramp(cols, 2, -1);
        let model = server.load_gemv_weights(t, &a, rows, cols).unwrap();
        let q1 = server.submit(model, &x).unwrap();
        assert!(matches!(
            server.submit(model, &x),
            Err(ServeError::QueueFull { .. })
        ));
        server.run_until_idle();
        assert_eq!(server.wait(q1).unwrap(), host_gemv(&a, &x, rows, cols));
        let snap = tele.snapshot();
        assert_eq!(snap.counter("serve.requests.submitted"), Some(1));
        assert_eq!(snap.counter("serve.requests.completed"), Some(1));
        assert_eq!(snap.counter("serve.admission.rejected"), Some(1));
        assert_eq!(snap.counter("serve.tenant.alpha.submitted"), Some(1));
        assert_eq!(snap.counter("serve.tenant.alpha.completed"), Some(1));
        assert_eq!(snap.counter("serve.tenant.alpha.rejected"), Some(1));
        assert_eq!(snap.histogram("serve.latency.seconds").unwrap().count, 1);
        assert_eq!(
            snap.histogram("serve.tenant.alpha.latency.seconds")
                .unwrap()
                .count,
            1
        );
        let bs = snap.histogram("serve.batch.size").unwrap();
        assert_eq!((bs.count, bs.sum), (1, 1.0));
        // The queue backlog gauge drained back to zero after the round.
        assert_eq!(snap.gauge("serve.queue.depth"), Some(0.0));
        // Simulator and pool series flow through the same shared registry.
        assert!(snap.counter("upmem.launches").unwrap_or(0) >= 1);
        assert!(snap.gauge("upmem.energy_j").unwrap_or(0.0) > 0.0);
        assert!(snap.gauge("runtime.pool.workers").unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn soft_admission_evicts_cold_classes_and_reloads_bit_identically() {
        // 8 DPUs / 4 tenant slots => 2 DPUs per slot: gemv 4x4 is 56 B/DPU
        // and gemv 8x4 is 96 B/DPU, so either class fits under a 128-byte
        // budget alone but never both at once.
        let mut server = SessionServer::new(tiny_options().with_mram_limit_bytes(128));
        let t = server.register_tenant(TenantSpec::new("hot"));
        let u = server.register_tenant(TenantSpec::new("cold"));
        let a = ramp(4 * 4, 3, -5);
        let b = ramp(8 * 4, 2, 1);
        let xa = ramp(4, 1, 2);
        let xb = ramp(4, -1, 7);
        let ma = server.load_gemv_weights(t, &a, 4, 4).unwrap();
        let before = server.submit(ma, &xa).and_then(|q| server.wait(q)).unwrap();
        // The second class does not fit next to the first: admission evicts
        // the idle class's weights instead of returning CapacityExhausted.
        let mb = server.load_gemv_weights(u, &b, 8, 4).unwrap();
        assert!(server.residency_snapshot().evictions >= 1);
        assert!(server.mram_used_bytes() <= 128);
        // Scheduling the evicted class re-admits it transparently (evicting
        // the other in turn) and serves bit-identical results.
        let after = server.submit(ma, &xa).and_then(|q| server.wait(q)).unwrap();
        assert_eq!(after, before);
        assert_eq!(after, host_gemv(&a, &xa, 4, 4));
        let yb = server.submit(mb, &xb).and_then(|q| server.wait(q)).unwrap();
        assert_eq!(yb, host_gemv(&b, &xb, 8, 4));
        let snap = server.residency_snapshot();
        assert!(snap.reloads >= 2);
        assert!(snap.reload_bytes > 0);
        assert!(snap.peak_mram_bytes <= 128);
        assert_eq!(snap.limit_bytes, 128);
    }

    #[test]
    fn unloading_releases_slots_and_mram_bytes() {
        let mut server = SessionServer::new(tiny_options().with_tenant_slots(2));
        let t = server.register_tenant(TenantSpec::new("a"));
        let u = server.register_tenant(TenantSpec::new("b"));
        let a = ramp(4 * 4, 1, 0);
        let x = ramp(4, 1, 0);
        let m1 = server.load_gemv_weights(t, &a, 4, 4).unwrap();
        let m2 = server.load_gemv_weights(u, &a, 4, 4).unwrap();
        assert!(matches!(
            server.load_gemv_weights(t, &a, 4, 4),
            Err(ServeError::SlotsExhausted { .. })
        ));
        // A queued request pins the model.
        let q = server.submit(m1, &x).unwrap();
        assert_eq!(server.unload_model(m1), Err(ServeError::ModelBusy));
        server.wait(q).unwrap();
        // Draining unblocks the unload; the freed slot is reusable and the
        // stale handle stays typed.
        server.unload_model(m1).unwrap();
        assert_eq!(server.submit(m1, &x), Err(ServeError::UnknownModel));
        assert_eq!(server.unload_model(m1), Err(ServeError::UnknownModel));
        let m3 = server.load_gemv_weights(t, &a, 4, 4).unwrap();
        let y = server.submit(m3, &x).and_then(|q| server.wait(q)).unwrap();
        assert_eq!(y, host_gemv(&a, &x, 4, 4));
        let y2 = server.submit(m2, &x).and_then(|q| server.wait(q)).unwrap();
        assert_eq!(y2, host_gemv(&a, &x, 4, 4));
        // Emptying the class returns its per-DPU bytes to the budget.
        assert!(server.mram_used_bytes() > 0);
        server.unload_tenant(t).unwrap();
        assert!(server.mram_used_bytes() > 0, "class still hosts tenant b");
        server.unload_tenant(u).unwrap();
        assert_eq!(server.mram_used_bytes(), 0);
        // Tenants stay registered and can load again (re-admitting the
        // released class through the residency path).
        let m4 = server.load_gemv_weights(t, &a, 4, 4).unwrap();
        let y = server.submit(m4, &x).and_then(|q| server.wait(q)).unwrap();
        assert_eq!(y, host_gemv(&a, &x, 4, 4));
    }

    #[test]
    fn a_consumed_ticket_turns_stale() {
        let mut server = SessionServer::new(tiny_options());
        let t = server.register_tenant(TenantSpec::new("solo"));
        let model = server
            .load_gemv_weights(t, &ramp(4 * 4, 1, 0), 4, 4)
            .unwrap();
        let ticket = server.submit(model, &ramp(4, 1, 0)).unwrap();
        server.wait(ticket).unwrap();
        assert_eq!(server.wait(ticket), Err(ServeError::StaleTicket));
    }

    #[test]
    fn injected_faults_recover_without_corrupting_any_tenant() {
        let fault = FaultConfig::seeded(0xC1A0)
            .with_launch_fault_rate(0.2)
            .with_transfer_timeout_rate(0.1)
            .with_permanent_after_launches(6);
        let mut server = SessionServer::new(tiny_options().with_fault(fault));
        let (rows, cols) = (7, 5);
        let mut models = Vec::new();
        let mut weights = Vec::new();
        for i in 0..3 {
            let t = server.register_tenant(TenantSpec::new(format!("t{i}")));
            let a = ramp(rows * cols, i + 2, -i);
            models.push(server.load_gemv_weights(t, &a, rows, cols).unwrap());
            weights.push(a);
        }
        for round in 0..6 {
            let x = ramp(cols, round + 1, round);
            let tickets: Vec<_> = models
                .iter()
                .map(|&m| server.submit(m, &x).unwrap())
                .collect();
            for (ticket, a) in tickets.into_iter().zip(&weights) {
                let y = server.wait(ticket).unwrap();
                assert_eq!(y, host_gemv(a, &x, rows, cols), "round {round}");
            }
        }
        let fault_stats = server.fault_stats();
        assert!(
            fault_stats.transient_retries > 0 || fault_stats.permanent_faults > 0,
            "the schedule should have injected faults"
        );
        assert_eq!(server.stats().failed, 0);
    }

    #[test]
    fn weighted_tenants_get_proportional_service_under_backlog() {
        let mut server = SessionServer::new(tiny_options().with_max_batch(1).with_queue_depth(64));
        let heavy = server.register_tenant(TenantSpec::new("heavy").with_weight(3));
        let light = server.register_tenant(TenantSpec::new("light"));
        let a = ramp(6 * 4, 1, 1);
        let mh = server.load_gemv_weights(heavy, &a, 6, 4).unwrap();
        let ml = server.load_gemv_weights(light, &a, 6, 4).unwrap();
        let x = ramp(4, 1, 0);
        let mut tickets = Vec::new();
        for _ in 0..16 {
            tickets.push(server.submit(mh, &x).unwrap());
            tickets.push(server.submit(ml, &x).unwrap());
        }
        // Drain half the backlog: the heavy tenant should have ~3x the
        // completions of the light one (max_batch 1 serializes rounds).
        for _ in 0..16 {
            assert!(server.step() > 0);
        }
        let sh = server.tenant_stats(heavy);
        let sl = server.tenant_stats(light);
        assert_eq!(sh.completed + sl.completed, 16);
        assert!(
            sh.completed >= 11 && sh.completed <= 13,
            "heavy share {} of 16 is not ~3:1",
            sh.completed
        );
        server.run_until_idle();
        for ticket in tickets {
            server.wait(ticket).unwrap();
        }
    }
}
