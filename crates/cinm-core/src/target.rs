//! Target selection and the cost-model interface (paper Sections 3.2.2, 3.3).
//!
//! The `cinm` abstraction delegates each kernel to a suitable device — or,
//! since the sharded execution layer, to **several at once**. Two policies
//! build on the same [`CostModel`] registry:
//!
//! * **Single-target selection** ([`TargetSelector`], this module): each op
//!   goes to exactly one device. Registered cost models take precedence
//!   (fastest estimate wins); in their absence the greedy default policy of
//!   the paper applies — matmul-like operations whose dimensions exceed a
//!   threshold go to the CIM crossbar, every other operation in the `cinm`
//!   op set goes to UPMEM, and anything that cannot be expressed in the
//!   Table 1 op set stays on the host.
//! * **Sharded placement** ([`crate::shard::ShardPlanner`]): one op is
//!   split into per-device shards (GEMM/GEMV by output rows, element-wise/
//!   reduce/histogram by elements). The balancing rule sizes each device's
//!   shard proportionally to its processing rate `1/t_i` from the cost-model
//!   estimates, so all devices are predicted to finish simultaneously; a
//!   device whose model returns `None` for the op receives zero work. The
//!   resulting [`crate::shard::ShardPlan`] records the split, the fractions
//!   and the per-device time estimates, and is executed by
//!   `cinm_lowering::ShardedBackend`. The planner **falls back to
//!   single-target placement** (all work on the fastest supporting device)
//!   when the op has fewer than two granules of work, when only one device
//!   supports it, or when the policy forces a single target — so tiny or
//!   host-only ops behave exactly as under the selector.

use std::collections::BTreeMap;

use cinm_dialects::cinm;
use cinm_ir::prelude::*;

/// An offload target of the heterogeneous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Target {
    /// Memristive crossbar CIM accelerator.
    Cim,
    /// UPMEM compute-near-memory system.
    Cnm,
    /// Host CPU.
    Host,
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Target::Cim => "cim",
            Target::Cnm => "cnm (upmem)",
            Target::Host => "host",
        };
        f.write_str(s)
    }
}

/// A device cost model, registered by a device dialect.
pub trait CostModel {
    /// The target the model describes.
    fn target(&self) -> Target;

    /// Estimated execution time in seconds of a `cinm` operation with the
    /// given name and operand element count, or `None` if the device cannot
    /// execute the op.
    fn estimate_seconds(&self, op_name: &str, elements: i64) -> Option<f64>;

    /// Estimated execution time in seconds of a *shard* of a `cinm`
    /// operation with the given shape (see [`crate::shard::ShardShape`]), or
    /// `None` if the device cannot execute the op. The shard planner samples
    /// this at several shard sizes to separate fixed per-dispatch overheads
    /// (broadcasts, tile programming, launch latency) from marginal
    /// per-unit cost. The default implementation falls back to
    /// [`CostModel::estimate_seconds`] over the shard's operand elements.
    fn estimate_shard_seconds(
        &self,
        op_name: &str,
        shape: &crate::shard::ShardShape,
    ) -> Option<f64> {
        self.estimate_seconds(op_name, shape.sharded_elements())
    }

    /// Estimated *energy* in joules of a shard of a `cinm` operation, or
    /// `None` when the device cannot execute the op or the model carries no
    /// energy calibration. Drives energy-aware placement
    /// ([`crate::shard::ShardPolicy::MinimizeEnergy`]); models without an
    /// energy figure simply drop out of energy-based plans while remaining
    /// fully usable for latency-based planning.
    fn estimate_shard_joules(
        &self,
        op_name: &str,
        shape: &crate::shard::ShardShape,
    ) -> Option<f64> {
        let _ = (op_name, shape);
        None
    }
}

/// Registry of cost models plus the greedy fallback policy.
#[derive(Default)]
pub struct TargetSelector {
    models: Vec<Box<dyn CostModel>>,
    /// Minimum matmul-like operand elements for greedy CIM offload.
    pub cim_threshold_elements: i64,
    /// Optional user override (the "command line" option of the paper).
    pub user_override: Option<Target>,
}

impl std::fmt::Debug for TargetSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetSelector")
            .field("models", &self.models.len())
            .field("cim_threshold_elements", &self.cim_threshold_elements)
            .field("user_override", &self.user_override)
            .finish()
    }
}

impl TargetSelector {
    /// Creates a selector with the default threshold (a 64×64 operand).
    pub fn new() -> Self {
        TargetSelector {
            models: Vec::new(),
            cim_threshold_elements: 64 * 64,
            user_override: None,
        }
    }

    /// Registers a device cost model.
    pub fn register_model(&mut self, model: Box<dyn CostModel>) {
        self.models.push(model);
    }

    /// Number of registered cost models.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Selects a target for one `cinm` operation.
    pub fn select_for_op(&self, body: &Body, op: OpId) -> Target {
        if let Some(t) = self.user_override {
            return t;
        }
        let operation = body.op(op);
        let elements = operation
            .operands
            .iter()
            .map(|&v| body.value_type(v).num_elements())
            .max()
            .unwrap_or(0);
        // Registered cost models take precedence: pick the fastest estimate.
        let mut best: Option<(Target, f64)> = None;
        for model in &self.models {
            if let Some(est) = model.estimate_seconds(&operation.name, elements) {
                if best.map(|(_, t)| est < t).unwrap_or(true) {
                    best = Some((model.target(), est));
                }
            }
        }
        if let Some((target, _)) = best {
            return target;
        }
        // Greedy default policy.
        match cinm::paradigm_support(&operation.name) {
            Some(support) => {
                let matmul_like = operation.name == cinm::GEMM || operation.name == cinm::GEMV;
                if matmul_like && support.cim && elements >= self.cim_threshold_elements {
                    Target::Cim
                } else if support.cnm {
                    Target::Cnm
                } else if support.cim {
                    Target::Cim
                } else {
                    Target::Host
                }
            }
            None => Target::Host,
        }
    }

    /// Selects targets for every `cinm` op of a function and returns the
    /// per-target op counts (the kernel/region partitioning summary).
    pub fn select_for_func(&self, func: &Func) -> BTreeMap<Target, usize> {
        let mut counts = BTreeMap::new();
        for op in func.body.walk() {
            if func.body.op(op).dialect() != "cinm" {
                continue;
            }
            let t = self.select_for_op(&func.body, op);
            *counts.entry(t).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinm_dialects::cinm as cinm_ops;

    struct AlwaysCheapCnm;

    impl CostModel for AlwaysCheapCnm {
        fn target(&self) -> Target {
            Target::Cnm
        }
        fn estimate_seconds(&self, _op: &str, _elements: i64) -> Option<f64> {
            Some(1e-9)
        }
    }

    fn gemm_func(dim: i64) -> Func {
        let t = Type::tensor(&[dim, dim], ScalarType::I32);
        let mut f = Func::new("g", vec![t.clone(), t.clone()], vec![t]);
        let args = f.arguments();
        let entry = f.body.entry_block();
        let mut b = OpBuilder::at_end(&mut f.body, entry);
        cinm_ops::gemm(&mut b, args[0], args[1]);
        f
    }

    #[test]
    fn large_gemms_go_to_cim_small_ones_to_cnm() {
        let selector = TargetSelector::new();
        let big = gemm_func(128);
        let small = gemm_func(16);
        let big_op = big.body.ops_with_name(cinm_ops::GEMM)[0];
        let small_op = small.body.ops_with_name(cinm_ops::GEMM)[0];
        assert_eq!(selector.select_for_op(&big.body, big_op), Target::Cim);
        assert_eq!(selector.select_for_op(&small.body, small_op), Target::Cnm);
    }

    #[test]
    fn cnm_only_and_cim_only_ops_respect_the_support_matrix() {
        let t = Type::tensor(&[1024], ScalarType::I32);
        let mut f = Func::new("x", vec![t.clone()], vec![]);
        let a = f.argument(0);
        let entry = f.body.entry_block();
        let mut b = OpBuilder::at_end(&mut f.body, entry);
        let h = cinm_ops::histogram(&mut b, a, 64);
        let _ = cinm_ops::pop_count(&mut b, h);
        let selector = TargetSelector::new();
        let hist = f.body.ops_with_name(cinm_ops::HISTOGRAM)[0];
        let pc = f.body.ops_with_name(cinm_ops::POP_COUNT)[0];
        assert_eq!(selector.select_for_op(&f.body, hist), Target::Cnm);
        assert_eq!(selector.select_for_op(&f.body, pc), Target::Cim);
    }

    #[test]
    fn user_override_and_cost_models_take_precedence() {
        let mut selector = TargetSelector::new();
        let f = gemm_func(256);
        let op = f.body.ops_with_name(cinm_ops::GEMM)[0];
        // Registered model wins over the greedy policy.
        selector.register_model(Box::new(AlwaysCheapCnm));
        assert_eq!(selector.num_models(), 1);
        assert_eq!(selector.select_for_op(&f.body, op), Target::Cnm);
        // Explicit user choice wins over everything.
        selector.user_override = Some(Target::Host);
        assert_eq!(selector.select_for_op(&f.body, op), Target::Host);
    }

    #[test]
    fn func_level_summary_counts_cinm_ops() {
        let selector = TargetSelector::new();
        let f = gemm_func(128);
        let counts = selector.select_for_func(&f);
        assert_eq!(counts.get(&Target::Cim), Some(&1));
        assert_eq!(counts.values().sum::<usize>(), 1);
    }
}
