//! Multi-tenant serving through the `SessionServer`: several tenants with
//! their own resident weights, weighted-fair scheduling, and same-shaped
//! requests from different tenants fused into one sharded launch per round
//! (only activations move). A solo-`Session`-per-tenant baseline serves the
//! same request streams serially for comparison — bit-identity is asserted,
//! and its plan-cache/optimizer counters show what the server's batched
//! replay path amortises.
//!
//! ```text
//! cargo run --release --example session_serving
//! ```

use std::time::Instant;

use cinm::core::serve::{RequestTicket, ServerOptions, SessionServer, TenantSpec};
use cinm::core::session::{Session, SessionOptions};
use cinm::core::{ShardPolicy, Target};
use cinm::telemetry::Telemetry;
use cinm::workloads::data;

fn main() {
    let (rows, cols) = (512usize, 256usize);
    let rounds = 24usize;
    // One shared registry: the server, its simulator and its worker pool all
    // export into it, and the snapshot at the end unifies every layer.
    let telemetry = Telemetry::new();

    // Four tenants share one gemv shape class (their requests fuse into one
    // launch per round); weights skew the schedule 4:2:1:1 under backlog.
    let tenant_specs = [
        ("search", 4u32, 1u8),
        ("ads", 2, 0),
        ("feed", 1, 0),
        ("batch-jobs", 1, 0),
    ];
    let weights_data: Vec<Vec<i32>> = (0..tenant_specs.len())
        .map(|i| data::i32_matrix(1 + i as u64, rows, cols, -8, 8))
        .collect();
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|i| data::i32_vec(10 + i as u64, cols, -8, 8))
        .collect();

    // ---- the server: one device set, every tenant's weights resident ----
    let mut server = SessionServer::new(
        ServerOptions::default()
            .with_tenant_slots(4)
            .with_telemetry(telemetry.clone()),
    );
    let mut tenants = Vec::new();
    let mut models = Vec::new();
    for ((name, weight, priority), a) in tenant_specs.iter().zip(&weights_data) {
        let t = server.register_tenant(
            TenantSpec::new(*name)
                .with_weight(*weight)
                .with_priority(*priority),
        );
        models.push(
            server
                .load_gemv_weights(t, a, rows, cols)
                .expect("admitted: fits MRAM budget and tenant slots"),
        );
        tenants.push(t);
    }
    println!(
        "server: {} DPUs, {} shape class(es), {} B/DPU resident of {} B/DPU budget",
        server.num_dpus(),
        server.shape_groups(),
        server.mram_used_bytes(),
        server.mram_limit_bytes(),
    );

    let mut out = Vec::new();
    let mut tickets: Vec<RequestTicket> = Vec::new();
    let mut results: Vec<Vec<i32>> = vec![Vec::new(); tenants.len()];
    let served = Instant::now();
    for round in 0..rounds {
        tickets.clear();
        for &model in &models {
            tickets.push(
                server
                    .submit(model, &xs[round % xs.len()])
                    .expect("admitted: queue has room"),
            );
        }
        // One scheduling round: all four compatible requests fuse into one
        // sharded launch (per-tenant weights resident, activations move).
        server.step();
        for (ti, &ticket) in tickets.iter().enumerate() {
            server.wait_into(ticket, &mut out).expect("served");
            results[ti].clone_from(&out);
        }
    }
    let batched_seconds = served.elapsed().as_secs_f64();

    let stats = server.stats();
    println!(
        "served {} requests in {} launches (largest batch {}, {} stream rounds, {} recoveries)",
        stats.completed, stats.batches, stats.largest_batch, stats.stream_rounds, stats.recoveries,
    );
    for &t in &tenants {
        let s = server.tenant_stats(t);
        println!(
            "  tenant {:<10} completed {:>3}, latency mean {:>7.3} ms, max {:>7.3} ms",
            server.tenant_name(t),
            s.completed,
            s.mean_latency_seconds() * 1e3,
            s.max_latency_seconds * 1e3,
        );
    }
    let launches: Vec<u64> = server.group_launches().collect();
    println!("  per-class batched-plan replays: {launches:?}");
    let snap = server.residency_snapshot();
    println!(
        "  residency: {} evictions, {} weight reloads, peak {} B/DPU of {} B/DPU",
        snap.evictions, snap.reloads, snap.peak_mram_bytes, snap.limit_bytes,
    );

    // ---- the unified telemetry snapshot: every layer, one registry ----
    // Per-tenant serving series, server-wide latency/batch histograms with
    // derived p50/p99, simulator per-op counters with modeled joules, and
    // worker-pool occupancy — all from the one registry threaded through
    // `ServerOptions::with_telemetry` (JSON export: `snapshot.to_json()`).
    let snap = telemetry.snapshot();
    println!("\nunified telemetry snapshot:\n{}", snap.format_text());

    // ---- bounded MRAM: a capped server evicts & reloads cold weights ----
    // The budget admits the four-tenant class alone but not a second shape
    // class next to it: loading the newcomer softly evicts the idle class's
    // reloadable weights, and scheduling the evicted class re-admits it
    // transparently — results stay bit-identical across the round trip.
    let class_bytes = server.mram_used_bytes();
    let mut capped = SessionServer::new(
        ServerOptions::default()
            .with_tenant_slots(4)
            .with_mram_limit_bytes(class_bytes + class_bytes / 4),
    );
    let t0 = capped.register_tenant(TenantSpec::new("resident"));
    let m0 = capped
        .load_gemv_weights(t0, &weights_data[0], rows, cols)
        .expect("fits the budget alone");
    let t1 = capped.register_tenant(TenantSpec::new("newcomer"));
    let half = data::i32_matrix(99, rows / 2, cols, -8, 8);
    let m1 = capped
        .load_gemv_weights(t1, &half, rows / 2, cols)
        .expect("soft admission evicts the idle class instead of failing");
    let x_last = &xs[(rounds - 1) % xs.len()];
    let ticket = capped.submit(m0, x_last).expect("admitted");
    capped.wait_into(ticket, &mut out).expect("served");
    assert_eq!(out, results[0], "evicted-and-reloaded weights diverged");
    let ticket = capped.submit(m1, x_last).expect("admitted");
    capped.wait_into(ticket, &mut out).expect("served");
    let snap = capped.residency_snapshot();
    println!(
        "capped server ({} B/DPU budget): {} evictions, {} reloads ({} B re-scattered), peak {} B/DPU — bit-identical ✔",
        snap.limit_bytes, snap.evictions, snap.reloads, snap.reload_bytes, snap.peak_mram_bytes,
    );
    let used_before = capped.mram_used_bytes();
    capped.unload_tenant(t1).expect("drained tenants unload");
    println!(
        "  unload_tenant(newcomer): {} → {} B/DPU resident",
        used_before,
        capped.mram_used_bytes(),
    );

    // ---- the serial baseline: one private warmed Session per tenant ----
    let mut sessions: Vec<_> = weights_data
        .iter()
        .map(|a| {
            let mut sess = Session::new(
                SessionOptions::default().with_policy(ShardPolicy::Single(Target::Cnm)),
            );
            let at = sess.matrix(a, rows, cols);
            let xt = sess.vector(&xs[0]);
            (sess, at, xt)
        })
        .collect();
    let serial = Instant::now();
    for round in 0..rounds {
        for (ti, (sess, at, xt)) in sessions.iter_mut().enumerate() {
            sess.write(*xt, &xs[round % xs.len()]);
            let y = sess.gemv(*at, *xt);
            sess.run().expect("cnm placement");
            sess.fetch_into(y, &mut out);
            // Every tenant's batched result is bit-identical to its solo
            // session (the rows of a slot stripe are the same sequential
            // dot products the solo plan computes). `results` holds the
            // server's final-round outputs, so compare on the rounds that
            // used the same activation.
            if round % xs.len() == (rounds - 1) % xs.len() {
                assert_eq!(out, results[ti], "tenant {ti} diverged");
            }
        }
    }
    let serial_seconds = serial.elapsed().as_secs_f64();
    println!("results bit-identical to one solo session per tenant ✔");

    let (runs, replays) = sessions[0].0.run_counts();
    let pc = sessions[0].0.plan_cache_stats();
    let opt = sessions[0].0.optimizer_stats();
    println!(
        "solo session (per tenant): {replays}/{runs} plan replays; cache {} entries, {} hits / {} misses; {} graphs optimized",
        pc.entries, pc.hits, pc.misses, opt.graphs_optimized,
    );
    println!(
        "wall-clock: serial {:.4}s vs batched {:.4}s — {:.2}x from cross-tenant fusion",
        serial_seconds,
        batched_seconds,
        serial_seconds / batched_seconds.max(1e-12),
    );
}
