//! Serving loop through the `Session` graph API: a `gemv → select` chain
//! where the matrix stays resident in DPU MRAM across requests, the
//! intermediate vector stays resident between the two kernels, and the
//! compiled plan is replayed with zero steady-state allocations.
//!
//! ```text
//! cargo run --release --example session_serving
//! ```

use cinm::core::session::{Session, SessionOptions};
use cinm::core::{ShardPolicy, Target};
use cinm::lowering::{UpmemBackend, UpmemRunOptions};
use cinm::upmem::BinOp;
use cinm::workloads::data;

fn main() {
    let (rows, cols, requests) = (4096usize, 1024usize, 16usize);
    let a = data::i32_matrix(1, rows, cols, -8, 8);
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|i| data::i32_vec(10 + i as u64, cols, -8, 8))
        .collect();

    // The session: the matrix is written once and never re-transferred.
    let mut sess =
        Session::new(SessionOptions::default().with_policy(ShardPolicy::Single(Target::Cnm)));
    let at = sess.matrix(&a, rows, cols);
    let xt = sess.vector(&xs[0]);
    let mut out = Vec::new();
    let mut checksum = 0i64;
    for req in 0..requests {
        sess.write(xt, &xs[req % xs.len()]); // only the request vector moves
        let y = sess.gemv(at, xt);
        let sel = sess.select(y, 0);
        sess.run().expect("cnm placement");
        sess.fetch_into(sel, &mut out);
        checksum += out.iter().map(|&v| v as i64).sum::<i64>();
    }
    let stats = *sess.upmem_stats();
    let (runs, replays) = sess.run_counts();
    println!(
        "session: {requests} requests, {} host-interface bytes, {replays}/{runs} plan replays",
        stats.host_to_dpu_bytes + stats.dpu_to_host_bytes,
    );

    // The eager oracle: the same chain, full round-trips per op.
    let mut be = UpmemBackend::new(16, UpmemRunOptions::optimized());
    let mut eager_checksum = 0i64;
    for req in 0..requests {
        let y = be.gemv(&a, &xs[req % xs.len()], rows, cols);
        let sel = be.select(&y, 0);
        eager_checksum += sel.iter().map(|&v| v as i64).sum::<i64>();
    }
    let eager = be.stats();
    println!(
        "eager:   {requests} requests, {} host-interface bytes",
        eager.host_to_dpu_bytes + eager.dpu_to_host_bytes,
    );
    assert_eq!(checksum, eager_checksum, "results are bit-identical");
    let ratio = (eager.host_to_dpu_bytes + eager.dpu_to_host_bytes) as f64
        / (stats.host_to_dpu_bytes + stats.dpu_to_host_bytes) as f64;
    println!("device residency moved {ratio:.1}x fewer bytes ✔");

    // Post-processing on-device: an element-wise chain the graph optimizer
    // collapses into a single fused launch per request.
    let mask = sess.vector(&data::i32_vec(42, rows, -8, 8));
    for req in 0..requests {
        sess.write(xt, &xs[req % xs.len()]);
        let y = sess.gemv(at, xt);
        let t0 = sess.elementwise(BinOp::Add, y, mask);
        let t1 = sess.elementwise(BinOp::Max, t0, mask);
        let t2 = sess.elementwise(BinOp::Xor, t1, mask);
        sess.run().expect("cnm placement");
        sess.fetch_into(t2, &mut out);
    }
    let opt = sess.optimizer_stats();
    let pc = sess.plan_cache_stats();
    println!(
        "optimizer: {} graphs optimized, {} groups fused ({} ops, {} launches saved), {} ops eliminated",
        opt.graphs_optimized, opt.fused_groups, opt.ops_fused, opt.launches_saved, opt.ops_eliminated,
    );
    println!(
        "plan cache: {} entries, {} hits / {} misses / {} evictions",
        pc.entries, pc.hits, pc.misses, pc.evictions,
    );
}
