//! Scenario: the Figure 10 style study — run the MLP inference workload on
//! the memristive crossbar accelerator in its four configurations and compare
//! time, energy and crossbar writes against the ARM in-order host.
//!
//! ```text
//! cargo run --release --example cim_mlp
//! ```

use cinm::core::runner;
use cinm::cpu::model::CpuModel;
use cinm::lowering::CimRunOptions;
use cinm::workloads::{Scale, WorkloadId};

fn main() {
    let scale = Scale::Bench;
    let id = WorkloadId::Mlp;
    let arm = CpuModel::arm_host();
    let arm_seconds = runner::cpu_seconds(id, scale, &arm);
    let arm_energy = arm.energy_joules(&runner::cpu_op_counts(id, scale));

    println!("MLP inference on the PCM crossbar accelerator (vs ARM in-order host)");
    println!("configuration     time [ms]   speedup   tile writes   energy [mJ]");
    let configs = [
        ("cim", CimRunOptions::default()),
        (
            "cim-min-writes",
            CimRunOptions {
                min_writes: true,
                parallel_tiles: false,
                ..Default::default()
            },
        ),
        (
            "cim-parallel",
            CimRunOptions {
                min_writes: false,
                parallel_tiles: true,
                ..Default::default()
            },
        ),
        ("cim-opt", CimRunOptions::optimized()),
    ];
    for (name, cfg) in configs {
        let (result, stats) = runner::run_cim_with_stats(id, scale, cfg);
        assert!(!result.is_empty());
        println!(
            "{:<16} {:>10.3} {:>8.1}x {:>13} {:>13.3}",
            name,
            stats.total_seconds() * 1e3,
            arm_seconds / stats.total_seconds(),
            stats.xbar.tile_writes,
            stats.total_energy_j() * 1e3,
        );
    }
    println!(
        "ARM host          {:>10.3} {:>8}  {:>13} {:>13.3}",
        arm_seconds * 1e3,
        "1.0x",
        "-",
        arm_energy * 1e3
    );
    println!("\nThe shape to look for (paper, Figure 10): min-writes cuts crossbar writes");
    println!("by ~7x, and cim-opt combines interchange + tile parallelism for the largest");
    println!("speedup over the host.");
}
