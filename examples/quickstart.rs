//! Quickstart: compile a device-agnostic GEMM down to both backends and run
//! it on the simulated devices.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cinm::core::session::{Session, SessionOptions};
use cinm::core::{cim_pipeline, cnm_pipeline, compile, TargetSelector};
use cinm::dialects::{func, linalg};
use cinm::ir::prelude::*;
use cinm::lowering::{
    CimBackend, CimLoweringOptions, CimRunOptions, UpmemBackend, UpmemRunOptions,
};
use cinm::workloads::data;
use cpu_sim::kernels;

fn main() {
    // 1. Write the kernel once, at the device-agnostic linalg level
    //    (the paper's Figure 3b).
    let (m, k, n) = (256usize, 128usize, 64usize);
    let t = |s: &[usize]| {
        Type::tensor(
            &s.iter().map(|&x| x as i64).collect::<Vec<_>>(),
            ScalarType::I32,
        )
    };
    let mut func_ir = Func::new(
        "matmul",
        vec![t(&[m, k]), t(&[k, n]), t(&[m, n])],
        vec![t(&[m, n])],
    );
    let args = func_ir.arguments();
    let entry = func_ir.body.entry_block();
    let mut b = OpBuilder::at_end(&mut func_ir.body, entry);
    let c = linalg::matmul(&mut b, args[0], args[1], args[2]);
    func::ret(&mut b, &[c]);

    println!("== device-agnostic input ==\n{}", print_func(&func_ir));

    // 2. Lower it through the cinm -> cnm -> upmem pipeline ...
    let mut cnm_module = Module::new("quickstart");
    cnm_module.add_func(func_ir.clone());
    compile(&mut cnm_module, &cnm_pipeline(4, true)).expect("cnm lowering");
    println!("== lowered for UPMEM (excerpt) ==");
    for line in print_func(&cnm_module.funcs[0]).lines().take(12) {
        println!("{line}");
    }

    // ... and through the cinm -> cim -> memristor pipeline.
    let mut cim_module = Module::new("quickstart");
    cim_module.add_func(func_ir.clone());
    compile(
        &mut cim_module,
        &cim_pipeline(CimLoweringOptions::optimized()),
    )
    .expect("cim lowering");

    // 3. The cinm abstraction would normally pick the target; show the
    //    greedy policy's decision.
    let mut cinm_module = Module::new("quickstart");
    cinm_module.add_func(func_ir);
    compile(&mut cinm_module, &cinm::core::cinm_pipeline()).expect("cinm conversion");
    let selector = TargetSelector::new();
    println!(
        "\ntarget selection: {:?}",
        selector.select_for_func(&cinm_module.funcs[0])
    );

    // 4. Execute through the Session graph API — the one public execution
    //    entry point: the graph is recorded lazily, shard-planned per op
    //    from the devices' own cost models, and fetch() is the only point
    //    data returns to the host.
    let a = data::i32_matrix(1, m, k, -8, 8);
    let bm = data::i32_matrix(2, k, n, -8, 8);
    let reference = kernels::matmul(&a, &bm, m, k, n);

    let mut sess = Session::new(SessionOptions::default());
    let at = sess.matrix(&a, m, k);
    let bt = sess.matrix(&bm, k, n);
    let ct = sess.gemm(at, bt);
    sess.run().expect("auto placement");
    assert_eq!(sess.fetch(ct), reference);
    println!("\nSession (auto placement): result matches the host reference ✔");

    // 5. The eager per-backend surfaces remain available as the
    //    equivalence oracle.
    let mut upmem = UpmemBackend::new(4, UpmemRunOptions::optimized());
    let c_upmem = upmem.gemm(&a, &bm, m, k, n);
    assert_eq!(c_upmem, reference);
    println!(
        "UPMEM (4 DIMMs, cinm-opt): {:.3} ms simulated",
        upmem.total_ms()
    );

    let mut cim = CimBackend::new(CimRunOptions::optimized());
    let c_cim = cim.gemm(&a, &bm, m, k, n);
    assert_eq!(c_cim, reference);
    println!(
        "memristor crossbar (cim-opt): {:.3} ms simulated, {} tile writes",
        cim.stats().total_seconds() * 1e3,
        cim.stats().xbar.tile_writes
    );
    println!("results match the host reference ✔");
}
