//! A session surviving injected device faults without changing its answer.
//!
//! Demonstrates the fault-tolerance layer end to end: a deterministic
//! fault schedule makes launches abort transiently, then kills the UPMEM
//! grid for good and sticks every crossbar tile — and the session retries,
//! re-plans across the surviving devices and degrades to host-only
//! execution, producing results bit-identical to the fault-free run.
//!
//! Run with `cargo run --release --example fault_tolerant_gemv`.

use cinm::core::{Session, SessionOptions, ShardPolicy};
use cinm::lowering::ShardDevice;
use cinm::runtime::FaultConfig;
use cinm::telemetry::Telemetry;
use cinm::upmem::UpmemConfig;

fn run(fault: Option<FaultConfig>, telemetry: Option<Telemetry>) -> (Vec<Vec<i32>>, Session) {
    let (rows, cols) = (2048usize, 512usize);
    let a: Vec<i32> = (0..rows * cols).map(|i| (i % 17) as i32 - 8).collect();
    let x: Vec<i32> = (0..cols).map(|i| (i % 13) as i32 - 6).collect();

    let mut options = SessionOptions::default()
        .with_upmem_config(UpmemConfig::with_ranks(2))
        .with_policy(ShardPolicy::Auto);
    if let Some(fault) = fault {
        // One schedule drives BOTH simulators deterministically.
        options = options.with_fault(fault);
    }
    if let Some(t) = telemetry {
        options = options.with_telemetry(t);
    }
    let mut sess = Session::new(options);
    let at = sess.matrix(&a, rows, cols);
    let xt = sess.vector(&x);
    let mut outs = Vec::new();
    for _ in 0..4 {
        let yt = sess.gemv(at, xt);
        sess.run().expect("the host always survives");
        outs.push(sess.fetch(yt));
    }
    (outs, sess)
}

fn main() {
    // The oracle: the same graph with no faults injected.
    let (baseline, _) = run(None, None);

    // The gauntlet: 10% of launches abort transiently, the grid dies
    // permanently after 2 successful launches, and every default crossbar
    // tile is stuck-at from the start. Telemetry observes the whole ordeal
    // through one shared registry (results stay bit-identical either way).
    let telemetry = Telemetry::new();
    let schedule = FaultConfig::seeded(7)
        .with_launch_fault_rate(0.10)
        .with_transfer_timeout_rate(0.02)
        .with_permanent_after_launches(2)
        .with_stuck_tiles(vec![0, 1, 2, 3]);
    let (faulted, sess) = run(Some(schedule), Some(telemetry.clone()));

    assert_eq!(baseline, faulted, "recovered runs are bit-identical");

    let stats = sess.fault_stats();
    println!("survived the schedule with bit-identical results ✔");
    println!("  transient retries : {}", stats.transient_retries);
    println!(
        "  backoff simulated : {:.3} ms",
        stats.backoff_seconds * 1e3
    );
    println!("  permanent faults  : {}", stats.permanent_faults);
    println!("  re-plans          : {}", stats.replans);
    println!("  degradations      : {}", stats.degradations);
    for device in [ShardDevice::Cnm, ShardDevice::Cim, ShardDevice::Host] {
        let h = sess.backend().device(device).health();
        println!(
            "  {device:?}: healthy={} total_failures={} permanent={}",
            sess.backend().device(device).is_healthy(),
            h.total_failures,
            h.permanent
        );
    }

    // The unified snapshot: session run/replay and retry gauges next to the
    // simulators' per-op counters, injected-fault counts and modeled joules
    // — one registry across every layer (`snapshot.to_json()` for export).
    let snap = telemetry.snapshot();
    println!("\nunified telemetry snapshot:\n{}", snap.format_text());
}
