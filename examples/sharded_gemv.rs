//! One GEMV co-executed across UPMEM + the crossbar + the host.
//!
//! Demonstrates the heterogeneous sharded execution layer: the shard
//! planner fits affine cost models for all three devices and balances their
//! estimated completion times, then the sharded backend dispatches the
//! per-device row shards concurrently onto one shared worker pool and
//! concatenates the results — bit-identical to the single-threaded golden
//! kernel.
//!
//! Run with `cargo run --release --example sharded_gemv`.

use cinm::core::shard::{ShardPlanner, ShardShape};
use cinm::cpu::kernels;
use cinm::dialects::cinm as cinm_ops;
use cinm::lowering::{ShardedBackend, ShardedRunOptions};
use cinm::runtime::PoolHandle;

fn main() {
    // One persistent pool shared by the dispatcher and both simulators.
    let pool = PoolHandle::with_threads(4);
    let ranks = 16;
    let (m, k, n) = (8192usize, 1024usize, 1usize);
    let a: Vec<i32> = (0..m * k).map(|i| (i % 17) as i32 - 8).collect();
    let x: Vec<i32> = (0..k).map(|i| (i % 13) as i32 - 6).collect();

    // Plan: balance estimated completion times across the devices.
    let planner = ShardPlanner::with_default_models(ranks);
    let plan = planner
        .plan(cinm_ops::GEMV, ShardShape::matmul(m, k, n))
        .expect("auto policy always plans");
    println!(
        "plan for {}x{} gemv: cnm {} rows, cim {} rows, host {} rows{}",
        m,
        k,
        plan.split.cnm,
        plan.split.cim,
        plan.split.host,
        match plan.fallback {
            Some(t) => format!(" (single-target fallback: {t})"),
            None => String::new(),
        }
    );

    // Execute: the three shards run concurrently on the shared pool.
    let mut backend = ShardedBackend::new(
        ShardedRunOptions::default()
            .with_ranks(ranks)
            .with_pool(pool),
    );
    let y = backend
        .gemv(&a, &x, m, k, &plan.split)
        .expect("sharded gemv");
    assert_eq!(y, kernels::matvec(&a, &x, m, k), "bit-identical merge");

    let stats = backend.stats();
    let f = stats.fractions();
    let u = stats.utilization();
    println!(
        "work fractions   cnm/cim/host: {:.2}/{:.2}/{:.2}",
        f[0], f[1], f[2]
    );
    println!(
        "utilisation      cnm/cim/host: {:.2}/{:.2}/{:.2}",
        u[0], u[1], u[2]
    );
    println!(
        "simulated makespan: {:.3} ms (cnm {:.3} / cim {:.3} / host {:.3} ms)",
        stats.sim_makespan_seconds * 1e3,
        stats.sim_seconds[0] * 1e3,
        stats.sim_seconds[1] * 1e3,
        stats.sim_seconds[2] * 1e3,
    );
    println!(
        "device tasks observed in flight at once: {}",
        stats.max_concurrent
    );
    println!("result verified against the golden host kernel ✔");
}
