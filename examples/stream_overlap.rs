//! Two independent kernels overlapping through one command stream.
//!
//! Demonstrates the batched host API of the shared runtime: commands are
//! recorded into a `CommandStream`, the hazard tracker derives that the two
//! scatter/launch/gather chains touch disjoint buffers, and `sync` executes
//! them concurrently on one persistent worker pool — with results and
//! simulated statistics bit-identical to issuing the calls eagerly one by
//! one.
//!
//! Run with `cargo run --example stream_overlap`.

use cinm::runtime::{CommandStream, PoolHandle};
use cinm::upmem::{BinOp, Command, DpuKernelKind, KernelSpec, SimError, UpmemConfig, UpmemSystem};

fn main() -> Result<(), SimError> {
    // One persistent pool, shared by everything in this process.
    let pool = PoolHandle::with_threads(4);
    let mut cfg = UpmemConfig::with_ranks(1)
        .with_host_threads(4)
        .with_pool(pool);
    cfg.dpus_per_rank = 8;
    let mut sys = UpmemSystem::new(cfg);
    let chunk = 1024usize;
    let elems = chunk * sys.num_dpus();

    // Kernel 1 buffers: c = a + b. Kernel 2 buffers: f = d * e.
    let bufs: Vec<u32> = (0..6)
        .map(|_| sys.alloc_buffer(chunk))
        .collect::<Result<_, _>>()?;
    let (a, b, c, d, e, f) = (bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], bufs[5]);

    let x: Vec<i32> = (0..elems as i32).map(|i| i % 97 - 48).collect();
    let y: Vec<i32> = (0..elems as i32).map(|i| i % 61 - 30).collect();

    // Record the whole host program up front. The four scatters are
    // pairwise independent; the add-launch waits only on (a, b), the
    // mul-launch only on (d, e); each gather waits only on its launch.
    // The hazard DAG therefore runs the two kernel chains concurrently.
    let mut stream = CommandStream::new();
    // Payloads are recorded as *borrowed* slices (no copy).
    stream.enqueue(Command::Scatter {
        buffer: a,
        data: x.as_slice().into(),
        chunk,
    });
    stream.enqueue(Command::Scatter {
        buffer: b,
        data: y.as_slice().into(),
        chunk,
    });
    stream.enqueue(Command::Scatter {
        buffer: d,
        data: y.as_slice().into(),
        chunk,
    });
    stream.enqueue(Command::Scatter {
        buffer: e,
        data: x.as_slice().into(),
        chunk,
    });
    stream.enqueue(Command::Launch {
        spec: KernelSpec::new(
            DpuKernelKind::Elementwise {
                op: BinOp::Add,
                len: chunk,
            },
            vec![a, b],
            c,
        ),
    });
    stream.enqueue(Command::Launch {
        spec: KernelSpec::new(
            DpuKernelKind::Elementwise {
                op: BinOp::Mul,
                len: chunk,
            },
            vec![d, e],
            f,
        ),
    });
    let g_add = stream.enqueue(Command::Gather { buffer: c, chunk });
    let g_mul = stream.enqueue(Command::Gather { buffer: f, chunk });

    println!("recorded {} commands; syncing ...", stream.len());
    let mut outputs = sys.sync(&mut stream)?;

    // Outputs arrive in enqueue order regardless of the execution schedule.
    let mul = outputs.swap_remove(g_mul).into_gathered().expect("gather");
    let add = outputs.swap_remove(g_add).into_gathered().expect("gather");
    for i in [0usize, 1, elems / 2, elems - 1] {
        assert_eq!(add[i], x[i].wrapping_add(y[i]));
        assert_eq!(mul[i], y[i].wrapping_mul(x[i]));
    }

    // The statistics are the same as if the eight commands had been issued
    // eagerly in order (the stream only overlaps the simulator's own work).
    let s = sys.stats();
    println!(
        "ok: {} launches, {:.3} ms simulated kernel time, {:.3} ms transfers",
        s.launches,
        s.kernel_seconds * 1e3,
        (s.host_to_dpu_seconds + s.dpu_to_host_seconds) * 1e3,
    );
    Ok(())
}
