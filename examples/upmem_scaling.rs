//! Scenario: the Figure 11 / Figure 12 style study — run PrIM-class workloads
//! on the simulated UPMEM machine with 4, 8 and 16 DIMMs, with and without
//! the CINM device-aware optimisations, and compare against the optimised
//! host CPU baseline.
//!
//! ```text
//! cargo run --release --example upmem_scaling
//! ```

use cinm::core::runner;
use cinm::cpu::model::CpuModel;
use cinm::lowering::UpmemRunOptions;
use cinm::workloads::{Scale, WorkloadId};

fn main() {
    let scale = Scale::Bench;
    let xeon = CpuModel::xeon_opt();
    println!("workload   ranks   cpu-opt [ms]   cinm [ms]   cinm-opt [ms]   opt gain");
    for id in [
        WorkloadId::Va,
        WorkloadId::Mv,
        WorkloadId::Red,
        WorkloadId::HstL,
        WorkloadId::Mm,
    ] {
        let cpu_ms = runner::cpu_seconds(id, scale, &xeon) * 1e3;
        for ranks in [4usize, 8, 16] {
            let (_, base) =
                runner::run_upmem_with_stats(id, scale, ranks, UpmemRunOptions::default());
            let (_, opt) =
                runner::run_upmem_with_stats(id, scale, ranks, UpmemRunOptions::optimized());
            println!(
                "{:<10} {:>4}d {:>13.3} {:>11.3} {:>14.3} {:>9.1}%",
                id.name(),
                ranks,
                cpu_ms,
                base.total_ms(),
                opt.total_ms(),
                100.0 * (1.0 - opt.total_ms() / base.total_ms()),
            );
        }
    }
    println!("\nThe shape to look for (paper, Figures 11/12): more DIMMs reduce the");
    println!("execution time, and the WRAM-locality optimisation buys ~40-47% on the");
    println!("dense kernels while streaming kernels benefit less.");
}
