//! Serving-layer tests of the multi-tenant `SessionServer`.
//!
//! The properties pinned here are the serving runtime's contract:
//!
//! * **Bit-identity** — for randomized tenant mixes (tenant counts, shape
//!   classes, weights, request interleavings), every tenant's batched
//!   results are bit-identical to the same computation run *alone* in its
//!   own `Session` on its own device set — at 1 and 8 host threads, and
//!   under a seeded fault-injection schedule (transients plus a permanent
//!   grid fault mid-run).
//! * **Fairness** — a deterministic closed loop with one heavy and several
//!   light tenants: every tenant completes requests, the observed service
//!   shares respect the configured weights within tolerance, and admission
//!   rejection surfaces as a typed error rather than a hang.
//!
//! Like `tests/properties.rs`, randomized cases are driven by the
//! workloads' SplitMix64 PRNG from fixed seeds, so failures reproduce.

use cinm::core::serve::{ServeError, ServerOptions, SessionServer, TenantSpec};
use cinm::core::session::{Session, SessionOptions};
use cinm::core::{ShardPolicy, Target};
use cinm::runtime::FaultConfig;
use cinm::upmem::UpmemConfig;
use cinm::workloads::data::{self, SplitMix64};

/// Randomized cases per property (server cases are heavier than the unit
/// properties' 48: each runs a multi-tenant server plus solo oracle
/// sessions).
const CASES: u64 = 10;

fn for_cases(test_seed: u64, mut f: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(test_seed.wrapping_mul(0x9e37_79b9) + case);
        f(&mut rng);
    }
}

fn gen_usize(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    rng.gen_range_i32(lo as i32, hi as i32) as usize
}

fn grid(threads: usize) -> UpmemConfig {
    let mut cfg = UpmemConfig::with_ranks(1).with_host_threads(threads);
    cfg.dpus_per_rank = 8;
    cfg
}

fn solo_session(threads: usize) -> Session {
    Session::new(
        SessionOptions::default()
            .with_upmem_config(grid(threads))
            .with_policy(ShardPolicy::Single(Target::Cnm)),
    )
}

/// The per-tenant oracle: the same gemv run alone in a private `Session`.
fn solo_gemv(a: &[i32], x: &[i32], rows: usize, cols: usize, threads: usize) -> Vec<i32> {
    let mut sess = solo_session(threads);
    let at = sess.matrix(a, rows, cols);
    let xt = sess.vector(x);
    let y = sess.gemv(at, xt);
    sess.run().expect("solo gemv run");
    let mut out = Vec::new();
    sess.fetch_into(y, &mut out);
    out
}

/// The per-tenant oracle for gemm models.
fn solo_gemm(a: &[i32], b: &[i32], m: usize, k: usize, n: usize, threads: usize) -> Vec<i32> {
    let mut sess = solo_session(threads);
    let at = sess.matrix(a, m, k);
    let bt = sess.matrix(b, k, n);
    let y = sess.gemm(at, bt);
    sess.run().expect("solo gemm run");
    let mut out = Vec::new();
    sess.fetch_into(y, &mut out);
    out
}

#[derive(Clone)]
enum Shape {
    Gemv { rows: usize, cols: usize },
    Gemm { m: usize, k: usize, n: usize },
}

impl Shape {
    fn weights_len(&self) -> usize {
        match *self {
            Shape::Gemv { rows, cols } => rows * cols,
            Shape::Gemm { m, k, .. } => m * k,
        }
    }

    fn activation_len(&self) -> usize {
        match *self {
            Shape::Gemv { cols, .. } => cols,
            Shape::Gemm { k, n, .. } => k * n,
        }
    }
}

/// One randomized mix: 2–4 tenants drawn over 1–2 shape classes (shared
/// classes exercise cross-tenant batching; distinct ones exercise
/// multi-shape stream rounds), 2–3 requests per tenant submitted
/// interleaved, drained, and compared tenant-by-tenant against solo
/// sessions.
fn randomized_mixes_match_solo_sessions(threads: usize, fault: Option<FaultConfig>, seed: u64) {
    for_cases(seed, |rng| {
        let mut options = ServerOptions::default()
            .with_upmem_config(grid(threads))
            .with_tenant_slots(4);
        if let Some(f) = fault.clone() {
            options = options.with_fault(f);
        }
        let mut server = SessionServer::new(options);

        let classes = [
            Shape::Gemv {
                rows: gen_usize(rng, 3, 17),
                cols: gen_usize(rng, 2, 9),
            },
            Shape::Gemm {
                m: gen_usize(rng, 2, 9),
                k: gen_usize(rng, 2, 7),
                n: gen_usize(rng, 1, 5),
            },
        ];
        let n_tenants = gen_usize(rng, 2, 5);
        let mut tenant_shapes = Vec::new();
        let mut models = Vec::new();
        let mut weights = Vec::new();
        for i in 0..n_tenants {
            let t = server.register_tenant(
                TenantSpec::new(format!("tenant-{i}"))
                    .with_weight(gen_usize(rng, 1, 5) as u32)
                    .with_priority(gen_usize(rng, 0, 3) as u8),
            );
            let shape = classes[gen_usize(rng, 0, classes.len())].clone();
            let a = data::i32_vec(rng.next_u64(), shape.weights_len(), -50, 50);
            let model = match shape {
                Shape::Gemv { rows, cols } => server.load_gemv_weights(t, &a, rows, cols).unwrap(),
                Shape::Gemm { m, k, n } => server.load_gemm_weights(t, &a, m, k, n).unwrap(),
            };
            tenant_shapes.push(shape);
            models.push(model);
            weights.push(a);
        }

        // Interleaved submission: every tenant's requests go in round-robin
        // so compatible requests from different tenants are queued together
        // and the scheduler actually batches them.
        let per_tenant = gen_usize(rng, 2, 4);
        let mut activations: Vec<Vec<Vec<i32>>> = vec![Vec::new(); n_tenants];
        let mut tickets = Vec::new();
        for _ in 0..per_tenant {
            for ti in 0..n_tenants {
                let x = data::i32_vec(rng.next_u64(), tenant_shapes[ti].activation_len(), -30, 30);
                tickets.push((ti, server.submit(models[ti], &x).unwrap()));
                activations[ti].push(x);
            }
        }
        server.run_until_idle();
        assert_eq!(server.stats().failed, 0, "no request may fail");
        assert!(
            server.stats().largest_batch >= 1,
            "the scheduler must have formed batches"
        );

        let mut next_request = vec![0usize; n_tenants];
        for (ti, ticket) in tickets {
            let got = server.wait(ticket).unwrap();
            let x = &activations[ti][next_request[ti]];
            next_request[ti] += 1;
            let want = match tenant_shapes[ti] {
                Shape::Gemv { rows, cols } => solo_gemv(&weights[ti], x, rows, cols, threads),
                Shape::Gemm { m, k, n } => solo_gemm(&weights[ti], x, m, k, n, threads),
            };
            assert_eq!(got, want, "tenant {ti} diverged from its solo session");
        }
    });
}

#[test]
fn batched_results_are_bit_identical_to_solo_sessions() {
    randomized_mixes_match_solo_sessions(1, None, 20);
}

#[test]
fn batched_results_are_bit_identical_to_solo_sessions_at_8_threads() {
    randomized_mixes_match_solo_sessions(8, None, 21);
}

#[test]
fn batched_results_survive_a_seeded_fault_schedule_bit_identically() {
    // Transient launch/transfer faults throughout, plus a permanent grid
    // fault a few launches in — the server must retry, fail over to the
    // spare grid (weights stay resident), and still match every tenant's
    // solo session. Faults injected against one tenant's batch never leak
    // into another tenant's results.
    let fault = FaultConfig::seeded(0x5EED_F417)
        .with_launch_fault_rate(0.15)
        .with_transfer_timeout_rate(0.05)
        .with_permanent_after_launches(4);
    randomized_mixes_match_solo_sessions(1, Some(fault), 22);
}

/// Deterministic closed loop: one heavy tenant (weight 6) against three
/// light tenants (weight 1). Every tenant completes work, observed shares
/// track the 6:1:1:1 weights within tolerance, and over-admission is a
/// typed `QueueFull`, never a hang.
#[test]
fn fair_scheduling_serves_every_tenant_proportionally() {
    const DEPTH: usize = 4;
    const ROUNDS: u64 = 120;
    let mut server = SessionServer::new(
        ServerOptions::default()
            .with_upmem_config(grid(1))
            .with_tenant_slots(4)
            // One request per round: the fairness signal is the scheduler's
            // pick order, not batch packing.
            .with_max_batch(1)
            .with_queue_depth(DEPTH),
    );
    let weights = [6u32, 1, 1, 1];
    let (rows, cols) = (10usize, 6usize);
    let mut tenants = Vec::new();
    let mut models = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let t = server.register_tenant(TenantSpec::new(format!("t{i}")).with_weight(w));
        let a = data::i32_vec(0xA0 + i as u64, rows * cols, -20, 20);
        models.push(server.load_gemv_weights(t, &a, rows, cols).unwrap());
        tenants.push(t);
    }
    let x = data::i32_vec(0xB0, cols, -10, 10);

    let mut outstanding: Vec<(usize, cinm::core::serve::RequestTicket)> = Vec::new();
    for _ in 0..ROUNDS {
        // Closed loop: keep every tenant's queue topped up to the depth.
        for (ti, &t) in tenants.iter().enumerate() {
            loop {
                let s = server.tenant_stats(t);
                if (s.submitted - s.completed - s.failed) as usize >= DEPTH {
                    break;
                }
                outstanding.push((ti, server.submit(models[ti], &x).unwrap()));
            }
        }
        assert!(server.step() > 0, "a backlogged server round must serve");
        outstanding.retain(|&(_, ticket)| {
            if server.is_done(ticket) {
                server.wait(ticket).unwrap();
                false
            } else {
                true
            }
        });
    }

    let completed: Vec<u64> = tenants
        .iter()
        .map(|&t| server.tenant_stats(t).completed)
        .collect();
    let total: u64 = completed.iter().sum();
    assert_eq!(total, ROUNDS, "max_batch 1 serves exactly one per round");
    let weight_sum: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    for (i, (&got, &w)) in completed.iter().zip(&weights).enumerate() {
        let expected = ROUNDS * u64::from(w) / weight_sum;
        assert!(
            got >= expected.saturating_sub(expected / 4 + 2) && got <= expected + expected / 4 + 2,
            "tenant {i}: observed share {got} strays from weighted share {expected} \
             (completions {completed:?})"
        );
        assert!(got > 0, "tenant {i} starved (completions {completed:?})");
    }

    // Over-admission is typed back-pressure, not a hang: with the loop
    // stopped, topping the heavy tenant's queue past its depth rejects.
    loop {
        match server.submit(models[0], &x) {
            Ok(ticket) => outstanding.push((0, ticket)),
            Err(ServeError::QueueFull { tenant, depth }) => {
                assert_eq!(tenant, tenants[0]);
                assert_eq!(depth, DEPTH);
                break;
            }
            Err(other) => panic!("expected QueueFull, got {other:?}"),
        }
    }
    server.run_until_idle();
    for (_, ticket) in outstanding {
        server.wait(ticket).unwrap();
    }
    assert_eq!(server.queue_backlog(), 0);
    assert_eq!(server.stats().failed, 0);
}
