//! Generic conformance suite of the unified `Device` trait, run against all
//! three implementations (UPMEM grid, memristive crossbar, host roofline).
//!
//! Every device must: report coherent capabilities (the support matrix, the
//! cost hookup and `submit` must agree op-for-op), resolve empty shards for
//! free without touching statistics, execute supported shards bit-identically
//! to the `cpu_sim` goldens while accumulating simulated seconds, reject
//! unsupported shards with `ShardError::Unsupported` without side effects,
//! and fully clear its statistics on `reset_stats`.

use cinm::cpu::kernels;
use cinm::cpu::model::CpuModel;
use cinm::lowering::{
    CimBackend, CimDevice, CimRunOptions, Device, HostDevice, ShardError, ShardOp, ShardShape,
    UpmemBackend, UpmemDevice, UpmemRunOptions,
};
use cinm::upmem::{BinOp, UpmemConfig};
use cinm::workloads::data;

/// The op sample the suite probes: one representative per shardable kind,
/// with a matching [`ShardShape`].
fn probe_ops() -> Vec<(&'static str, ShardShape)> {
    vec![
        ("cinm.gemm", ShardShape::matmul(16, 8, 8)),
        ("cinm.gemv", ShardShape::matmul(16, 8, 1)),
        ("cinm.add", ShardShape::streaming(64)),
        ("cinm.reduce", ShardShape::streaming(64)),
        ("cinm.histogram", ShardShape::streaming(64)),
    ]
}

/// Runs the whole conformance suite against one device.
fn conformance(device: &mut dyn Device) {
    let caps = device.caps();
    let name = caps.name;
    assert!(!name.is_empty(), "devices must name themselves");

    // 1. Capability reporting: the support matrix, the cost hookup and the
    //    owned cost-model snapshot must agree per op.
    let cost = device.cost();
    assert_eq!(cost.device(), caps.device, "{name}: cost hookup device");
    for (op, shape) in probe_ops() {
        let supports = device.supports_op(op);
        assert_eq!(
            device.estimate_shard_seconds(op, &shape).is_some(),
            supports,
            "{name}: estimate/support disagree on {op}"
        );
        assert_eq!(
            cost.estimate_shard_seconds(op, &shape).is_some(),
            supports,
            "{name}: cost snapshot/support disagree on {op}"
        );
        if supports {
            let t = device.estimate_shard_seconds(op, &shape).unwrap();
            assert!(t > 0.0, "{name}: {op} estimate must be positive");
        }
    }

    // 2. Empty-shard submit: resolved immediately, no statistics.
    let x = data::i32_vec(7, 8, -4, 4);
    let before = device.sim_seconds();
    let future = device
        .submit(&ShardOp::Gemv {
            a: &[],
            x: &x,
            rows: 0,
            cols: 8,
        })
        .expect("empty shards always succeed");
    let (result, seconds) = future.wait().expect("empty shards never fault");
    assert!(result.is_empty(), "{name}: empty shard result");
    assert_eq!(seconds, 0.0, "{name}: empty shard cost");
    assert_eq!(before, device.sim_seconds(), "{name}: empty shard stats");

    // 3. A supported shard executes bit-identically to the golden and
    //    accumulates simulated time.
    let (rows, cols) = (16usize, 8usize);
    let a = data::i32_vec(8, rows * cols, -8, 8);
    let future = device
        .submit(&ShardOp::Gemv {
            a: &a,
            x: &x,
            rows,
            cols,
        })
        .expect("gemv is universally supported");
    let (result, seconds) = future.wait().expect("fault-free gemv shard");
    assert_eq!(
        result,
        kernels::matvec(&a, &x, rows, cols),
        "{name}: gemv shard result"
    );
    assert!(seconds > 0.0, "{name}: gemv shard must cost time");
    assert!(
        device.sim_seconds() > before,
        "{name}: statistics must accumulate"
    );

    // 4. Unsupported shards error without touching statistics.
    let v = data::i32_vec(9, 32, -4, 4);
    if !device.supports_op("cinm.add") {
        let before = device.sim_seconds();
        let err = device
            .submit(&ShardOp::Elementwise {
                op: BinOp::Add,
                a: &v,
                b: &v,
            })
            .unwrap_err();
        assert!(
            matches!(err, ShardError::Unsupported { .. }),
            "{name}: wrong error kind"
        );
        assert_eq!(before, device.sim_seconds(), "{name}: failed submit stats");
    } else {
        let (result, _) = device
            .submit(&ShardOp::Elementwise {
                op: BinOp::Add,
                a: &v,
                b: &v,
            })
            .expect("supported elementwise")
            .wait()
            .expect("fault-free elementwise shard");
        assert_eq!(result, kernels::vector_add(&v, &v), "{name}: elementwise");
    }

    // 5. reset_stats clears the accumulated simulated time.
    device.reset_stats();
    assert_eq!(device.sim_seconds(), 0.0, "{name}: reset_stats");
}

fn upmem_device() -> UpmemDevice {
    let mut cfg = UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 8;
    UpmemDevice::new(UpmemBackend::with_config(cfg, UpmemRunOptions::optimized()))
}

#[test]
fn upmem_device_conforms() {
    conformance(&mut upmem_device());
}

#[test]
fn cim_device_conforms() {
    conformance(&mut CimDevice::new(CimBackend::new(
        CimRunOptions::optimized(),
    )));
}

#[test]
fn host_device_conforms() {
    conformance(&mut HostDevice::new(CpuModel::arm_host()));
}

/// The three devices expose the expected capability matrix.
#[test]
fn capability_matrix_matches_the_paper() {
    use cinm::lowering::ShardDevice;
    let up = upmem_device();
    let cim = CimDevice::new(CimBackend::new(CimRunOptions::optimized()));
    let host = HostDevice::new(CpuModel::arm_host());
    assert_eq!(up.caps().device, ShardDevice::Cnm);
    assert_eq!(cim.caps().device, ShardDevice::Cim);
    assert_eq!(host.caps().device, ShardDevice::Host);
    // The CNM grid and the host keep intermediates resident; the crossbar
    // holds weights, not activations.
    assert!(up.caps().resident_intermediates);
    assert!(!cim.caps().resident_intermediates);
    assert!(host.caps().resident_intermediates);
    // MVM-only crossbar; the host is the catch-all.
    assert!(!cim.supports_op("cinm.histogram"));
    assert!(up.supports_op("cinm.histogram"));
    assert!(host.supports_op("cinm.simSearch"));
}
