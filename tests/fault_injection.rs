//! Fault-injection integration tests: typed errors when the retry budget is
//! exhausted, degraded re-planning around permanently failed devices,
//! host-only fallback when every accelerator dies, and bit-identical results
//! for the full workload suite under deterministic fault schedules.

use cinm::core::{runner, Session, SessionOptions, ShardPolicy, Target};
use cinm::lowering::{
    Device, ShardDevice, ShardError, ShardOp, ShardedRunOptions, UpmemBackend, UpmemDevice,
    UpmemRunOptions,
};
use cinm::memristor::CrossbarConfig;
use cinm::runtime::FaultConfig;
use cinm::upmem::UpmemConfig;
use cinm::workloads::{data, Scale, WorkloadId};

fn small_cfg() -> UpmemConfig {
    let mut cfg = UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 8;
    cfg
}

fn session_with(policy: ShardPolicy, cfg: UpmemConfig) -> Session {
    Session::new(
        SessionOptions::default()
            .with_upmem_config(cfg)
            .with_policy(policy),
    )
}

/// A transient fault storm that outlives the retry budget surfaces as a
/// typed, non-permanent `DeviceFault` through the device future — never a
/// panic — and the retries taken are accounted in the fault counters.
#[test]
fn retry_exhaustion_surfaces_a_typed_error() {
    let cfg = small_cfg().with_fault(FaultConfig::seeded(7).with_launch_fault_rate(1.0));
    let backend = UpmemBackend::with_config(cfg, UpmemRunOptions::optimized());
    let max_attempts = backend.retry_policy().max_attempts;
    let mut device = UpmemDevice::new(backend);

    let rows = 16usize;
    let cols = 8usize;
    let a = data::i32_vec(1, rows * cols, -8, 8);
    let x = data::i32_vec(2, cols, -8, 8);
    let err = device
        .submit(&ShardOp::Gemv {
            a: &a,
            x: &x,
            rows,
            cols,
        })
        .expect("submission itself succeeds")
        .wait()
        .expect_err("a 100% launch fault rate must exhaust the retry budget");
    match err {
        ShardError::DeviceFault {
            device: d,
            permanent,
            ..
        } => {
            assert_eq!(d, ShardDevice::Cnm);
            assert!(!permanent, "transient exhaustion is not a permanent fault");
        }
        other => panic!("wrong error kind: {other:?}"),
    }
    // The failed launch burned the whole budget: max_attempts - 1 retries.
    let stats = device.backend().fault_stats();
    assert_eq!(stats.transient_retries, (max_attempts - 1) as u64);
    assert!(stats.backoff_seconds > 0.0, "backoff must be accounted");
    assert_eq!(device.health().consecutive_failures, 1);
    assert!(device.is_healthy(), "one failure is below the health limit");
}

/// A permanently failed crossbar is dropped from the shard plan: the session
/// re-plans across the surviving devices and keeps producing bit-identical
/// results.
#[test]
fn permanent_cim_failure_replans_around_the_crossbar() {
    let m = 64usize;
    let k = 64usize;
    let n = 64usize;
    let a = data::i32_vec(3, m * k, -6, 6);
    let b = data::i32_vec(4, k * n, -6, 6);

    let run = |cim_fault: Option<FaultConfig>| -> (Vec<Vec<i32>>, Session) {
        let mut sharded = ShardedRunOptions::default().with_ranks(1);
        if let Some(fault) = cim_fault {
            sharded = sharded.with_cim_config(CrossbarConfig::default().with_fault(fault));
        }
        let mut sess = Session::new(
            SessionOptions::default()
                .with_upmem_config(small_cfg())
                .with_policy(ShardPolicy::Auto)
                .with_sharded(sharded),
        );
        let mut outs = Vec::new();
        for _ in 0..3 {
            let at = sess.matrix(&a, m, k);
            let bt = sess.matrix(&b, k, n);
            let ct = sess.gemm(at, bt);
            sess.run().expect("the CNM grid and the host survive");
            outs.push(sess.fetch(ct));
        }
        (outs, sess)
    };

    let (baseline, baseline_sess) = run(None);
    assert!(
        !baseline_sess.fault_stats().any(),
        "fault-free runs must not touch the fault counters"
    );
    // Every crossbar tile is stuck-at: the first programming attempt fails
    // permanently (the default crossbar has 4 tiles).
    let (faulted, sess) = run(Some(
        FaultConfig::seeded(11).with_stuck_tiles(vec![0, 1, 2, 3]),
    ));
    assert_eq!(baseline, faulted, "re-planned runs must stay bit-identical");
    let stats = sess.fault_stats();
    assert!(
        stats.permanent_faults >= 1 && stats.replans >= 1 && stats.degradations >= 1,
        "the CIM death must be counted: {stats:?}"
    );
    assert!(
        !sess.backend().device(ShardDevice::Cim).is_healthy(),
        "the dead crossbar must be marked unhealthy"
    );
    assert!(sess.backend().device(ShardDevice::Cnm).is_healthy());
}

/// A permanently failed UPMEM grid under a CNM-forced policy (including
/// non-plannable ops that only lower to the grid) is replaced by a spare
/// carrying the rescued memory image; results stay bit-identical.
#[test]
fn permanent_cnm_failure_fails_over_to_a_spare_grid() {
    let len = 160usize;
    let v = data::i32_vec(5, len, -64, 64);

    let run = |fault: Option<FaultConfig>| -> (Vec<Vec<i32>>, Session) {
        let mut cfg = small_cfg();
        if let Some(fault) = fault {
            cfg = cfg.with_fault(fault);
        }
        let mut sess = session_with(ShardPolicy::Single(Target::Cnm), cfg);
        let vt = sess.vector(&v);
        let mut outs = Vec::new();
        for run_i in 0i32..4 {
            let doubled = sess.elementwise(cinm::upmem::BinOp::Add, vt, vt);
            // `select` has no host lowering: the grid itself must keep working.
            let sel = sess.select(doubled, run_i - 2);
            sess.run().expect("the spare grid takes over");
            outs.push(sess.fetch(sel));
        }
        (outs, sess)
    };

    let (baseline, _) = run(None);
    let (faulted, sess) = run(Some(
        FaultConfig::seeded(23).with_permanent_after_launches(2),
    ));
    assert_eq!(baseline, faulted, "failover must stay bit-identical");
    let stats = sess.fault_stats();
    assert!(
        stats.permanent_faults >= 1 && stats.degradations >= 1,
        "the grid death and failover must be counted: {stats:?}"
    );
    assert!(
        sess.backend().device(ShardDevice::Cnm).is_healthy(),
        "the swapped-in spare starts healthy"
    );
}

/// When every accelerator dies permanently, plannable graphs degrade to
/// host-only execution and still produce bit-identical results.
#[test]
fn dead_accelerators_degrade_to_host_only_execution() {
    // Large enough that the auto planner shards the work across all three
    // devices — both accelerators hold live shards when they die.
    let rows = 1024usize;
    let cols = 512usize;
    let a = data::i32_vec(6, rows * cols, -7, 7);
    let x = data::i32_vec(7, cols, -7, 7);

    let run = |fault: Option<FaultConfig>| -> (Vec<Vec<i32>>, Session) {
        let mut opts = SessionOptions::default()
            .with_upmem_config(small_cfg())
            .with_policy(ShardPolicy::Auto);
        if let Some(fault) = fault {
            opts = opts.with_fault(fault);
        }
        let mut sess = Session::new(opts);
        let at = sess.matrix(&a, rows, cols);
        let xt = sess.vector(&x);
        let mut outs = Vec::new();
        for _ in 0..5 {
            let yt = sess.gemv(at, xt);
            sess.run().expect("the host always survives");
            outs.push(sess.fetch(yt));
        }
        (outs, sess)
    };

    let (baseline, _) = run(None);
    // Both simulators run the same schedule: the grid dies on its first
    // launch, every crossbar tile is stuck-at — only the host survives.
    let (faulted, sess) = run(Some(
        FaultConfig::seeded(31)
            .with_permanent_after_launches(0)
            .with_stuck_tiles(vec![0, 1, 2, 3]),
    ));
    assert_eq!(baseline, faulted, "host-only runs must stay bit-identical");
    let stats = sess.fault_stats();
    assert!(
        stats.degradations >= 1 && stats.replans >= stats.degradations,
        "the degradation chain must be counted: {stats:?}"
    );
    assert!(
        !sess.backend().device(ShardDevice::Cnm).is_healthy(),
        "the grid died for good — no spare exists for plannable graphs"
    );
}

/// Every workload of the suite completes bit-identically under (a) a
/// transient fault schedule at realistic rates and (b) a schedule that
/// permanently kills the grid mid-run — the acceptance bar of the fault
/// layer.
#[test]
fn every_workload_is_bit_identical_under_fault_schedules() {
    let schedules: Vec<(&str, FaultConfig)> = vec![
        (
            "transient",
            FaultConfig::seeded(41)
                .with_launch_fault_rate(0.10)
                .with_transfer_timeout_rate(0.05)
                .with_transfer_corruption_rate(0.05),
        ),
        (
            "permanent-cnm",
            FaultConfig::seeded(43).with_permanent_after_launches(3),
        ),
    ];
    for id in WorkloadId::all() {
        let inp = runner::inputs(id, Scale::Test);
        let mut clean = session_with(ShardPolicy::Single(Target::Cnm), small_cfg());
        let want = runner::run_session(id, Scale::Test, &inp, &mut clean);
        for (label, schedule) in &schedules {
            let cfg = small_cfg().with_fault(schedule.clone());
            let mut sess = session_with(ShardPolicy::Single(Target::Cnm), cfg);
            let got = runner::run_session(id, Scale::Test, &inp, &mut sess);
            assert_eq!(
                got,
                want,
                "workload {} under the {label} schedule",
                id.name()
            );
        }
    }
}

/// Fault schedules are deterministic: the same seed reproduces the same
/// faults, the same recovery path and the same counters.
#[test]
fn fault_schedules_are_deterministic() {
    let schedule = FaultConfig::seeded(59)
        .with_launch_fault_rate(0.15)
        .with_transfer_timeout_rate(0.08);
    let run = || {
        let cfg = small_cfg().with_fault(schedule.clone());
        let mut sess = session_with(ShardPolicy::Single(Target::Cnm), cfg);
        let inp = runner::inputs(WorkloadId::Mlp, Scale::Test);
        let out = runner::run_session(WorkloadId::Mlp, Scale::Test, &inp, &mut sess);
        (out, sess.fault_stats())
    };
    let (out_a, stats_a) = run();
    let (out_b, stats_b) = run();
    assert_eq!(out_a, out_b);
    assert_eq!(stats_a.transient_retries, stats_b.transient_retries);
    assert_eq!(stats_a.permanent_faults, stats_b.permanent_faults);
    assert_eq!(stats_a.replans, stats_b.replans);
    assert_eq!(stats_a.degradations, stats_b.degradations);
    assert!(
        stats_a.transient_retries > 0,
        "the schedule must actually fire at these rates: {stats_a:?}"
    );
}
