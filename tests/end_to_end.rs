//! End-to-end integration tests: every workload is lowered through the CINM
//! pipelines and executed on the simulated devices, and the results are
//! checked against the host reference implementations.

use cinm::core::runner;
use cinm::core::{cim_pipeline, cinm_pipeline, cnm_pipeline, compile, Target, TargetSelector};
use cinm::ir::prelude::*;
use cinm::lowering::{CimBackend, CimRunOptions, UpmemBackend, UpmemRunOptions};
use cinm::workloads::{build_func, Scale, WorkloadId};
use cinm_lowering::CimLoweringOptions;

fn small_upmem_backend(options: UpmemRunOptions) -> UpmemBackend {
    let mut cfg = cinm::upmem::UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 16;
    UpmemBackend::with_config(cfg, options)
}

#[test]
fn every_workload_runs_correctly_on_the_upmem_backend() {
    for id in WorkloadId::all() {
        let inp = runner::inputs(id, Scale::Test);
        let mut backend = small_upmem_backend(UpmemRunOptions::optimized());
        let got = runner::run_upmem(id, Scale::Test, &inp, &mut backend);
        let want = runner::reference(id, Scale::Test, &inp, backend.num_dpus());
        assert_eq!(got, want, "workload {}", id.name());
        assert!(backend.total_ms() > 0.0, "workload {}", id.name());
    }
}

#[test]
fn every_cim_workload_runs_correctly_on_the_crossbar_backend() {
    for id in WorkloadId::cim_suite() {
        let inp = runner::inputs(id, Scale::Test);
        let mut backend = CimBackend::new(CimRunOptions::optimized());
        let got = runner::run_cim(id, Scale::Test, &inp, &mut backend);
        let want = runner::reference(id, Scale::Test, &inp, 1);
        assert_eq!(got, want, "workload {}", id.name());
        assert!(backend.stats().xbar.mvm_ops > 0, "workload {}", id.name());
    }
}

#[test]
fn pipelines_lower_every_idiomatic_workload_to_device_dialects() {
    for id in WorkloadId::upmem_opt_suite() {
        let mut module = Module::new(id.name());
        module.add_func(build_func(id, Scale::Test));
        compile(&mut module, &cnm_pipeline(4, true)).expect("cnm pipeline");
        let f = &module.funcs[0];
        assert!(
            !f.body.ops_with_name("upmem.launch").is_empty(),
            "{}",
            id.name()
        );
        assert!(
            !f.body.ops_with_name("upmem.scatter").is_empty(),
            "{}",
            id.name()
        );
        assert!(f.body.ops_in_dialect("cinm").is_empty(), "{}", id.name());
    }
    for id in WorkloadId::cim_suite() {
        let mut module = Module::new(id.name());
        module.add_func(build_func(id, Scale::Test));
        compile(&mut module, &cim_pipeline(CimLoweringOptions::optimized())).expect("cim pipeline");
        let f = &module.funcs[0];
        assert!(
            !f.body.ops_with_name("memristor.configure").is_empty(),
            "{}",
            id.name()
        );
    }
}

#[test]
fn greedy_target_selection_sends_large_gemms_to_cim_and_the_rest_to_cnm() {
    let selector = TargetSelector::new();
    // Large matmul => CIM.
    let mut module = Module::new("mm");
    module.add_func(build_func(WorkloadId::Mm, Scale::Bench));
    compile(&mut module, &cinm_pipeline()).unwrap();
    let counts = selector.select_for_func(&module.funcs[0]);
    assert!(counts.get(&Target::Cim).copied().unwrap_or(0) >= 1);
    // Histogram (CNM-only op) => UPMEM.
    let mut module = Module::new("hst");
    module.add_func(build_func(WorkloadId::HstL, Scale::Test));
    compile(&mut module, &cinm_pipeline()).unwrap();
    let counts = selector.select_for_func(&module.funcs[0]);
    assert!(counts.get(&Target::Cnm).copied().unwrap_or(0) >= 1);
}

#[test]
fn optimizations_follow_the_papers_direction_on_dense_kernels() {
    // Figure 11 direction: the WRAM-locality optimisation helps the GEMM-like
    // kernels substantially.
    let inp = runner::inputs(WorkloadId::Mm, Scale::Test);
    let mut base = small_upmem_backend(UpmemRunOptions::default());
    let mut opt = small_upmem_backend(UpmemRunOptions::optimized());
    runner::run_upmem(WorkloadId::Mm, Scale::Test, &inp, &mut base);
    runner::run_upmem(WorkloadId::Mm, Scale::Test, &inp, &mut opt);
    assert!(opt.stats().kernel_seconds < base.stats().kernel_seconds);

    // Figure 10 direction: min-writes cuts crossbar writes and time.
    let inp = runner::inputs(WorkloadId::Mm, Scale::Test);
    let mut naive = CimBackend::new(CimRunOptions::default());
    let mut minw = CimBackend::new(CimRunOptions {
        min_writes: true,
        parallel_tiles: false,
        ..Default::default()
    });
    runner::run_cim(WorkloadId::Mm, Scale::Test, &inp, &mut naive);
    runner::run_cim(WorkloadId::Mm, Scale::Test, &inp, &mut minw);
    assert!(minw.stats().xbar.tile_writes <= naive.stats().xbar.tile_writes);
    assert!(minw.stats().total_seconds() <= naive.stats().total_seconds());
}

#[test]
fn lines_of_code_table_shows_conciseness_of_the_cinm_representation() {
    for id in WorkloadId::all() {
        let func = build_func(id, Scale::Paper);
        let loc = cinm::ir::func_lines_of_code(&func);
        assert!(
            loc * 2 < id.upmem_c_loc(),
            "{}: CINM {} lines vs UPMEM C {} lines",
            id.name(),
            loc,
            id.upmem_c_loc()
        );
    }
}
