//! Property-based tests of the core invariants: tiling coverage, workgroup
//! scatter/gather round-trips, affine-map semantics, crossbar MVM exactness
//! and loop-interchange result preservation.

use cinm::ir::{AffineExpr, AffineMap};
use cinm::lowering::{tile_2d, CimBackend, CimRunOptions, Tile, TileShape, UpmemBackend, UpmemRunOptions};
use cinm::memristor::{CrossbarAccelerator, CrossbarConfig};
use cinm::upmem::{BinOp, DpuKernelKind, KernelSpec, UpmemConfig, UpmemSystem};
use cpu_sim::kernels;
use proptest::prelude::*;

fn small_upmem() -> UpmemBackend {
    let mut cfg = UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 4;
    UpmemBackend::with_config(cfg, UpmemRunOptions::optimized())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every tiling shape covers every iteration point exactly once.
    #[test]
    fn tiling_partitions_the_iteration_space(
        m in 1usize..200,
        n in 1usize..200,
        tile in 1usize..96,
        rect_rows in 1usize..48,
    ) {
        for shape in [
            TileShape::Box { tile },
            TileShape::Rectangular { rows: rect_rows, cols: tile },
            TileShape::RowBand { rows: rect_rows },
        ] {
            let tiles = tile_2d(m, n, shape);
            let covered: usize = tiles.iter().map(Tile::points).sum();
            prop_assert_eq!(covered, m * n);
            for t in &tiles {
                prop_assert!(t.row + t.rows <= m && t.col + t.cols <= n);
            }
        }
    }

    /// The scatter/gather pair of the cnm abstraction is a lossless
    /// round-trip for any payload that fits the buffers.
    #[test]
    fn scatter_gather_roundtrip(data in proptest::collection::vec(any::<i32>(), 1..512)) {
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 4;
        let mut sys = UpmemSystem::new(cfg);
        let chunk = data.len().div_ceil(sys.num_dpus()).max(1);
        let buf = sys.alloc_buffer(chunk).unwrap();
        sys.scatter_i32(buf, &data, chunk).unwrap();
        let (back, _) = sys.gather_i32(buf, chunk).unwrap();
        prop_assert_eq!(&back[..data.len()], &data[..]);
        // The padding tail is always zero.
        prop_assert!(back[data.len()..].iter().all(|&v| v == 0));
    }

    /// The affine tiling map assigns every point a valid (tile, offset) pair.
    #[test]
    fn tiling_affine_map_is_consistent(i in 0i64..10_000, j in 0i64..10_000, t0 in 1i64..64, t1 in 1i64..64) {
        let map = AffineMap::tiling(&[t0, t1]);
        let r = map.eval(&[i, j]);
        prop_assert_eq!(r.len(), 4);
        prop_assert_eq!(r[0] * t0 + r[2], i);
        prop_assert_eq!(r[1] * t1 + r[3], j);
        prop_assert!(r[2] < t0 && r[3] < t1);
    }

    /// Affine permutation maps are involutive when applied twice with the
    /// inverse permutation.
    #[test]
    fn permutation_roundtrip(v in proptest::collection::vec(0i64..1000, 3)) {
        let map = AffineMap::permutation(&[2, 0, 1]);
        let inv = AffineMap::permutation(&[1, 2, 0]);
        let once = map.eval(&v);
        let back = inv.eval(&once);
        prop_assert_eq!(back, v);
        let _ = AffineExpr::dim(0); // keep the import exercised
    }

    /// The bit-sliced crossbar MVM is exact for arbitrary integer matrices.
    #[test]
    fn crossbar_mvm_is_exact(
        rows in 1usize..16,
        cols in 1usize..16,
        seed in 0u64..1000,
    ) {
        let w = cinm::workloads::data::i32_matrix(seed, rows, cols, -100, 100);
        let x = cinm::workloads::data::i32_vec(seed.wrapping_add(1), rows, -100, 100);
        let mut xbar = CrossbarAccelerator::new(CrossbarConfig::default());
        xbar.write_tile(0, &w, rows, cols).unwrap();
        let y = xbar.mvm(0, &x).unwrap();
        for c in 0..cols {
            let mut acc = 0i32;
            for r in 0..rows {
                acc = acc.wrapping_add(x[r].wrapping_mul(w[r * cols + c]));
            }
            prop_assert_eq!(y[c], acc);
        }
    }

    /// Shift-add recombination of bit-sliced weights is the identity.
    #[test]
    fn bit_slicing_roundtrip(v in any::<i32>()) {
        let xbar = CrossbarAccelerator::new(CrossbarConfig::default());
        prop_assert_eq!(xbar.shift_add_roundtrip(v), v as i64);
    }

    /// The min-writes loop interchange and tile parallelism never change the
    /// GEMM result (they are pure schedule transformations).
    #[test]
    fn cim_schedules_preserve_results(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..100) {
        let a = cinm::workloads::data::i32_matrix(seed, m, k, -5, 5);
        let b = cinm::workloads::data::i32_matrix(seed + 1, k, n, -5, 5);
        let reference = kernels::matmul(&a, &b, m, k, n);
        for opts in [
            CimRunOptions::default(),
            CimRunOptions { min_writes: true, parallel_tiles: false },
            CimRunOptions::optimized(),
        ] {
            let mut be = CimBackend::new(opts);
            prop_assert_eq!(be.gemm(&a, &b, m, k, n), reference.clone());
        }
    }

    /// The UPMEM backend's distributed GEMM agrees with the host reference
    /// for arbitrary shapes, with and without the locality optimisation.
    #[test]
    fn upmem_gemm_is_shape_generic(m in 1usize..48, k in 1usize..24, n in 1usize..24, seed in 0u64..100) {
        let a = cinm::workloads::data::i32_matrix(seed, m, k, -6, 6);
        let b = cinm::workloads::data::i32_matrix(seed + 7, k, n, -6, 6);
        let reference = kernels::matmul(&a, &b, m, k, n);
        let mut be = small_upmem();
        prop_assert_eq!(be.gemm(&a, &b, m, k, n), reference);
    }

    /// Element-wise kernels and reductions on the DPU grid match the host
    /// fold for every operator.
    #[test]
    fn upmem_reductions_match_host(data in proptest::collection::vec(-1000i32..1000, 1..400)) {
        let mut be = small_upmem();
        prop_assert_eq!(be.reduce(BinOp::Add, &data), kernels::reduce_add(&data));
        let ones = vec![1i32; data.len()];
        let plus_one = be.elementwise(BinOp::Add, &data, &ones);
        let expected: Vec<i32> = data.iter().map(|&v| v.wrapping_add(1)).collect();
        prop_assert_eq!(plus_one, expected);
    }
}

#[test]
fn kernel_spec_validation_is_deterministic() {
    // Not a property, but keeps the proptest file self-contained: a spec with
    // the wrong arity must always panic.
    let result = std::panic::catch_unwind(|| {
        KernelSpec::new(DpuKernelKind::Gemm { m: 2, k: 2, n: 2 }, vec![0], 1)
    });
    assert!(result.is_err());
}
