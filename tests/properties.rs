//! Property-based tests of the core invariants: tiling coverage, workgroup
//! scatter/gather round-trips, affine-map semantics, crossbar MVM exactness,
//! loop-interchange result preservation, and bit-identical equivalence of the
//! flat-slab DPU storage against the retained naive reference path.
//!
//! The crate registry is unreachable in this build environment, so instead of
//! `proptest` the properties are driven by a small deterministic case
//! generator built on the workloads' SplitMix64 PRNG: every test runs a fixed
//! number of randomized cases from fixed seeds, so failures are always
//! reproducible.

use cinm::ir::{AffineExpr, AffineMap};
use cinm::lowering::{
    tile_2d, CimBackend, CimRunOptions, Tile, TileShape, UpmemBackend, UpmemRunOptions,
};
use cinm::memristor::{CrossbarAccelerator, CrossbarConfig};
use cinm::runtime::CommandStream;
use cinm::telemetry::Telemetry;
use cinm::upmem::{
    BinOp, Command, CommandOutput, DpuKernelKind, DpuSystem, KernelSpec, NaiveUpmemSystem,
    UpmemConfig, UpmemSystem,
};
use cinm::workloads::data::{self, SplitMix64};
use cpu_sim::kernels;

/// Number of randomized cases per property (mirrors the seed's
/// `ProptestConfig::with_cases(48)`).
const CASES: u64 = 48;

/// Runs `f` once per case with a per-case deterministic PRNG.
fn for_cases(test_seed: u64, mut f: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(test_seed.wrapping_mul(0x9e37_79b9) + case);
        f(&mut rng);
    }
}

fn gen_usize(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    rng.gen_range_i32(lo as i32, hi as i32) as usize
}

fn small_upmem() -> UpmemBackend {
    let mut cfg = UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 4;
    UpmemBackend::with_config(cfg, UpmemRunOptions::optimized())
}

/// Every tiling shape covers every iteration point exactly once.
#[test]
fn tiling_partitions_the_iteration_space() {
    for_cases(1, |rng| {
        let m = gen_usize(rng, 1, 200);
        let n = gen_usize(rng, 1, 200);
        let tile = gen_usize(rng, 1, 96);
        let rect_rows = gen_usize(rng, 1, 48);
        for shape in [
            TileShape::Box { tile },
            TileShape::Rectangular {
                rows: rect_rows,
                cols: tile,
            },
            TileShape::RowBand { rows: rect_rows },
        ] {
            let tiles = tile_2d(m, n, shape);
            let covered: usize = tiles.iter().map(Tile::points).sum();
            assert_eq!(covered, m * n, "{shape:?} over {m}x{n}");
            for t in &tiles {
                assert!(t.row + t.rows <= m && t.col + t.cols <= n);
            }
        }
    });
}

/// The scatter/gather pair of the cnm abstraction is a lossless round-trip
/// for any payload that fits the buffers.
#[test]
fn scatter_gather_roundtrip() {
    for_cases(2, |rng| {
        let len = gen_usize(rng, 1, 512);
        let data = data::i32_vec(rng.next_u64(), len, i32::MIN / 2, i32::MAX / 2);
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 4;
        let mut sys = UpmemSystem::new(cfg);
        let chunk = data.len().div_ceil(sys.num_dpus()).max(1);
        let buf = sys.alloc_buffer(chunk).unwrap();
        sys.scatter_i32(buf, &data, chunk).unwrap();
        let (back, _) = sys.gather_i32(buf, chunk).unwrap();
        assert_eq!(&back[..data.len()], &data[..]);
        // The padding tail is always zero.
        assert!(back[data.len()..].iter().all(|&v| v == 0));
    });
}

/// The affine tiling map assigns every point a valid (tile, offset) pair.
#[test]
fn tiling_affine_map_is_consistent() {
    for_cases(3, |rng| {
        let i = rng.gen_range_i32(0, 10_000) as i64;
        let j = rng.gen_range_i32(0, 10_000) as i64;
        let t0 = rng.gen_range_i32(1, 64) as i64;
        let t1 = rng.gen_range_i32(1, 64) as i64;
        let map = AffineMap::tiling(&[t0, t1]);
        let r = map.eval(&[i, j]);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0] * t0 + r[2], i);
        assert_eq!(r[1] * t1 + r[3], j);
        assert!(r[2] < t0 && r[3] < t1);
    });
}

/// Affine permutation maps are involutive when applied twice with the
/// inverse permutation.
#[test]
fn permutation_roundtrip() {
    for_cases(4, |rng| {
        let v: Vec<i64> = (0..3).map(|_| rng.gen_range_i32(0, 1000) as i64).collect();
        let map = AffineMap::permutation(&[2, 0, 1]);
        let inv = AffineMap::permutation(&[1, 2, 0]);
        let once = map.eval(&v);
        let back = inv.eval(&once);
        assert_eq!(back, v);
        let _ = AffineExpr::dim(0); // keep the import exercised
    });
}

/// The bit-sliced crossbar MVM is exact for arbitrary integer matrices.
#[test]
fn crossbar_mvm_is_exact() {
    for_cases(5, |rng| {
        let rows = gen_usize(rng, 1, 16);
        let cols = gen_usize(rng, 1, 16);
        let seed = rng.next_u64();
        let w = data::i32_matrix(seed, rows, cols, -100, 100);
        let x = data::i32_vec(seed.wrapping_add(1), rows, -100, 100);
        let mut xbar = CrossbarAccelerator::new(CrossbarConfig::default());
        xbar.write_tile(0, &w, rows, cols).unwrap();
        let y = xbar.mvm(0, &x).unwrap();
        for c in 0..cols {
            let mut acc = 0i32;
            for r in 0..rows {
                acc = acc.wrapping_add(x[r].wrapping_mul(w[r * cols + c]));
            }
            assert_eq!(y[c], acc);
        }
    });
}

/// Shift-add recombination of bit-sliced weights is the identity.
#[test]
fn bit_slicing_roundtrip() {
    let xbar = CrossbarAccelerator::new(CrossbarConfig::default());
    for v in [0, 1, -1, 42, -12345, i32::MAX, i32::MIN, 0x7ead_beef] {
        assert_eq!(xbar.shift_add_roundtrip(v), v as i64, "value {v}");
    }
    for_cases(6, |rng| {
        let v = rng.next_u64() as i32;
        assert_eq!(xbar.shift_add_roundtrip(v), v as i64, "value {v}");
    });
}

/// The min-writes loop interchange and tile parallelism never change the
/// GEMM result (they are pure schedule transformations).
#[test]
fn cim_schedules_preserve_results() {
    for_cases(7, |rng| {
        let m = gen_usize(rng, 1, 40);
        let k = gen_usize(rng, 1, 40);
        let n = gen_usize(rng, 1, 40);
        let seed = rng.next_u64();
        let a = data::i32_matrix(seed, m, k, -5, 5);
        let b = data::i32_matrix(seed + 1, k, n, -5, 5);
        let reference = kernels::matmul(&a, &b, m, k, n);
        for opts in [
            CimRunOptions::default(),
            CimRunOptions {
                min_writes: true,
                parallel_tiles: false,
                ..Default::default()
            },
            CimRunOptions::optimized(),
            CimRunOptions::optimized().with_host_threads(3),
        ] {
            let mut be = CimBackend::new(opts);
            assert_eq!(be.gemm(&a, &b, m, k, n), reference);
        }
    });
}

/// The UPMEM backend's distributed GEMM agrees with the host reference for
/// arbitrary shapes, with and without the locality optimisation.
#[test]
fn upmem_gemm_is_shape_generic() {
    for_cases(8, |rng| {
        let m = gen_usize(rng, 1, 48);
        let k = gen_usize(rng, 1, 24);
        let n = gen_usize(rng, 1, 24);
        let seed = rng.next_u64();
        let a = data::i32_matrix(seed, m, k, -6, 6);
        let b = data::i32_matrix(seed + 7, k, n, -6, 6);
        let reference = kernels::matmul(&a, &b, m, k, n);
        let mut be = small_upmem();
        assert_eq!(be.gemm(&a, &b, m, k, n), reference);
    });
}

/// Element-wise kernels and reductions on the DPU grid match the host fold
/// for every operator.
#[test]
fn upmem_reductions_match_host() {
    for_cases(9, |rng| {
        let len = gen_usize(rng, 1, 400);
        let data = data::i32_vec(rng.next_u64(), len, -1000, 1000);
        let mut be = small_upmem();
        assert_eq!(be.reduce(BinOp::Add, &data), kernels::reduce_add(&data));
        let ones = vec![1i32; data.len()];
        let plus_one = be.elementwise(BinOp::Add, &data, &ones);
        let expected: Vec<i32> = data.iter().map(|&v| v.wrapping_add(1)).collect();
        assert_eq!(plus_one, expected);
    });
}

// ---------------------------------------------------------------------------
// Flat-slab vs naive reference equivalence
// ---------------------------------------------------------------------------

/// Picks a random kernel kind with small random shapes, returning the kind
/// plus the required per-DPU input and output buffer lengths.
fn random_kernel(rng: &mut SplitMix64) -> (DpuKernelKind, Vec<usize>, usize) {
    let kind = match gen_usize(rng, 0, 9) {
        0 => DpuKernelKind::Gemm {
            m: gen_usize(rng, 1, 9),
            k: gen_usize(rng, 1, 9),
            n: gen_usize(rng, 1, 9),
        },
        1 => DpuKernelKind::Gemv {
            rows: gen_usize(rng, 1, 17),
            cols: gen_usize(rng, 1, 17),
        },
        2 => DpuKernelKind::Elementwise {
            op: [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Max][gen_usize(rng, 0, 4)],
            len: gen_usize(rng, 1, 65),
        },
        3 => DpuKernelKind::Reduce {
            op: [BinOp::Add, BinOp::Min, BinOp::Max, BinOp::Xor][gen_usize(rng, 0, 4)],
            len: gen_usize(rng, 1, 65),
        },
        4 => DpuKernelKind::Histogram {
            bins: gen_usize(rng, 1, 17),
            len: gen_usize(rng, 1, 65),
            max_value: rng.gen_range_i32(1, 128),
        },
        5 => DpuKernelKind::Scan {
            op: [BinOp::Add, BinOp::Or, BinOp::And][gen_usize(rng, 0, 3)],
            len: gen_usize(rng, 1, 65),
        },
        6 => DpuKernelKind::Select {
            len: gen_usize(rng, 1, 65),
            threshold: rng.gen_range_i32(-32, 32),
        },
        7 => {
            let window = gen_usize(rng, 1, 9);
            DpuKernelKind::TimeSeries {
                len: window + gen_usize(rng, 0, 32),
                window,
            }
        }
        _ => DpuKernelKind::BfsStep {
            vertices: gen_usize(rng, 1, 17),
            avg_degree: gen_usize(rng, 1, 5),
        },
    };
    let inputs: Vec<usize> = (0..kind.num_inputs()).map(|i| kind.input_len(i)).collect();
    let out_len = kind.output_len();
    (kind, inputs, out_len)
}

/// Runs one randomized scatter/broadcast → launch* → gather flow on any
/// [`DpuSystem`], returning every observable output: gathered buffers, raw
/// per-DPU buffer contents and the accumulated statistics.
fn drive_random_flow(
    sys: &mut dyn DpuSystem,
    kind: &DpuKernelKind,
    input_lens: &[usize],
    out_len: usize,
    data_seed: u64,
    launches: usize,
) -> (Vec<Vec<i32>>, cinm::upmem::SystemStats) {
    let mut buffers = Vec::new();
    for (i, &len) in input_lens.iter().enumerate() {
        let buf = sys.alloc_buffer(len).unwrap();
        let payload = data::i32_vec(data_seed + i as u64, len * sys.num_dpus(), -40, 40);
        if i % 2 == 0 {
            sys.scatter_i32(buf, &payload, len).unwrap();
        } else {
            sys.broadcast_i32(buf, &payload[..len]).unwrap();
        }
        buffers.push(buf);
    }
    let out = sys.alloc_buffer(out_len).unwrap();
    let spec = KernelSpec::new(kind.clone(), buffers.clone(), out);
    for _ in 0..launches {
        sys.launch(&spec).unwrap();
    }
    let mut observed = Vec::new();
    for &buf in buffers.iter().chain(std::iter::once(&out)) {
        let (gathered, _) = sys.gather_i32(buf, sys.buffer_len(buf).unwrap()).unwrap();
        observed.push(gathered);
    }
    (observed, *sys.stats())
}

/// The flat-slab layout produces bit-identical buffers *and* statistics to
/// the retained naive reference path, across randomized shapes, DPU counts,
/// kernel kinds and host-thread counts.
#[test]
fn slab_layout_is_bit_identical_to_the_naive_reference() {
    for_cases(10, |rng| {
        let (kind, input_lens, out_len) = random_kernel(rng);
        let dpus = gen_usize(rng, 1, 13);
        let data_seed = rng.next_u64();
        let launches = gen_usize(rng, 1, 4);
        let threads = [1usize, 2, 3, 5][gen_usize(rng, 0, 4)];

        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = dpus;
        let mut naive = NaiveUpmemSystem::new(cfg.clone());
        let mut slab = UpmemSystem::new(cfg.clone().with_host_threads(threads));

        let (naive_out, naive_stats) =
            drive_random_flow(&mut naive, &kind, &input_lens, out_len, data_seed, launches);
        let (slab_out, slab_stats) =
            drive_random_flow(&mut slab, &kind, &input_lens, out_len, data_seed, launches);

        assert_eq!(
            naive_out,
            slab_out,
            "kind {} dpus {dpus} threads {threads}",
            kind.name()
        );
        assert_eq!(
            naive_stats,
            slab_stats,
            "kind {} stats diverged",
            kind.name()
        );
        // Per-DPU views agree too (exercises the stride indexing directly).
        for d in [0, dpus / 2, dpus - 1] {
            assert_eq!(
                naive.dpu_buffer(d, 0).unwrap(),
                slab.dpu_buffer(d, 0).unwrap()
            );
        }
    });
}

/// Every kernel kind is exercised against the naive reference at a fixed
/// grid size (deterministic complement to the randomized equivalence test).
#[test]
fn every_kernel_kind_matches_the_naive_reference() {
    let kinds: Vec<DpuKernelKind> = vec![
        DpuKernelKind::Gemm { m: 4, k: 6, n: 5 },
        DpuKernelKind::Gemv { rows: 9, cols: 7 },
        DpuKernelKind::Elementwise {
            op: BinOp::Mul,
            len: 33,
        },
        DpuKernelKind::Reduce {
            op: BinOp::Add,
            len: 29,
        },
        DpuKernelKind::Histogram {
            bins: 8,
            len: 50,
            max_value: 64,
        },
        DpuKernelKind::Scan {
            op: BinOp::Add,
            len: 21,
        },
        DpuKernelKind::Select {
            len: 40,
            threshold: 3,
        },
        DpuKernelKind::TimeSeries { len: 24, window: 5 },
        DpuKernelKind::BfsStep {
            vertices: 11,
            avg_degree: 2,
        },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let mut rng = SplitMix64::seed_from_u64(4242 + i as u64);
        let input_lens: Vec<usize> = (0..kind.num_inputs()).map(|i| kind.input_len(i)).collect();
        let out_len = kind.output_len();
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 8;
        let mut naive = NaiveUpmemSystem::new(cfg.clone());
        let mut slab = UpmemSystem::new(cfg.with_host_threads(3));
        let seed = rng.next_u64();
        let (naive_out, naive_stats) =
            drive_random_flow(&mut naive, &kind, &input_lens, out_len, seed, 2);
        let (slab_out, slab_stats) =
            drive_random_flow(&mut slab, &kind, &input_lens, out_len, seed, 2);
        assert_eq!(naive_out, slab_out, "kind {}", kind.name());
        assert_eq!(naive_stats, slab_stats, "kind {}", kind.name());
    }
}

/// The UPMEM backend produces identical results and simulated statistics for
/// any host-thread count (the knob only changes simulator wall-clock time).
#[test]
fn backend_results_are_invariant_under_host_threads() {
    for_cases(11, |rng| {
        let m = gen_usize(rng, 1, 32);
        let k = gen_usize(rng, 1, 16);
        let n = gen_usize(rng, 1, 16);
        let seed = rng.next_u64();
        let a = data::i32_matrix(seed, m, k, -6, 6);
        let b = data::i32_matrix(seed + 1, k, n, -6, 6);
        let run = |threads: usize| {
            let mut cfg = UpmemConfig::with_ranks(1);
            cfg.dpus_per_rank = 4;
            let mut be = UpmemBackend::with_config(
                cfg,
                UpmemRunOptions::optimized().with_host_threads(threads),
            );
            let c = be.gemm(&a, &b, m, k, n);
            (c, *be.stats())
        };
        let (ref_c, ref_stats) = run(1);
        for threads in [2usize, 4, 0] {
            let (c, stats) = run(threads);
            assert_eq!(c, ref_c, "threads = {threads}");
            assert_eq!(stats, ref_stats, "threads = {threads}");
        }
    });
}

/// Attaching a telemetry registry is observationally transparent: with and
/// without one, runs produce bit-identical buffers and bit-identical
/// simulated statistics (including the modeled joules) on both the DPU grid
/// and the crossbar, across randomized kernels, shapes and launch counts.
#[test]
fn telemetry_is_observationally_transparent() {
    for_cases(12, |rng| {
        let (kind, input_lens, out_len) = random_kernel(rng);
        let dpus = gen_usize(rng, 1, 9);
        let data_seed = rng.next_u64();
        let launches = gen_usize(rng, 1, 3);

        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = dpus;
        let mut plain = UpmemSystem::new(cfg.clone());
        let mut metered = UpmemSystem::new(cfg.with_telemetry(Telemetry::new()));

        let (plain_out, plain_stats) =
            drive_random_flow(&mut plain, &kind, &input_lens, out_len, data_seed, launches);
        let (metered_out, metered_stats) = drive_random_flow(
            &mut metered,
            &kind,
            &input_lens,
            out_len,
            data_seed,
            launches,
        );
        assert_eq!(plain_out, metered_out, "kind {}", kind.name());
        assert_eq!(
            plain_stats,
            metered_stats,
            "kind {} stats diverged",
            kind.name()
        );

        // The CIM side of the same property: tile writes and MVMs.
        let rows = gen_usize(rng, 1, 12);
        let cols = gen_usize(rng, 1, 12);
        let w = data::i32_matrix(data_seed.wrapping_add(7), rows, cols, -50, 50);
        let x = data::i32_vec(data_seed.wrapping_add(8), rows, -50, 50);
        let mut xbar_plain = CrossbarAccelerator::new(CrossbarConfig::default());
        let mut xbar_metered =
            CrossbarAccelerator::new(CrossbarConfig::default().with_telemetry(Telemetry::new()));
        for xbar in [&mut xbar_plain, &mut xbar_metered] {
            xbar.write_tile(0, &w, rows, cols).unwrap();
        }
        assert_eq!(
            xbar_plain.mvm(0, &x).unwrap(),
            xbar_metered.mvm(0, &x).unwrap()
        );
        assert_eq!(xbar_plain.stats(), xbar_metered.stats());
    });
}

// ---------------------------------------------------------------------------
// Command-stream hazards vs the eager oracle
// ---------------------------------------------------------------------------

/// Randomized command program over a small buffer pool: interleaved
/// scatter/broadcast/launch/gather commands, including launches whose output
/// aliases an input, so every hazard class (RAW, WAR, WAW) occurs.
///
/// Returns the per-buffer lengths and the program.
fn random_program(rng: &mut SplitMix64) -> (Vec<usize>, Vec<Command<'static>>) {
    let (kind, input_lens, out_len) = random_kernel(rng);
    // Buffer pool: the kernel inputs, its output, and one spare of the same
    // length as the output (gives scatters/gathers unrelated targets).
    let mut buffer_lens = input_lens.clone();
    buffer_lens.push(out_len);
    buffer_lens.push(out_len);
    let out_buf = input_lens.len() as u32;

    // An aliased variant writes into one of its own inputs when the shapes
    // allow it (input long enough to hold the output).
    let alias_candidate = input_lens
        .iter()
        .position(|&len| len >= out_len)
        .map(|i| i as u32);

    let inputs: Vec<u32> = (0..input_lens.len() as u32).collect();
    let n_cmds = 4 + gen_usize(rng, 0, 8);
    let mut program = Vec::new();
    for _ in 0..n_cmds {
        let buf = gen_usize(rng, 0, buffer_lens.len()) as u32;
        let len = buffer_lens[buf as usize];
        match gen_usize(rng, 0, 6) {
            0 => program.push(Command::Scatter {
                buffer: buf,
                // Deliberately sometimes shorter / longer than the grid needs,
                // exercising zero padding.
                data: data::i32_vec(rng.next_u64(), gen_usize(rng, 0, 4 * len + 2), -40, 40).into(),
                chunk: gen_usize(rng, 0, len + 1),
            }),
            1 => program.push(Command::Broadcast {
                buffer: buf,
                data: data::i32_vec(rng.next_u64(), gen_usize(rng, 0, len + 1), -40, 40).into(),
            }),
            2 => program.push(Command::Gather {
                buffer: buf,
                chunk: gen_usize(rng, 0, len + 1),
            }),
            3 if alias_candidate.is_some() && gen_usize(rng, 0, 2) == 0 => {
                // Aliased launch: output is one of the inputs (RAW + WAW on
                // the same buffer inside one command).
                program.push(Command::Launch {
                    spec: KernelSpec::new(kind.clone(), inputs.clone(), alias_candidate.unwrap()),
                });
            }
            _ => program.push(Command::Launch {
                spec: KernelSpec::new(kind.clone(), inputs.clone(), out_buf),
            }),
        }
    }
    // Always end with a gather of every buffer so the final state is fully
    // observable through command outputs alone.
    for (b, &len) in buffer_lens.iter().enumerate() {
        program.push(Command::Gather {
            buffer: b as u32,
            chunk: len,
        });
    }
    (buffer_lens, program)
}

/// Applies a command program eagerly, one call at a time, to the given
/// system — the oracle semantics of `UpmemSystem::sync`.
fn run_eager_program(sys: &mut dyn DpuSystem, program: &[Command<'_>]) -> Vec<CommandOutput> {
    program
        .iter()
        .map(|cmd| match cmd {
            Command::Scatter {
                buffer,
                data,
                chunk,
            } => CommandOutput::Transfer(sys.scatter_i32(*buffer, data, *chunk).unwrap()),
            Command::Broadcast { buffer, data } => {
                CommandOutput::Transfer(sys.broadcast_i32(*buffer, data).unwrap())
            }
            Command::Launch { spec } => CommandOutput::Launch(sys.launch(spec).unwrap()),
            Command::Gather { buffer, chunk } => {
                let (data, t) = sys.gather_i32(*buffer, *chunk).unwrap();
                CommandOutput::Gather(data, t)
            }
        })
        .collect()
}

/// `UpmemSystem::sync` produces bit-identical buffers, outputs *and*
/// statistics to the eager `NaiveUpmemSystem` oracle, across randomized
/// interleaved programs with aliasing buffers and thread counts {1, 2, 8}.
#[test]
fn command_stream_is_bit_identical_to_the_eager_naive_oracle() {
    for_cases(12, |rng| {
        let (buffer_lens, program) = random_program(rng);
        let dpus = gen_usize(rng, 1, 9);
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = dpus;

        let mut naive = NaiveUpmemSystem::new(cfg.clone());
        for &len in &buffer_lens {
            naive.alloc_buffer(len).unwrap();
        }
        let oracle = run_eager_program(&mut naive, &program);

        for threads in [1usize, 2, 8] {
            let mut sys = UpmemSystem::new(cfg.clone().with_host_threads(threads));
            for &len in &buffer_lens {
                sys.alloc_buffer(len).unwrap();
            }
            let mut stream = CommandStream::new();
            for cmd in &program {
                stream.enqueue(cmd.clone());
            }
            let outputs = sys.sync(&mut stream).unwrap();
            assert_eq!(outputs, oracle, "threads {threads}, dpus {dpus}");
            assert_eq!(
                sys.stats(),
                naive.stats(),
                "stats diverged at threads {threads}"
            );
            // Raw per-DPU views agree too.
            for b in 0..buffer_lens.len() as u32 {
                for d in [0, dpus - 1] {
                    assert_eq!(
                        naive.dpu_buffer(d, b).unwrap(),
                        sys.dpu_buffer(d, b).unwrap(),
                        "buffer {b} dpu {d} threads {threads}"
                    );
                }
            }
        }
    });
}

/// Splitting a program across several `sync` calls at arbitrary points is
/// equivalent to one big batch (the stream is a pure recording; hazards are
/// per-batch but the inter-batch order is program order anyway).
#[test]
fn command_stream_batch_boundaries_do_not_matter() {
    for_cases(13, |rng| {
        let (buffer_lens, program) = random_program(rng);
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 4;

        let run_split = |split_points: &[usize]| {
            let mut sys = UpmemSystem::new(cfg.clone().with_host_threads(8));
            for &len in &buffer_lens {
                sys.alloc_buffer(len).unwrap();
            }
            let mut outputs = Vec::new();
            let mut stream = CommandStream::new();
            for (i, cmd) in program.iter().enumerate() {
                stream.enqueue(cmd.clone());
                if split_points.contains(&i) {
                    outputs.extend(sys.sync(&mut stream).unwrap());
                }
            }
            outputs.extend(sys.sync(&mut stream).unwrap());
            (outputs, *sys.stats())
        };

        let (one_batch, one_stats) = run_split(&[]);
        let split = gen_usize(rng, 0, program.len());
        let (two_batches, two_stats) = run_split(&[split]);
        assert_eq!(one_batch, two_batches, "split at {split}");
        assert_eq!(one_stats, two_stats, "split at {split}");
    });
}

#[test]
fn kernel_spec_validation_is_deterministic() {
    // Not a property, but keeps the file self-contained: a spec with the
    // wrong arity must always panic.
    let result = std::panic::catch_unwind(|| {
        KernelSpec::new(DpuKernelKind::Gemm { m: 2, k: 2, n: 2 }, vec![0], 1)
    });
    assert!(result.is_err());
}

// ---------------------------------------------------------------------------
// Heterogeneous sharded execution (ShardedBackend vs the host goldens)
// ---------------------------------------------------------------------------

/// A sharded backend on a small grid sharing one pool with its devices.
fn small_sharded(pool: &cinm::runtime::PoolHandle) -> cinm::lowering::ShardedBackend {
    let mut cfg = UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 4;
    cinm::lowering::ShardedBackend::with_upmem_config(
        cfg,
        cinm::lowering::ShardedRunOptions::default()
            .with_ranks(1)
            .with_pool(pool.clone()),
    )
}

/// A random three-way split of `total` work units (any device may get zero).
fn gen_split(rng: &mut SplitMix64, total: usize) -> cinm::lowering::ShardSplit {
    let a = gen_usize(rng, 0, total + 1).min(total);
    let b = gen_usize(rng, 0, total + 1).min(total);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    cinm::lowering::ShardSplit {
        cnm: lo,
        cim: hi - lo,
        host: total - hi,
    }
}

/// A random two-way (CNM/host) split for ops the crossbar cannot execute.
fn gen_split_no_cim(rng: &mut SplitMix64, total: usize) -> cinm::lowering::ShardSplit {
    let cnm = gen_usize(rng, 0, total + 1).min(total);
    cinm::lowering::ShardSplit {
        cnm,
        cim: 0,
        host: total - cnm,
    }
}

/// Sharded GEMM/GEMV are bit-identical to the golden host kernels for any
/// shape and any three-way split, including empty shards.
#[test]
fn sharded_matmul_matches_golden_over_randomized_shapes_and_fractions() {
    let pool = cinm::runtime::PoolHandle::with_threads(3);
    for_cases(21, |rng| {
        let m = gen_usize(rng, 1, 48);
        let k = gen_usize(rng, 1, 24);
        let n = gen_usize(rng, 1, 20);
        let a = data::i32_vec(rng.next_u64(), m * k, -9, 9);
        let b = data::i32_vec(rng.next_u64(), k * n, -9, 9);
        let split = gen_split(rng, m);
        let mut be = small_sharded(&pool);
        let c = be.gemm(&a, &b, m, k, n, &split).unwrap();
        assert_eq!(
            c,
            kernels::matmul(&a, &b, m, k, n),
            "gemm {m}x{k}x{n} {split:?}"
        );

        let x = data::i32_vec(rng.next_u64(), k, -9, 9);
        let vsplit = gen_split(rng, m);
        let y = be.gemv(&a, &x, m, k, &vsplit).unwrap();
        assert_eq!(y, kernels::matvec(&a, &x, m, k), "gemv {m}x{k} {vsplit:?}");

        // Work fractions in the stats always cover the dispatched work.
        let f = be.stats().fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{f:?}");
    });
}

/// Sharded element-wise/reduce/histogram ops are bit-identical to the
/// goldens for any length and any CNM/host split.
#[test]
fn sharded_streaming_ops_match_golden_over_randomized_splits() {
    let pool = cinm::runtime::PoolHandle::with_threads(3);
    for_cases(22, |rng| {
        let len = gen_usize(rng, 1, 700);
        let a = data::i32_vec(rng.next_u64(), len, -100, 400);
        let b = data::i32_vec(rng.next_u64(), len, -100, 400);
        let mut be = small_sharded(&pool);

        let split = gen_split_no_cim(rng, len);
        for op in [BinOp::Add, BinOp::Max] {
            let got = be.elementwise(op, &a, &b, &split).unwrap();
            let want = kernels::elementwise(&a, &b, |x, y| op.apply(x, y));
            assert_eq!(got, want, "elementwise {op:?} len {len} {split:?}");
        }
        assert_eq!(
            be.reduce(BinOp::Add, &a, &split).unwrap(),
            kernels::reduce_add(&a),
            "reduce len {len} {split:?}"
        );
        let bins = gen_usize(rng, 1, 32);
        assert_eq!(
            be.histogram(&a, bins, 400, &split).unwrap(),
            kernels::histogram(&a, bins, 400),
            "histogram len {len} bins {bins} {split:?}"
        );
    });
}

/// Planner-produced auto splits execute correctly end-to-end and the
/// stats report the planned fractions.
#[test]
fn planned_auto_shards_execute_bit_identically() {
    use cinm::core::shard::{ShardPlanner, ShardShape};
    let pool = cinm::runtime::PoolHandle::with_threads(3);
    let planner = ShardPlanner::with_default_models(1);
    for_cases(23, |rng| {
        let m = gen_usize(rng, 1, 96);
        let k = gen_usize(rng, 1, 32);
        let n = gen_usize(rng, 1, 24);
        let a = data::i32_vec(rng.next_u64(), m * k, -9, 9);
        let b = data::i32_vec(rng.next_u64(), k * n, -9, 9);
        let plan = planner
            .plan(cinm::dialects::cinm::GEMM, ShardShape::matmul(m, k, n))
            .unwrap();
        assert_eq!(plan.split.total(), m, "{plan:?}");
        let mut be = small_sharded(&pool);
        let c = be.gemm(&a, &b, m, k, n, &plan.split).unwrap();
        assert_eq!(c, kernels::matmul(&a, &b, m, k, n), "{plan:?}");
        let f = be.stats().fractions();
        for (got, planned) in f.iter().zip(plan.fractions.iter()) {
            assert!(
                (got - planned).abs() < 1e-9,
                "{f:?} vs {:?}",
                plan.fractions
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Execution contexts & shard-plan cache (reuse vs fresh per-op state)
// ---------------------------------------------------------------------------

/// One warm [`UpmemBackend`] reused over a randomized stream of ops with
/// deliberately repeated shapes is bit-identical — results *and* per-op
/// simulated statistics — to a fresh backend per op (the eager baseline the
/// execution contexts replaced).
#[test]
fn upmem_context_reuse_matches_fresh_backends_over_shape_repeats() {
    for_cases(31, |rng| {
        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = 4;
        let mut reused = UpmemBackend::with_config(cfg.clone(), UpmemRunOptions::optimized());
        // Small pools of shapes, drawn with repeats so contexts get reused.
        let mm_shapes: Vec<(usize, usize, usize)> = (0..2)
            .map(|_| {
                (
                    gen_usize(rng, 1, 24),
                    gen_usize(rng, 1, 12),
                    gen_usize(rng, 1, 12),
                )
            })
            .collect();
        let lens: Vec<usize> = (0..2).map(|_| gen_usize(rng, 1, 200)).collect();
        for step in 0..8 {
            // Per-op stats must be identical to a fresh backend's, so reset
            // the accumulated stats (contexts survive a reset, exactly like
            // programmed state in the simulators).
            reused.reset_stats();
            let mut fresh = UpmemBackend::with_config(cfg.clone(), UpmemRunOptions::optimized());
            match gen_usize(rng, 0, 4) {
                0 => {
                    let (m, k, n) = mm_shapes[gen_usize(rng, 0, mm_shapes.len())];
                    let a = data::i32_vec(rng.next_u64(), m * k, -6, 6);
                    let b = data::i32_vec(rng.next_u64(), k * n, -6, 6);
                    let got = reused.gemm(&a, &b, m, k, n);
                    assert_eq!(got, fresh.gemm(&a, &b, m, k, n), "step {step}");
                    assert_eq!(got, kernels::matmul(&a, &b, m, k, n), "step {step}");
                }
                1 => {
                    let (m, k, _) = mm_shapes[gen_usize(rng, 0, mm_shapes.len())];
                    let a = data::i32_vec(rng.next_u64(), m * k, -6, 6);
                    let x = data::i32_vec(rng.next_u64(), k, -6, 6);
                    let got = reused.gemv(&a, &x, m, k);
                    assert_eq!(got, fresh.gemv(&a, &x, m, k), "step {step}");
                    assert_eq!(got, kernels::matvec(&a, &x, m, k), "step {step}");
                }
                2 => {
                    let len = lens[gen_usize(rng, 0, lens.len())];
                    let a = data::i32_vec(rng.next_u64(), len, -50, 50);
                    let b = data::i32_vec(rng.next_u64(), len, -50, 50);
                    let got = reused.elementwise(BinOp::Mul, &a, &b);
                    assert_eq!(got, fresh.elementwise(BinOp::Mul, &a, &b), "step {step}");
                }
                _ => {
                    let len = lens[gen_usize(rng, 0, lens.len())];
                    let a = data::i32_vec(rng.next_u64(), len, -50, 50);
                    let got = reused.reduce(BinOp::Add, &a);
                    assert_eq!(got, fresh.reduce(BinOp::Add, &a), "step {step}");
                    assert_eq!(got, kernels::reduce_add(&a), "step {step}");
                }
            }
            assert_eq!(reused.stats(), fresh.stats(), "step {step} stats diverged");
        }
    });
}

/// One warm [`CimBackend`] (cached tile plans, staging arena) reused over
/// repeated stationary shapes is bit-identical to fresh per-op backends in
/// every schedule configuration.
#[test]
fn cim_context_reuse_matches_fresh_backends_over_shape_repeats() {
    for_cases(32, |rng| {
        let opts = [
            CimRunOptions::default(),
            CimRunOptions {
                min_writes: true,
                parallel_tiles: false,
                ..Default::default()
            },
            CimRunOptions::optimized(),
        ][gen_usize(rng, 0, 3)]
        .clone();
        let mut reused = CimBackend::new(opts.clone());
        let shapes: Vec<(usize, usize, usize)> = (0..2)
            .map(|_| {
                (
                    gen_usize(rng, 1, 32),
                    gen_usize(rng, 1, 32),
                    gen_usize(rng, 1, 32),
                )
            })
            .collect();
        for step in 0..5 {
            let (m, k, n) = shapes[gen_usize(rng, 0, shapes.len())];
            let a = data::i32_vec(rng.next_u64(), m * k, -5, 5);
            let b = data::i32_vec(rng.next_u64(), k * n, -5, 5);
            reused.reset_stats();
            let mut fresh = CimBackend::new(opts.clone());
            let got = reused.gemm(&a, &b, m, k, n);
            assert_eq!(got, fresh.gemm(&a, &b, m, k, n), "step {step}");
            assert_eq!(got, kernels::matmul(&a, &b, m, k, n), "step {step}");
            assert_eq!(reused.stats(), fresh.stats(), "step {step} stats diverged");
        }
    });
}

/// The memoizing shard planner returns plans bit-identical to the uncached
/// planner over randomized shape streams with repeats, and actually hits.
#[test]
fn cached_shard_plans_are_identical_to_fresh_plans() {
    use cinm::core::shard::{CachedShardPlanner, ShardPlanner, ShardShape};
    let planner = ShardPlanner::with_default_models(2);
    let mut cached = CachedShardPlanner::with_default_models(2);
    let ops = [
        cinm::dialects::cinm::GEMM,
        cinm::dialects::cinm::GEMV,
        cinm::dialects::cinm::REDUCE,
    ];
    for_cases(33, |rng| {
        let op = ops[gen_usize(rng, 0, ops.len())];
        // Coarse shape grid so repeats occur across cases.
        let shape = ShardShape::matmul(
            gen_usize(rng, 1, 5) * 64,
            gen_usize(rng, 1, 3) * 32,
            gen_usize(rng, 1, 3) * 16,
        );
        let fresh = planner.plan(op, shape).unwrap();
        let memo = cached.plan(op, shape).unwrap();
        assert_eq!(memo, &fresh, "{op} {shape:?}");
    });
    let (hits, misses) = cached.cache_stats();
    assert_eq!(hits + misses, CASES);
    assert!(hits > 0, "no repeats hit the cache ({hits}/{misses})");
}

/// One warm [`ShardedBackend`] reused over a randomized stream of sharded
/// ops (warm UPMEM/CIM contexts underneath) stays bit-identical to the host
/// goldens.
#[test]
fn sharded_backend_reuse_matches_goldens_over_repeated_ops() {
    let pool = cinm::runtime::PoolHandle::with_threads(3);
    let mut be = small_sharded(&pool);
    for_cases(34, |rng| {
        let m = gen_usize(rng, 1, 8) * 6;
        let k = gen_usize(rng, 1, 3) * 8;
        let n = gen_usize(rng, 1, 2) * 8;
        let a = data::i32_vec(rng.next_u64(), m * k, -9, 9);
        let b = data::i32_vec(rng.next_u64(), k * n, -9, 9);
        let split = gen_split(rng, m);
        assert_eq!(
            be.gemm(&a, &b, m, k, n, &split).unwrap(),
            kernels::matmul(&a, &b, m, k, n),
            "gemm {m}x{k}x{n} {split:?}"
        );
        let len = gen_usize(rng, 1, 4) * 100;
        let v = data::i32_vec(rng.next_u64(), len, -100, 300);
        let esplit = gen_split_no_cim(rng, len);
        assert_eq!(
            be.reduce(BinOp::Add, &v, &esplit).unwrap(),
            kernels::reduce_add(&v),
            "reduce len {len} {esplit:?}"
        );
    });
    // The whole stream ran on one backend: fractions still normalise.
    let f = be.stats().fractions();
    assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{f:?}");
}

/// User-forced fractions that do not sum to 1 error out of the whole path
/// (planner and split construction), never renormalising silently.
#[test]
fn forced_fractions_error_end_to_end() {
    use cinm::core::shard::{ShardPlanner, ShardPolicy, ShardShape};
    for_cases(24, |rng| {
        let total = gen_usize(rng, 1, 1000);
        let f0 = gen_usize(rng, 0, 100) as f64 / 100.0;
        let f1 = gen_usize(rng, 0, 100) as f64 / 100.0;
        let f2 = gen_usize(rng, 0, 100) as f64 / 100.0;
        let sum = f0 + f1 + f2;
        let split = cinm::lowering::ShardSplit::from_fractions(total, [f0, f1, f2]);
        let planner =
            ShardPlanner::with_default_models(1).with_policy(ShardPolicy::Fractions([f0, f1, f2]));
        let plan = planner.plan(cinm::dialects::cinm::GEMM, ShardShape::matmul(total, 8, 8));
        if (sum - 1.0).abs() > 1e-6 {
            assert!(split.is_err(), "sum {sum} must be rejected");
            assert!(plan.is_err(), "sum {sum} must be rejected by the planner");
        } else {
            assert_eq!(split.unwrap().total(), total);
            assert_eq!(plan.unwrap().split.total(), total);
        }
    });
}

// ---------------------------------------------------------------------------
// Session graph execution vs the eager per-op oracle
// ---------------------------------------------------------------------------

fn session_options(residency: bool) -> cinm::core::SessionOptions {
    let mut cfg = UpmemConfig::with_ranks(1);
    cfg.dpus_per_rank = 4;
    cinm::core::SessionOptions::default()
        .with_upmem_config(cfg)
        .with_policy(cinm::core::ShardPolicy::Single(cinm::core::Target::Cnm))
        .with_residency(residency)
}

/// Randomized multi-op graphs through the `Session` are bit-identical to the
/// eager per-op backend — results always; accumulated simulated statistics
/// too when residency is off (the equivalence-oracle mode). With residency
/// on, chains move at most as many simulated bytes as the eager program.
#[test]
fn session_graphs_are_bit_identical_to_the_eager_oracle() {
    use cinm::core::TensorHandle;
    for_cases(40, |rng| {
        let len = gen_usize(rng, 8, 300);
        let cols = gen_usize(rng, 4, 48);
        let a_mat = data::i32_vec(rng.next_u64(), len * cols, -8, 8);
        let x_vec = data::i32_vec(rng.next_u64(), cols, -8, 8);
        let v0 = data::i32_vec(rng.next_u64(), len, -64, 64);
        let v1 = data::i32_vec(rng.next_u64(), len, -64, 64);
        // One decision tape so both residency modes replay the same graph.
        let n_ops = gen_usize(rng, 1, 7);
        let tape: Vec<(usize, usize, usize, usize)> = (0..n_ops)
            .map(|_| {
                (
                    gen_usize(rng, 0, 5),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 9),
                )
            })
            .collect();
        let bin_ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Max,
            BinOp::Min,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
        ];
        for residency in [false, true] {
            // The optimizer is off: this is the launch-for-launch
            // equivalence oracle against the eager per-op backend (fusion
            // would legitimately change launch counts and kernel time).
            let mut sess =
                cinm::core::Session::new(session_options(residency).with_optimizer(false));
            let mut eager = small_upmem();
            let at = sess.matrix(&a_mat, len, cols);
            let xt = sess.vector(&x_vec);
            let t0 = sess.vector(&v0);
            let t1 = sess.vector(&v1);
            let mut pool: Vec<TensorHandle> = vec![t0, t1];
            let mut host_pool: Vec<Vec<i32>> = vec![v0.clone(), v1.clone()];
            let mut fetches: Vec<(TensorHandle, Vec<i32>)> = Vec::new();
            for &(kind, pick_a, pick_b, op_pick) in &tape {
                match kind {
                    0 => {
                        let h = sess.gemv(at, xt);
                        let val = eager.gemv(&a_mat, &x_vec, len, cols);
                        pool.push(h);
                        host_pool.push(val.clone());
                        fetches.push((h, val));
                    }
                    1 | 2 => {
                        let (i, j) = (pick_a % pool.len(), pick_b % pool.len());
                        let op = bin_ops[op_pick % bin_ops.len()];
                        let h = sess.elementwise(op, pool[i], pool[j]);
                        let val = eager.elementwise(op, &host_pool[i], &host_pool[j]);
                        pool.push(h);
                        host_pool.push(val.clone());
                        fetches.push((h, val));
                    }
                    3 => {
                        let i = pick_a % pool.len();
                        let op = bin_ops[op_pick % bin_ops.len()];
                        let h = sess.reduce(op, pool[i]);
                        let val = vec![eager.reduce(op, &host_pool[i])];
                        fetches.push((h, val));
                    }
                    4 => {
                        let i = pick_a % pool.len();
                        let bins = 2 + op_pick % 15;
                        let h = sess.histogram(pool[i], bins, 128);
                        let val = eager.histogram(&host_pool[i], bins, 128);
                        fetches.push((h, val));
                    }
                    _ => {
                        let i = pick_a % pool.len();
                        let thr = (pick_b % 21) as i32 - 10;
                        let h = sess.select(pool[i], thr);
                        let val = eager.select(&host_pool[i], thr);
                        fetches.push((h, val));
                    }
                }
            }
            sess.run().expect("cnm placement");
            for (h, want) in &fetches {
                assert_eq!(
                    sess.fetch(*h),
                    *want,
                    "residency={residency} len={len} cols={cols}"
                );
            }
            if residency {
                let s = sess.upmem_stats();
                let e = eager.stats();
                assert_eq!(s.kernel_seconds, e.kernel_seconds, "len={len}");
                assert_eq!(s.launches, e.launches, "len={len}");
                assert!(
                    s.host_to_dpu_bytes + s.dpu_to_host_bytes
                        <= e.host_to_dpu_bytes + e.dpu_to_host_bytes,
                    "resident graphs must not move more bytes"
                );
            } else {
                assert_eq!(
                    sess.upmem_stats(),
                    eager.stats(),
                    "residency-off statistics must fold identically (len={len} cols={cols})"
                );
            }
        }
    });
}

/// A replayed session run (the memoized, stream-free fast path of a warmed
/// loop) is bit-identical to a fresh session compiling the same graph —
/// results and accumulated statistics.
#[test]
fn session_replay_is_bit_identical_to_fresh_compilation() {
    use cinm::core::Session;
    for_cases(41, |rng| {
        let (rows, cols) = (gen_usize(rng, 8, 120), gen_usize(rng, 4, 40));
        let a = data::i32_vec(rng.next_u64(), rows * cols, -8, 8);
        let xs: Vec<Vec<i32>> = (0..6)
            .map(|_| data::i32_vec(rng.next_u64(), cols, -8, 8))
            .collect();
        let thr = (gen_usize(rng, 0, 12) as i32) - 6;
        let run_loop = |iters: usize| -> (Vec<Vec<i32>>, cinm::upmem::SystemStats) {
            let mut sess = Session::new(session_options(true));
            let at = sess.matrix(&a, rows, cols);
            let xt = sess.vector(&xs[0]);
            let mut outs = Vec::new();
            for x in xs.iter().take(iters) {
                sess.write(xt, x);
                let y = sess.gemv(at, xt);
                let s = sess.select(y, thr);
                sess.run().expect("cnm placement");
                outs.push(sess.fetch(s));
            }
            (outs, *sess.upmem_stats())
        };
        let (full, full_stats) = run_loop(6); // iterations 4+ replay
        let (fresh, _) = run_loop(6); // identical loop, fresh session
        assert_eq!(full, fresh);
        // And against a per-iteration eager oracle.
        let mut eager = small_upmem();
        let mut eager_bytes_stats = None;
        for (i, x) in xs.iter().enumerate() {
            let y = eager.gemv(&a, x, rows, cols);
            assert_eq!(full[i], eager.select(&y, thr), "iteration {i}");
            eager_bytes_stats = Some(*eager.stats());
        }
        let e = eager_bytes_stats.unwrap();
        assert_eq!(full_stats.kernel_seconds, e.kernel_seconds);
        assert!(
            full_stats.host_to_dpu_bytes + full_stats.dpu_to_host_bytes
                < e.host_to_dpu_bytes + e.dpu_to_host_bytes,
            "the warmed loop must move strictly fewer bytes"
        );
    });
}

// ---------------------------------------------------------------------------
// Fault tolerance: recovered session runs vs the fault-free oracle
// ---------------------------------------------------------------------------

/// Randomized fault schedules (transient launch/transfer faults ≤ 10%,
/// sometimes a permanent device death) over randomized multi-op session
/// graphs: as long as at least one device survives — the host always does —
/// every recovered run is bit-identical to the same graph fault-free, for
/// both the CNM-only and the auto-sharded placement policy.
#[test]
fn faulted_session_graphs_match_the_fault_free_oracle() {
    use cinm::core::{Session, ShardPolicy, Target, TensorHandle};
    use cinm::runtime::FaultConfig;
    for_cases(50, |rng| {
        let len = gen_usize(rng, 8, 200);
        let cols = gen_usize(rng, 4, 32);
        let a_mat = data::i32_vec(rng.next_u64(), len * cols, -8, 8);
        let x_vec = data::i32_vec(rng.next_u64(), cols, -8, 8);
        let v0 = data::i32_vec(rng.next_u64(), len, -64, 64);
        let v1 = data::i32_vec(rng.next_u64(), len, -64, 64);
        let n_ops = gen_usize(rng, 1, 6);
        let tape: Vec<(usize, usize, usize, usize)> = (0..n_ops)
            .map(|_| {
                (
                    gen_usize(rng, 0, 5),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 9),
                )
            })
            .collect();
        let policy = [ShardPolicy::Single(Target::Cnm), ShardPolicy::Auto][gen_usize(rng, 0, 2)];
        // A random schedule: transients at realistic rates, and in a third
        // of the cases a permanent device death after a few launches.
        let mut fault = FaultConfig::seeded(rng.next_u64())
            .with_launch_fault_rate(gen_usize(rng, 0, 11) as f64 / 100.0)
            .with_transfer_timeout_rate(gen_usize(rng, 0, 6) as f64 / 100.0)
            .with_transfer_corruption_rate(gen_usize(rng, 0, 6) as f64 / 100.0);
        if gen_usize(rng, 0, 3) == 0 {
            fault = fault.with_permanent_after_launches(gen_usize(rng, 1, 12) as u64);
        }

        let run_graph = |fault: Option<FaultConfig>| -> Vec<Vec<i32>> {
            let mut opts = session_options(true).with_policy(policy);
            if let Some(f) = fault {
                opts = opts.with_fault(f);
            }
            let mut sess = Session::new(opts);
            let at = sess.matrix(&a_mat, len, cols);
            let xt = sess.vector(&x_vec);
            let t0 = sess.vector(&v0);
            let t1 = sess.vector(&v1);
            let mut pool: Vec<TensorHandle> = vec![t0, t1];
            let mut fetches: Vec<TensorHandle> = Vec::new();
            let bin_ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Max, BinOp::Min];
            for &(kind, pick_a, pick_b, op_pick) in &tape {
                match kind {
                    0 => {
                        let h = sess.gemv(at, xt);
                        pool.push(h);
                        fetches.push(h);
                    }
                    1 | 2 => {
                        let (i, j) = (pick_a % pool.len(), pick_b % pool.len());
                        let h =
                            sess.elementwise(bin_ops[op_pick % bin_ops.len()], pool[i], pool[j]);
                        pool.push(h);
                        fetches.push(h);
                    }
                    3 => {
                        let i = pick_a % pool.len();
                        fetches.push(sess.reduce(bin_ops[op_pick % bin_ops.len()], pool[i]));
                    }
                    4 => {
                        let i = pick_a % pool.len();
                        fetches.push(sess.histogram(pool[i], 2 + op_pick % 15, 128));
                    }
                    _ => {
                        let i = pick_a % pool.len();
                        fetches.push(sess.select(pool[i], (pick_b % 21) as i32 - 10));
                    }
                }
            }
            sess.run()
                .expect("a graph with a surviving device must recover");
            fetches.iter().map(|&h| sess.fetch(h)).collect()
        };

        let baseline = run_graph(None);
        let faulted = run_graph(Some(fault.clone()));
        assert_eq!(
            baseline, faulted,
            "recovered run diverged: policy {policy:?}, schedule {fault:?}"
        );
    });
}

// ---------------------------------------------------------------------------
// Graph optimizer: optimized runs vs the unoptimized oracle
// ---------------------------------------------------------------------------

/// The graph optimizer (CSE, DCE, element-wise fusion) never changes
/// results: randomized multi-op graphs — element-wise chains, duplicated
/// ops, some intermediates discarded — run bit-identically with the
/// optimizer on and off, across host thread counts {1, 8}, over repeated
/// runs (so optimized plans replay), and under transient fault schedules.
#[test]
fn optimized_session_graphs_match_the_unoptimized_oracle() {
    use cinm::core::{Session, TensorHandle};
    use cinm::runtime::FaultConfig;
    for_cases(60, |rng| {
        let len = gen_usize(rng, 8, 200);
        let cols = gen_usize(rng, 4, 32);
        let a_mat = data::i32_vec(rng.next_u64(), len * cols, -8, 8);
        let x_vec = data::i32_vec(rng.next_u64(), cols, -8, 8);
        let v0 = data::i32_vec(rng.next_u64(), len, -64, 64);
        let v1 = data::i32_vec(rng.next_u64(), len, -64, 64);
        let n_ops = gen_usize(rng, 2, 9);
        // (kind, pick_a, pick_b, op_pick); element-wise ops dominate so
        // chains long enough to fuse appear regularly. pick_b % 4 == 0
        // discards an element-wise intermediate.
        let tape: Vec<(usize, usize, usize, usize)> = (0..n_ops)
            .map(|_| {
                (
                    gen_usize(rng, 0, 7),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 9),
                )
            })
            .collect();
        let threads = [1usize, 8][gen_usize(rng, 0, 2)];
        let fault = (gen_usize(rng, 0, 2) == 1).then(|| {
            FaultConfig::seeded(rng.next_u64())
                .with_launch_fault_rate(gen_usize(rng, 0, 9) as f64 / 100.0)
                .with_transfer_timeout_rate(gen_usize(rng, 0, 5) as f64 / 100.0)
        });
        let bin_ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Max,
            BinOp::Min,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
        ];

        // Two identical rounds per session: round two replays the
        // (optimized) compiled plan.
        let run_graph = |optimizer: bool| -> Vec<Vec<Vec<i32>>> {
            let mut cfg = UpmemConfig::with_ranks(1);
            cfg.dpus_per_rank = 4;
            let mut opts = cinm::core::SessionOptions::default()
                .with_upmem_config(cfg.with_host_threads(threads))
                .with_policy(cinm::core::ShardPolicy::Single(cinm::core::Target::Cnm))
                .with_residency(true)
                .with_optimizer(optimizer);
            if let Some(f) = &fault {
                opts = opts.with_fault(f.clone());
            }
            let mut sess = Session::new(opts);
            let at = sess.matrix(&a_mat, len, cols);
            let xt = sess.vector(&x_vec);
            let t0 = sess.vector(&v0);
            let t1 = sess.vector(&v1);
            let mut rounds = Vec::new();
            for round in 0..2 {
                let mut pool: Vec<TensorHandle> = vec![t0, t1];
                let mut fetches: Vec<TensorHandle> = Vec::new();
                for &(kind, pick_a, pick_b, op_pick) in &tape {
                    match kind {
                        0 => {
                            let h = sess.gemv(at, xt);
                            pool.push(h);
                            fetches.push(h);
                        }
                        1..=4 => {
                            let (i, j) = (pick_a % pool.len(), pick_b % pool.len());
                            let h = sess.elementwise(
                                bin_ops[op_pick % bin_ops.len()],
                                pool[i],
                                pool[j],
                            );
                            pool.push(h);
                            if pick_b % 4 == 0 {
                                sess.discard(h);
                            } else {
                                fetches.push(h);
                            }
                        }
                        5 => {
                            let i = pick_a % pool.len();
                            fetches.push(sess.reduce(bin_ops[op_pick % bin_ops.len()], pool[i]));
                        }
                        _ => {
                            let i = pick_a % pool.len();
                            fetches.push(sess.select(pool[i], (pick_b % 21) as i32 - 10));
                        }
                    }
                }
                sess.run().expect("cnm graph must run");
                rounds.push(fetches.iter().map(|&h| sess.fetch(h)).collect());
                let _ = round;
            }
            rounds
        };

        let unoptimized = run_graph(false);
        let optimized = run_graph(true);
        assert_eq!(
            unoptimized, optimized,
            "optimizer changed results: len={len} cols={cols} threads={threads} fault={fault:?}"
        );
    });
}

// ---------------------------------------------------------------------------
// Bounded MRAM: capped sessions and serving mixes vs the unlimited oracle
// ---------------------------------------------------------------------------

/// Randomized session graphs under randomized per-DPU MRAM limits — with and
/// without a seeded fault schedule — either refuse with the typed
/// `MramExhausted` error (the limit is below the graph's minimal working
/// set) or run bit-identically to the unlimited oracle, rematerializing and
/// spilling as needed. The allocator's high-water mark never exceeds the
/// limit.
#[test]
fn capped_session_graphs_are_typed_errors_or_bit_identical() {
    use cinm::core::{ResidencyStats, Session, TensorHandle};
    use cinm::lowering::ShardError;
    use cinm::runtime::FaultConfig;
    let mut evicted_cases = 0u32;
    let mut refused_cases = 0u32;
    for_cases(70, |rng| {
        let len = gen_usize(rng, 8, 200);
        let cols = gen_usize(rng, 4, 32);
        let a_mat = data::i32_vec(rng.next_u64(), len * cols, -8, 8);
        let x_vec = data::i32_vec(rng.next_u64(), cols, -8, 8);
        let v0 = data::i32_vec(rng.next_u64(), len, -64, 64);
        let v1 = data::i32_vec(rng.next_u64(), len, -64, 64);
        let n_ops = gen_usize(rng, 1, 6);
        let tape: Vec<(usize, usize, usize, usize)> = (0..n_ops)
            .map(|_| {
                (
                    gen_usize(rng, 0, 5),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 1000),
                    gen_usize(rng, 0, 9),
                )
            })
            .collect();
        let fault = (gen_usize(rng, 0, 3) == 0).then(|| {
            FaultConfig::seeded(rng.next_u64())
                .with_launch_fault_rate(gen_usize(rng, 0, 9) as f64 / 100.0)
                .with_transfer_timeout_rate(gen_usize(rng, 0, 5) as f64 / 100.0)
        });
        let bin_ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Max, BinOp::Min];

        let run_graph =
            |limit: Option<usize>| -> Result<(Vec<Vec<i32>>, ResidencyStats), ShardError> {
                let mut opts = session_options(true);
                if let Some(bytes) = limit {
                    opts = opts.with_mram_limit_bytes(bytes);
                }
                if let Some(f) = &fault {
                    opts = opts.with_fault(f.clone());
                }
                let mut sess = Session::new(opts);
                let at = sess.matrix(&a_mat, len, cols);
                let xt = sess.vector(&x_vec);
                let t0 = sess.vector(&v0);
                let t1 = sess.vector(&v1);
                let mut fetches: Vec<TensorHandle> = Vec::new();
                // Two rounds of the tape with a run between them: eviction
                // happens across runs (a running graph's live slots are
                // protected), so round two pressures round one's residents
                // and the final fetches exercise spill/remat readback.
                for _round in 0..2 {
                    let mut pool: Vec<TensorHandle> = vec![t0, t1];
                    for &(kind, pick_a, pick_b, op_pick) in &tape {
                        let h = match kind {
                            0 => {
                                let h = sess.gemv(at, xt);
                                pool.push(h);
                                h
                            }
                            1 | 2 => {
                                let (i, j) = (pick_a % pool.len(), pick_b % pool.len());
                                let h = sess.elementwise(
                                    bin_ops[op_pick % bin_ops.len()],
                                    pool[i],
                                    pool[j],
                                );
                                pool.push(h);
                                h
                            }
                            3 => {
                                let i = pick_a % pool.len();
                                sess.reduce(bin_ops[op_pick % bin_ops.len()], pool[i])
                            }
                            4 => {
                                let i = pick_a % pool.len();
                                sess.histogram(pool[i], 2 + op_pick % 15, 128)
                            }
                            _ => {
                                let i = pick_a % pool.len();
                                sess.select(pool[i], (pick_b % 21) as i32 - 10)
                            }
                        };
                        // Pinned values survive across the two runs (a pin
                        // is a lifetime promise, not a residency one — they
                        // stay evictable under pressure).
                        sess.pin(h);
                        fetches.push(h);
                    }
                    sess.run()?;
                }
                let outs = fetches.iter().map(|&h| sess.fetch(h)).collect();
                Ok((outs, sess.residency_stats()))
            };

        let (baseline, _) = run_graph(None).expect("the unlimited oracle must run");
        let limit = 4 * gen_usize(rng, 8, 600);
        match run_graph(Some(limit)) {
            Ok((outs, res)) => {
                assert_eq!(
                    outs, baseline,
                    "capped run diverged: limit={limit} len={len} cols={cols} fault={fault:?}"
                );
                assert!(
                    res.peak_mram_bytes <= limit,
                    "allocator exceeded the {limit}-byte limit: {res:?}"
                );
                if res.evictions > 0 {
                    evicted_cases += 1;
                }
            }
            Err(ShardError::MramExhausted {
                needed_bytes,
                available_bytes,
            }) => {
                assert!(needed_bytes > available_bytes);
                refused_cases += 1;
            }
            Err(other) => panic!("capacity refusal must be typed, got {other}"),
        }
    });
    // The limit range straddles the workloads' working sets, so both
    // regimes occur (deterministic seeds — this is not flaky).
    assert!(evicted_cases > 0, "no case exercised eviction");
    assert!(refused_cases > 0, "no case exercised the typed refusal");
}

/// A multi-tenant serving mix whose shape classes do not fit the MRAM
/// budget together stays bit-identical to the host oracle: admission and
/// scheduling evict cold classes' reloadable weights and transparently
/// re-admit them, with the ledger and allocator never exceeding the limit.
#[test]
fn capped_serving_mixes_stay_bit_identical_under_eviction_pressure() {
    use cinm::core::{ServerOptions, SessionServer, TenantSpec};
    for_cases(71, |rng| {
        let dpus = 8usize;
        let tenant_slots = 4usize;
        let slot_dpus = dpus / tenant_slots;
        // Distinct gemv shapes form distinct shape classes.
        let n_classes = gen_usize(rng, 2, 5);
        let shapes: Vec<(usize, usize)> = (0..n_classes)
            .map(|i| (gen_usize(rng, 1, 9) + 8 * i, gen_usize(rng, 1, 9)))
            .collect();
        let class_bytes: Vec<usize> = shapes
            .iter()
            .map(|&(rows, cols)| {
                let rpd = rows.div_ceil(slot_dpus);
                4 * (rpd * cols + cols + rpd)
            })
            .collect();
        let max_bytes = *class_bytes.iter().max().unwrap();
        let sum_bytes: usize = class_bytes.iter().sum();
        // Every class fits alone, never all at once: eviction pressure is
        // guaranteed while the true working set always fits.
        let limit = max_bytes + gen_usize(rng, 0, sum_bytes - max_bytes);

        let mut cfg = UpmemConfig::with_ranks(1);
        cfg.dpus_per_rank = dpus;
        cfg.host_threads = 1;
        let mut server = SessionServer::new(
            ServerOptions::default()
                .with_upmem_config(cfg)
                .with_tenant_slots(tenant_slots)
                .with_mram_limit_bytes(limit),
        );
        let mut models = Vec::new();
        let mut weights = Vec::new();
        for (i, &(rows, cols)) in shapes.iter().enumerate() {
            let t = server.register_tenant(TenantSpec::new(format!("tenant-{i}")));
            let a = data::i32_vec(rng.next_u64(), rows * cols, -9, 9);
            models.push(server.load_gemv_weights(t, &a, rows, cols).unwrap());
            weights.push(a);
        }
        for round in 0..2 {
            for (i, &(rows, cols)) in shapes.iter().enumerate() {
                let x = data::i32_vec(rng.next_u64(), cols, -9, 9);
                let ticket = server.submit(models[i], &x).unwrap();
                let y = server.wait(ticket).unwrap();
                assert_eq!(
                    y,
                    kernels::matvec(&weights[i], &x, rows, cols),
                    "round {round} class {i} ({rows}x{cols}) limit {limit}"
                );
            }
        }
        let snap = server.residency_snapshot();
        assert!(snap.evictions > 0, "limit {limit} < sum {sum_bytes}");
        assert!(snap.reloads > 0, "evicted classes were reused");
        assert!(server.mram_used_bytes() <= limit);
        assert!(snap.peak_mram_bytes <= limit, "{snap:?}");
        assert_eq!(snap.limit_bytes, limit);
    });
}

/// A limit below the minimal working set is a typed, recoverable error —
/// deterministic complement to the randomized property above.
#[test]
fn limits_below_the_working_set_refuse_with_typed_errors() {
    use cinm::core::Session;
    use cinm::lowering::ShardError;
    let mut sess = Session::new(session_options(true).with_mram_limit_bytes(64));
    let a = data::i32_vec(7, 64 * 32, -8, 8);
    let x = data::i32_vec(8, 32, -8, 8);
    let at = sess.matrix(&a, 64, 32);
    let xt = sess.vector(&x);
    let _y = sess.gemv(at, xt);
    match sess.run() {
        Err(ShardError::MramExhausted {
            needed_bytes,
            available_bytes,
        }) => assert!(needed_bytes > available_bytes),
        other => panic!("expected MramExhausted, got {other:?}"),
    }
}
