//! Allocation-regression tests of the simulation hot path.
//!
//! This binary installs `cinm_runtime::alloc_count::CountingAllocator` as
//! its global allocator and asserts that the steady-state launch+MVM loop —
//! warmed-up kernel launches on the flat-slab `UpmemSystem` (including the
//! aliased slow path on its scratch arena), scatter/gather transfers with a
//! reused gather vector, and scratch-writing crossbar MVMs — performs
//! **zero** heap allocations. Reintroducing a per-op `Vec` (a cloned stride,
//! a fresh result buffer, a per-launch `available_parallelism` probe)
//! makes these tests fail; the canary test proves the harness would see it.
//!
//! Counters are per-thread, so the default multi-threaded test harness
//! cannot perturb a measurement window; every measured loop runs with
//! `host_threads = 1` so no work escapes to pool workers.

use cinm_core::session::{Session, SessionOptions};
use cinm_core::{ShardPolicy, Target};
use cinm_runtime::alloc_count::{self, CountingAllocator};
use memristor_sim::{CrossbarAccelerator, CrossbarConfig};
use upmem_sim::{BinOp, DpuKernelKind, KernelSpec, UpmemConfig, UpmemSystem};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The harness actually intercepts allocations: a deliberately reintroduced
/// `Vec` allocation is counted. If this test fails, the zero-allocation
/// assertions below are vacuous — never delete it.
#[test]
fn canary_counting_allocator_detects_reintroduced_vecs() {
    assert!(alloc_count::installed(), "counting allocator not installed");
    let ((), allocs) = alloc_count::count_in(|| {
        let v: Vec<i32> = Vec::with_capacity(64);
        std::hint::black_box(&v);
    });
    assert!(
        allocs >= 1,
        "a Vec allocation must be counted, saw {allocs}"
    );
    // Growing an existing vector (realloc) is counted too.
    let mut v = vec![0u8; 16];
    let ((), allocs) = alloc_count::count_in(|| {
        v.reserve(1 << 16);
        std::hint::black_box(&v);
    });
    assert!(allocs >= 1, "a realloc must be counted, saw {allocs}");
}

fn sequential_system() -> UpmemSystem {
    let mut cfg = UpmemConfig::with_ranks(1).with_host_threads(1);
    cfg.dpus_per_rank = 8;
    UpmemSystem::new(cfg)
}

/// Steady-state kernel launches allocate nothing: the slab layout borrows
/// input strides and splits the output in place.
#[test]
fn steady_state_launch_loop_is_allocation_free() {
    let mut sys = sequential_system();
    let a = sys.alloc_buffer(64).unwrap();
    let b = sys.alloc_buffer(64).unwrap();
    let c = sys.alloc_buffer(64).unwrap();
    let data: Vec<i32> = (0..64 * 8).map(|i| i * 31 % 97 - 40).collect();
    sys.scatter_i32(a, &data, 64).unwrap();
    sys.broadcast_i32(b, &data[..64]).unwrap();
    let gemm = KernelSpec::new(DpuKernelKind::Gemm { m: 8, k: 8, n: 8 }, vec![a, b], c);
    let reduce = KernelSpec::new(
        DpuKernelKind::Reduce {
            op: BinOp::Add,
            len: 64,
        },
        vec![a],
        c,
    );
    // Warm-up: first launches may lazily resolve the per-process core count.
    sys.launch(&gemm).unwrap();
    sys.launch(&reduce).unwrap();
    let ((), allocs) = alloc_count::count_in(|| {
        for _ in 0..100 {
            sys.launch(&gemm).unwrap();
            sys.launch(&reduce).unwrap();
        }
    });
    assert_eq!(allocs, 0, "steady-state launches must not allocate");
}

/// The aliased-launch slow path stages its inputs in the reusable scratch
/// arena: after the arena has grown once, repeated aliased launches are
/// allocation-free too.
#[test]
fn steady_state_aliased_launch_is_allocation_free() {
    let mut sys = sequential_system();
    let a = sys.alloc_buffer(32).unwrap();
    sys.broadcast_i32(a, &(0..32).collect::<Vec<i32>>())
        .unwrap();
    let scan = KernelSpec::new(
        DpuKernelKind::Scan {
            op: BinOp::Add,
            len: 32,
        },
        vec![a],
        a,
    );
    sys.launch(&scan).unwrap(); // grows the scratch arena
    let ((), allocs) = alloc_count::count_in(|| {
        for _ in 0..50 {
            sys.launch(&scan).unwrap();
        }
    });
    assert_eq!(allocs, 0, "aliased launches must reuse the scratch arena");
}

/// Transfers with reused host buffers allocate nothing: scatter/broadcast
/// write into the slabs, and `gather_i32_into` reuses the caller's vector.
#[test]
fn steady_state_transfer_loop_is_allocation_free() {
    let mut sys = sequential_system();
    let a = sys.alloc_buffer(256).unwrap();
    let data: Vec<i32> = (0..256 * 8).collect();
    let mut gathered = Vec::new();
    sys.scatter_i32(a, &data, 256).unwrap();
    sys.gather_i32_into(a, 256, &mut gathered).unwrap(); // sizes the vector
    let ((), allocs) = alloc_count::count_in(|| {
        for _ in 0..50 {
            sys.scatter_i32(a, &data, 256).unwrap();
            sys.broadcast_i32(a, &data[..256]).unwrap();
            sys.gather_i32_into(a, 256, &mut gathered).unwrap();
        }
    });
    assert_eq!(allocs, 0, "steady-state transfers must not allocate");
    assert_eq!(gathered.len(), 256 * 8);
}

/// The warmed `Session` serving loop — write the request vector, record the
/// `gemv → select` graph, `run()` (replaying the memoized compiled plan
/// through the simulator's eager entry points), `fetch_into` the result —
/// performs **zero** heap allocations per iteration. This is the steady
/// state of the session's replay fast path: the matrix stays resident in
/// MRAM, temporaries recycle through the slot free-list, and the gather
/// scratch and host vectors are reused.
#[test]
fn steady_state_session_loop_is_allocation_free() {
    let mut cfg = UpmemConfig::with_ranks(1).with_host_threads(1);
    cfg.dpus_per_rank = 8;
    let mut sess = Session::new(
        SessionOptions::default()
            .with_upmem_config(cfg)
            .with_policy(ShardPolicy::Single(Target::Cnm)),
    );
    let (rows, cols) = (64usize, 32usize);
    let a: Vec<i32> = (0..rows * cols).map(|i| (i % 13) as i32 - 6).collect();
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|s| (0..cols).map(|i| ((i + s) % 7) as i32 - 3).collect())
        .collect();
    let at = sess.matrix(&a, rows, cols);
    let xt = sess.vector(&xs[0]);
    let mut out = Vec::new();
    let iteration = |sess: &mut Session, x: &[i32], out: &mut Vec<i32>| {
        sess.write(xt, x);
        let y = sess.gemv(at, xt);
        let s = sess.select(y, 0);
        sess.run().expect("cnm placement");
        sess.fetch_into(s, out);
    };
    // Warm-up: compile once cold, once more with the matrix observed
    // resident — canonical signatures make the rotating temporary ids
    // irrelevant, so iterations 3+ replay the memoized plan.
    for i in 0..4 {
        iteration(&mut sess, &xs[i % 4], &mut out);
    }
    let (_, replays_before) = sess.run_counts();
    let ((), allocs) = alloc_count::count_in(|| {
        for i in 0..40 {
            iteration(&mut sess, &xs[i % 4], &mut out);
        }
    });
    assert_eq!(allocs, 0, "the warmed session loop must not allocate");
    let (_, replays_after) = sess.run_counts();
    assert_eq!(
        replays_after - replays_before,
        40,
        "every measured iteration must replay the compiled plan"
    );
    assert!(!out.is_empty(), "the chain produced selections");
}

/// The warmed *fused-chain* serving loop — three element-wise ops that the
/// graph optimizer fuses into one `FusedElementwise` launch — is
/// allocation-free per iteration too: canonicalization reuses the session's
/// scratch vectors, the replay rebind patches the compiled commands in
/// place, and the fused kernel stages its per-DPU output views on the
/// stack.
#[test]
fn steady_state_fused_chain_loop_is_allocation_free() {
    let mut cfg = UpmemConfig::with_ranks(1).with_host_threads(1);
    cfg.dpus_per_rank = 8;
    let mut sess = Session::new(
        SessionOptions::default()
            .with_upmem_config(cfg)
            .with_policy(ShardPolicy::Single(Target::Cnm)),
    );
    let len = 128usize;
    let base: Vec<i32> = (0..len).map(|i| (i % 19) as i32 - 9).collect();
    let mask: Vec<i32> = (0..len).map(|i| (i % 3) as i32).collect();
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|s| (0..len).map(|i| ((i * 7 + s) % 23) as i32 - 11).collect())
        .collect();
    let at = sess.vector(&base);
    let bt = sess.vector(&mask);
    let xt = sess.vector(&xs[0]);
    let mut out = Vec::new();
    let iteration = |sess: &mut Session, x: &[i32], out: &mut Vec<i32>| {
        sess.write(xt, x);
        let t0 = sess.elementwise(BinOp::Xor, xt, at);
        let t1 = sess.elementwise(BinOp::And, t0, bt);
        let t2 = sess.elementwise(BinOp::Or, t1, at);
        sess.run().expect("cnm placement");
        sess.fetch_into(t2, out);
    };
    for i in 0..4 {
        iteration(&mut sess, &xs[i % 4], &mut out);
    }
    // The optimizer actually fused the chain (otherwise this pins the
    // wrong path).
    assert!(sess.optimizer_stats().fused_groups >= 1);
    let (_, replays_before) = sess.run_counts();
    let ((), allocs) = alloc_count::count_in(|| {
        for i in 0..40 {
            iteration(&mut sess, &xs[i % 4], &mut out);
        }
    });
    assert_eq!(allocs, 0, "the warmed fused loop must not allocate");
    let (_, replays_after) = sess.run_counts();
    assert_eq!(
        replays_after - replays_before,
        40,
        "every measured iteration must replay the fused plan"
    );
    assert_eq!(out.len(), len);
}

/// The warmed session loop under a finite MRAM limit that admits the
/// working set — capacity accounting, LRU bookkeeping and eviction scans
/// are active on every allocation, but with no pressure the steady state
/// still performs **zero** heap allocations per iteration.
#[test]
fn steady_state_session_loop_under_a_limit_is_allocation_free() {
    let mut cfg = UpmemConfig::with_ranks(1).with_host_threads(1);
    cfg.dpus_per_rank = 8;
    let mut sess = Session::new(
        SessionOptions::default()
            .with_upmem_config(cfg)
            .with_policy(ShardPolicy::Single(Target::Cnm))
            // gemv 64x32 over 8 DPUs: ~1.2 KB/DPU working set — 4 KB admits
            // it without eviction while keeping the capacity path live.
            .with_mram_limit_bytes(4096),
    );
    let (rows, cols) = (64usize, 32usize);
    let a: Vec<i32> = (0..rows * cols).map(|i| (i % 13) as i32 - 6).collect();
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|s| (0..cols).map(|i| ((i + s) % 7) as i32 - 3).collect())
        .collect();
    let at = sess.matrix(&a, rows, cols);
    let xt = sess.vector(&xs[0]);
    let mut out = Vec::new();
    let iteration = |sess: &mut Session, x: &[i32], out: &mut Vec<i32>| {
        sess.write(xt, x);
        let y = sess.gemv(at, xt);
        let s = sess.select(y, 0);
        sess.run().expect("cnm placement");
        sess.fetch_into(s, out);
    };
    for i in 0..4 {
        iteration(&mut sess, &xs[i % 4], &mut out);
    }
    let ((), allocs) = alloc_count::count_in(|| {
        for i in 0..40 {
            iteration(&mut sess, &xs[i % 4], &mut out);
        }
    });
    assert_eq!(allocs, 0, "the capped warmed loop must not allocate");
    let res = sess.residency_stats();
    assert_eq!(res.limit_bytes, 4096, "the limit reached the allocator");
    assert_eq!(res.evictions, 0, "the working set fits — no pressure");
    assert!(res.peak_mram_bytes <= 4096);
    assert!(!out.is_empty());
}

/// The warmed multi-tenant *serving* loop — two tenants submitting
/// same-shaped gemv requests that the `SessionServer` fuses into one
/// batched launch per round, then redeeming their tickets — performs
/// **zero** heap allocations per iteration. This is the serving steady
/// state: request slots recycle through the free list (activation and
/// result vectors keep their capacity), the fair queue's per-lane deques
/// are warm, the batch staging/gather vectors are reused, and the batched
/// launch runs the simulator's eager allocation-free entry points.
#[test]
fn steady_state_serving_loop_is_allocation_free() {
    use cinm_core::serve::{ServerOptions, SessionServer, TenantSpec};

    let mut cfg = UpmemConfig::with_ranks(1).with_host_threads(1);
    cfg.dpus_per_rank = 8;
    let mut server = SessionServer::new(
        ServerOptions::default()
            .with_upmem_config(cfg)
            .with_tenant_slots(2),
    );
    let (rows, cols) = (16usize, 8usize);
    let mut models = Vec::new();
    for i in 0..2i32 {
        let t = server.register_tenant(TenantSpec::new(format!("tenant-{i}")));
        let a: Vec<i32> = (0..rows * cols)
            .map(|e| ((e as i32) * (i + 3)) % 23 - 11)
            .collect();
        models.push(server.load_gemv_weights(t, &a, rows, cols).unwrap());
    }
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|s| (0..cols).map(|e| ((e + s) % 9) as i32 - 4).collect())
        .collect();
    let mut outs = [Vec::new(), Vec::new()];
    let iteration = |server: &mut SessionServer, x: &[i32], outs: &mut [Vec<i32>; 2]| {
        let t0 = server.submit(models[0], x).unwrap();
        let t1 = server.submit(models[1], x).unwrap();
        assert_eq!(server.step(), 2, "both tenants served in one round");
        server.wait_into(t0, &mut outs[0]).unwrap();
        server.wait_into(t1, &mut outs[1]).unwrap();
    };
    // Warm-up: sizes the request slots, staging shadows, gather scratch and
    // queue deques.
    for i in 0..4 {
        iteration(&mut server, &xs[i % 4], &mut outs);
    }
    let batches_before = server.stats().batches;
    let ((), allocs) = alloc_count::count_in(|| {
        for i in 0..40 {
            iteration(&mut server, &xs[i % 4], &mut outs);
        }
    });
    assert_eq!(allocs, 0, "the warmed serving loop must not allocate");
    let stats = server.stats();
    assert_eq!(
        stats.batches - batches_before,
        40,
        "every measured round must be one fused batch"
    );
    assert_eq!(stats.largest_batch, 2, "both tenants fused per round");
    assert!(!outs[0].is_empty() && !outs[1].is_empty());
}

/// The same warmed serving loop with **telemetry enabled** stays at zero
/// allocations per iteration: every metric series (server counters,
/// latency/batch histograms, queue-depth and pool gauges, per-tenant
/// series, simulator per-op counters and the energy gauge) is registered
/// once up front, and recording is atomics-only on the hot path.
#[test]
fn steady_state_serving_loop_with_telemetry_is_allocation_free() {
    use cinm_core::serve::{ServerOptions, SessionServer, TenantSpec};

    let telemetry = cinm_telemetry::Telemetry::new();
    let mut cfg = UpmemConfig::with_ranks(1).with_host_threads(1);
    cfg.dpus_per_rank = 8;
    let mut server = SessionServer::new(
        ServerOptions::default()
            .with_upmem_config(cfg)
            .with_tenant_slots(2)
            .with_telemetry(telemetry.clone()),
    );
    let (rows, cols) = (16usize, 8usize);
    let mut models = Vec::new();
    for i in 0..2i32 {
        let t = server.register_tenant(TenantSpec::new(format!("tenant-{i}")));
        let a: Vec<i32> = (0..rows * cols)
            .map(|e| ((e as i32) * (i + 3)) % 23 - 11)
            .collect();
        models.push(server.load_gemv_weights(t, &a, rows, cols).unwrap());
    }
    let xs: Vec<Vec<i32>> = (0..4)
        .map(|s| (0..cols).map(|e| ((e + s) % 9) as i32 - 4).collect())
        .collect();
    let mut outs = [Vec::new(), Vec::new()];
    let iteration = |server: &mut SessionServer, x: &[i32], outs: &mut [Vec<i32>; 2]| {
        let t0 = server.submit(models[0], x).unwrap();
        let t1 = server.submit(models[1], x).unwrap();
        assert_eq!(server.step(), 2, "both tenants served in one round");
        server.wait_into(t0, &mut outs[0]).unwrap();
        server.wait_into(t1, &mut outs[1]).unwrap();
    };
    for i in 0..4 {
        iteration(&mut server, &xs[i % 4], &mut outs);
    }
    let snap_before = telemetry.snapshot();
    let ((), allocs) = alloc_count::count_in(|| {
        for i in 0..40 {
            iteration(&mut server, &xs[i % 4], &mut outs);
        }
    });
    assert_eq!(allocs, 0, "telemetry recording must not allocate");
    // The measured window was actually observed, not silently dropped.
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter("serve.requests.completed").unwrap()
            - snap_before.counter("serve.requests.completed").unwrap(),
        80,
        "all 40 rounds x 2 tenants recorded"
    );
    assert_eq!(
        snap.histogram("serve.batch.size").unwrap().count
            - snap_before.histogram("serve.batch.size").unwrap().count,
        40,
    );
    assert!(
        snap.counter("upmem.launches").unwrap() > snap_before.counter("upmem.launches").unwrap()
    );
    assert!(!outs[0].is_empty() && !outs[1].is_empty());
}

/// Scratch-writing MVMs allocate nothing once the tile is programmed and the
/// output scratch exists; `mvm_parallel_into` covers the batched form.
#[test]
fn steady_state_mvm_loop_is_allocation_free() {
    let mut xbar = CrossbarAccelerator::new(CrossbarConfig::default().with_host_threads(1));
    let dim = xbar.config().tile_rows;
    let w: Vec<i32> = (0..dim * dim).map(|i| (i % 17) as i32 - 8).collect();
    xbar.write_tile(0, &w, dim, dim).unwrap();
    xbar.write_tile(1, &w, dim, dim).unwrap();
    let input: Vec<i32> = (0..dim).map(|i| (i % 5) as i32 - 2).collect();
    let mut out = vec![0i32; xbar.config().tile_cols];
    xbar.mvm_into(0, &input, &mut out).unwrap(); // warm-up
    let ((), allocs) = alloc_count::count_in(|| {
        for _ in 0..200 {
            xbar.mvm_into(0, &input, &mut out).unwrap();
            xbar.mvm_into(1, &input, &mut out).unwrap();
        }
    });
    assert_eq!(allocs, 0, "steady-state MVMs must not allocate");

    let requests: Vec<(usize, &[i32])> = vec![(0, &input), (1, &input)];
    let mut batch_out = vec![0i32; requests.len() * xbar.config().tile_cols];
    xbar.mvm_parallel_into(&requests, &mut batch_out).unwrap();
    let ((), allocs) = alloc_count::count_in(|| {
        for _ in 0..100 {
            xbar.mvm_parallel_into(&requests, &mut batch_out).unwrap();
        }
    });
    assert_eq!(allocs, 0, "steady-state MVM batches must not allocate");
}
