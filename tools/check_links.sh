#!/usr/bin/env bash
# Link check for the repo's documentation: fails if EXPERIMENTS.md or
# ARCHITECTURE.md reference files or markdown anchors that do not exist.
#
#   * markdown links `[text](target)` — the target file must exist relative
#     to the repo root (http(s) links are skipped); `file#anchor` targets
#     additionally require a heading in the target file whose GitHub slug
#     matches the anchor;
#   * backticked repo paths (`crates/.../file.rs`, `tools/x.sh`, ...) —
#     any backticked token that contains a `/` and a known source/doc
#     extension must exist.
#
# Usage: tools/check_links.sh [files...]   (default: EXPERIMENTS.md ARCHITECTURE.md)

set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(EXPERIMENTS.md ARCHITECTURE.md)
fi

errors=0

# GitHub-style heading slug: lowercase, drop everything but alnum/space/
# hyphen, spaces to hyphens.
slugify() {
    printf '%s' "$1" \
        | tr '[:upper:]' '[:lower:]' \
        | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

has_anchor() {
    local file="$1" anchor="$2" heading
    while IFS= read -r heading; do
        if [ "$(slugify "$heading")" = "$anchor" ]; then
            return 0
        fi
    done < <(sed -n 's/^#\{1,6\} \{0,1\}//p' "$file")
    return 1
}

for doc in "${files[@]}"; do
    if [ ! -f "$doc" ]; then
        echo "error: $doc does not exist"
        errors=$((errors + 1))
        continue
    fi

    # Markdown links.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        file="${target%%#*}"
        anchor=""
        case "$target" in
            *#*) anchor="${target#*#}" ;;
        esac
        if [ -z "$file" ]; then
            file="$doc"   # intra-document anchor
        fi
        if [ ! -e "$file" ]; then
            echo "error: $doc links to missing file '$file'"
            errors=$((errors + 1))
            continue
        fi
        if [ -n "$anchor" ] && ! has_anchor "$file" "$anchor"; then
            echo "error: $doc links to missing anchor '#$anchor' in '$file'"
            errors=$((errors + 1))
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/^\[[^]]*\](//; s/)$//')

    # Backticked repo paths.
    while IFS= read -r path; do
        if [ ! -e "$path" ]; then
            echo "error: $doc references missing path '$path'"
            errors=$((errors + 1))
        fi
    done < <(grep -o '`[A-Za-z0-9_./-]*`' "$doc" \
        | tr -d '`' \
        | grep '/' \
        | grep -E '\.(rs|md|json|yml|yaml|toml|sh)$' \
        | sort -u)
done

if [ "$errors" -gt 0 ]; then
    echo "link check failed: $errors broken reference(s)"
    exit 1
fi
echo "link check passed for: ${files[*]}"
