#!/usr/bin/env bash
# Public-API surface snapshot: extracts every `pub` item declaration of the
# workspace's library sources (crates/*/src and src/, i.e. what `cargo doc`
# documents; tests, benches and examples excluded), normalises it, and diffs
# it against the committed API.txt — so future PRs change the public API
# *deliberately*: an API change without a matching API.txt update fails CI.
#
#   tools/check_api.sh            # verify (CI mode)
#   tools/check_api.sh --update   # regenerate API.txt after an intended change
#
# The snapshot is source-derived (grep over declaration lines) rather than
# rustdoc-derived so it is stable across toolchain versions and needs no
# nightly rustdoc-json; it deliberately includes `pub use` re-exports, since
# those are API surface too. Lines are normalised (collapsed whitespace,
# bodies/where-clauses stripped) and prefixed with their file path.
set -euo pipefail

cd "$(dirname "$0")/.."
snapshot_file="API.txt"

snapshot() {
    find crates src -path '*/src/*.rs' -o -path 'src/*.rs' | LC_ALL=C sort | while read -r f; do
        # Declaration lines only; normalise whitespace, strip bodies,
        # where-clauses and trailing semicolons.
        (grep -E '^[[:space:]]*pub (fn|struct|enum|trait|mod|type|const|static|use) ' "$f" || true) \
            | sed -E 's/[[:space:]]+/ /g; s/^ //; s/ ?\{.*$//; s/ where .*$//; s/;$//' \
            | sed "s|^|$f: |"
    done
}

case "${1:---check}" in
--update)
    snapshot >"$snapshot_file"
    echo "regenerated $snapshot_file ($(wc -l <"$snapshot_file") public items)"
    ;;
--check)
    [ -f "$snapshot_file" ] || {
        echo "error: $snapshot_file not found; run tools/check_api.sh --update"
        exit 1
    }
    if ! diff -u "$snapshot_file" <(snapshot) >/tmp/api_diff.$$ 2>&1; then
        echo "error: the public API surface changed but $snapshot_file was not updated."
        echo "       Review the diff below; if the change is intended, run"
        echo "       tools/check_api.sh --update and commit the result."
        cat /tmp/api_diff.$$
        rm -f /tmp/api_diff.$$
        exit 1
    fi
    rm -f /tmp/api_diff.$$
    echo "OK: public API surface matches $snapshot_file"
    ;;
*)
    echo "usage: tools/check_api.sh [--check|--update]"
    exit 2
    ;;
esac
