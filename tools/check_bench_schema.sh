#!/usr/bin/env bash
# Fails when the committed BENCH_sim.json is stale relative to the bench-sim
# emitter: the schema version string in the JSON must match the
# `BENCH_SCHEMA` constant in crates/cinm-bench/src/simbench.rs, and the
# sections of the current schema must be present. Cheap (grep-only), so CI
# runs it on every push; regenerate with
#   cargo run --release -p cinm-bench --bin bench-sim
# when it fires.
set -euo pipefail

json="${1:-BENCH_sim.json}"
src="crates/cinm-bench/src/simbench.rs"

[ -f "$json" ] || { echo "error: $json not found"; exit 1; }
[ -f "$src" ] || { echo "error: $src not found"; exit 1; }

# Anchored extraction: the constant definition line in the source and the
# top-level schema field in the JSON — prose mentions of other versions
# (e.g. "schema v2" in doc comments) must not be picked up.
want=$(grep 'pub const BENCH_SCHEMA' "$src" | grep -oE 'cinm/bench-sim/v[0-9]+' | head -n1)
got=$(grep -E '^  "schema":' "$json" | grep -oE 'cinm/bench-sim/v[0-9]+' | head -n1)

[ -n "$want" ] || { echo "error: no BENCH_SCHEMA constant found in $src"; exit 1; }
[ -n "$got" ] || { echo "error: no schema field found in $json"; exit 1; }

if [ "$want" != "$got" ]; then
    echo "error: $json carries schema '$got' but the emitter is at '$want';"
    echo "       regenerate it: cargo run --release -p cinm-bench --bin bench-sim"
    exit 1
fi

# The sections the current schema version promises.
for field in '"hot_path"' '"steady_state"' '"sharded_vs_best_single"' '"session_vs_eager"' '"graph_opt"' '"replay_hit_rate"' '"dispatch_overhead"' '"fault_overhead"' '"workloads"'; do
    grep -q "$field" "$json" || {
        echo "error: $json is missing the $field section of schema $want"
        exit 1
    }
done

echo "OK: $json matches emitter schema $want"
