#!/usr/bin/env bash
# Fails when a committed BENCH_*.json is stale relative to its emitter: the
# schema version string in the JSON must match the schema constant in the
# emitter's source, and the sections of the current schema must be present.
# Cheap (grep-only), so CI runs it on every push; regenerate with
#   cargo run --release -p cinm-bench --bin bench-sim        (BENCH_sim.json)
#   cargo run --release -p cinm-bench --bin bench-serving    (BENCH_serving.json)
# when it fires.
set -euo pipefail

json="${1:-BENCH_sim.json}"

# Each tracked JSON has its own emitter source, schema constant, version
# prefix, and promised top-level sections.
case "$(basename "$json")" in
BENCH_serving.json)
    src="crates/cinm-bench/src/servebench.rs"
    const_name="SERVING_SCHEMA"
    prefix="cinm/bench-serving"
    sections='"closed_loop" "batched_vs_serial" "requests_per_sec" "p99_ms" "speedup" "bit_identical"'
    ;;
*)
    src="crates/cinm-bench/src/simbench.rs"
    const_name="BENCH_SCHEMA"
    prefix="cinm/bench-sim"
    sections='"hot_path" "steady_state" "sharded_vs_best_single" "session_vs_eager" "graph_opt" "replay_hit_rate" "dispatch_overhead" "fault_overhead" "memory_pressure" "spilled_bytes" "energy" "min_energy_plan_joules" "workloads"'
    ;;
esac

[ -f "$json" ] || { echo "error: $json not found"; exit 1; }
[ -f "$src" ] || { echo "error: $src not found"; exit 1; }

# Anchored extraction: the constant definition line in the source and the
# top-level schema field in the JSON — prose mentions of other versions
# (e.g. "schema v2" in doc comments) must not be picked up.
want=$(grep "pub const $const_name" "$src" | grep -oE "$prefix/v[0-9]+" | head -n1)
got=$(grep -E '^  "schema":' "$json" | grep -oE "$prefix/v[0-9]+" | head -n1)

[ -n "$want" ] || { echo "error: no $const_name constant found in $src"; exit 1; }
[ -n "$got" ] || { echo "error: no schema field found in $json"; exit 1; }

if [ "$want" != "$got" ]; then
    echo "error: $json carries schema '$got' but the emitter is at '$want';"
    echo "       regenerate it with the matching bench binary (see header)"
    exit 1
fi

# The sections the current schema version promises.
for field in $sections; do
    grep -q "$field" "$json" || {
        echo "error: $json is missing the $field section of schema $want"
        exit 1
    }
done

echo "OK: $json matches emitter schema $want"
