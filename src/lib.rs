//! # CINM (Cinnamon) — Rust reproduction facade
//!
//! A compilation infrastructure for heterogeneous compute-in-memory (CIM) and
//! compute-near-memory (CNM) paradigms, reproduced from the ASPLOS 2024 paper
//! by Khan et al. This facade crate re-exports the whole stack:
//!
//! * [`ir`] — the MLIR-like IR substrate (types, ops, regions, passes);
//! * [`dialects`] — the dialect stack (`linalg`/`tosa` front ends, the
//!   device-agnostic `cinm` abstraction, the `cnm`/`cim` paradigm
//!   abstractions and the `upmem`/`memristor` device dialects);
//! * [`lowering`] — the progressive-lowering passes and the device back-ends;
//! * [`runtime`] — the shared host runtime: the persistent worker pool and
//!   the hazard-tracked command streams both simulators execute on;
//! * [`telemetry`] — the lock-light production metrics registry (counters,
//!   gauges, histograms; atomics on the hot path) every layer above exports
//!   per-op, per-tenant and energy series into;
//! * [`upmem`] / [`memristor`] / [`cpu`] — the simulated evaluation substrate;
//! * [`workloads`] — the fifteen benchmark applications of the evaluation;
//! * [`core`] — pipelines, target selection, cost models, the experiment
//!   runners regenerating every table and figure of the paper, and the
//!   [`core::session::Session`] graph API — the one public execution entry
//!   point: lazy op graphs over typed tensor handles, shard-planned across
//!   the [`lowering::Device`] set, with device-resident intermediates.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

pub use cinm_core as core;
pub use cinm_dialects as dialects;
pub use cinm_ir as ir;
pub use cinm_lowering as lowering;
pub use cinm_runtime as runtime;
pub use cinm_telemetry as telemetry;
pub use cinm_workloads as workloads;
pub use cpu_sim as cpu;
pub use memristor_sim as memristor;
pub use upmem_sim as upmem;
